//! Hierarchical Navigable Small World (HNSW) graph index.
//!
//! The paper's strongest baseline configurations add HNSW on top of IVF/PQ
//! (`IVFx_HNSWy,PQz` in FAISS). This module implements a standalone HNSW
//! graph (Malkov & Yashunin) over the raw vectors: a multi-layer proximity
//! graph where upper layers are sparse "express lanes" and layer 0 contains
//! every point. Search greedily descends the upper layers and then runs a
//! best-first beam (`ef_search`) on layer 0.

use crate::sim::SimulationConfig;
use juno_common::error::{Error, Result};
use juno_common::index::{AnnIndex, SearchResult, SearchStats};
use juno_common::metric::Metric;
use juno_common::rng::seeded;
use juno_common::rng::Rng;
use juno_common::topk::TopK;
use juno_common::vector::VectorSet;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Build/search configuration of an [`HnswIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HnswConfig {
    /// Maximum number of neighbours per node on layers above 0 (layer 0 keeps
    /// `2 * m`).
    pub m: usize,
    /// Beam width while inserting.
    pub ef_construction: usize,
    /// Beam width while searching (search-time knob; larger = better recall).
    pub ef_search: usize,
    /// Metric.
    pub metric: Metric,
    /// Seed for the level sampler.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            metric: Metric::L2,
            seed: 0x45E,
        }
    }
}

/// A max-heap entry ordered by score (worst on top) for result sets.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    score: f32,
    id: u32,
}

impl Eq for Scored {}
impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// A min-heap wrapper (best candidate on top) built on `Reverse` ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinScored(Scored);

impl Eq for MinScored {}
impl PartialOrd for MinScored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MinScored {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp(&self.0)
    }
}

/// The HNSW graph index.
#[derive(Debug, Clone)]
pub struct HnswIndex {
    points: VectorSet,
    metric: Metric,
    /// `neighbors[level][node]` is the adjacency list of `node` at `level`.
    neighbors: Vec<Vec<Vec<u32>>>,
    /// Highest level of each node.
    node_levels: Vec<usize>,
    entry_point: u32,
    max_level: usize,
    ef_search: usize,
    m: usize,
    sim: SimulationConfig,
}

impl HnswIndex {
    /// Builds the graph by inserting every point.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyInput`] for an empty point set and
    /// [`Error::InvalidConfig`] for degenerate parameters.
    pub fn build(points: VectorSet, config: &HnswConfig) -> Result<Self> {
        if points.is_empty() {
            return Err(Error::empty_input("HNSW requires at least one point"));
        }
        if config.m < 2 {
            return Err(Error::invalid_config("HNSW m must be at least 2"));
        }
        if config.ef_construction == 0 || config.ef_search == 0 {
            return Err(Error::invalid_config("HNSW ef parameters must be positive"));
        }
        let mut rng = seeded(config.seed);
        let level_mult = 1.0 / (config.m as f64).ln();
        let n = points.len();

        // Pre-sample levels so the layer count is known.
        let node_levels: Vec<usize> = (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                (-u.ln() * level_mult).floor() as usize
            })
            .collect();
        let max_level = *node_levels.iter().max().unwrap_or(&0);
        let mut neighbors: Vec<Vec<Vec<u32>>> =
            (0..=max_level).map(|_| vec![Vec::new(); n]).collect();

        let mut index = Self {
            points,
            metric: config.metric,
            neighbors: Vec::new(),
            node_levels: node_levels.clone(),
            entry_point: 0,
            max_level: node_levels[0],
            ef_search: config.ef_search,
            m: config.m,
            sim: SimulationConfig::default(),
        };

        // Insert points one at a time.
        for node in 1..n {
            let node_level = node_levels[node];
            let query = index.points.row(node).to_vec();
            let mut ep = index.entry_point;
            let top = index.max_level;

            // Greedy descent through the layers above the node's level.
            for level in ((node_level + 1)..=top).rev() {
                ep = greedy_closest(&index.points, index.metric, &neighbors[level], &query, ep);
            }

            // Beam search + connect on the node's layers.
            for level in (0..=node_level.min(top)).rev() {
                let found = search_layer(
                    &index.points,
                    index.metric,
                    &neighbors[level],
                    &query,
                    &[ep],
                    config.ef_construction,
                    &mut 0usize,
                );
                let max_degree = if level == 0 { config.m * 2 } else { config.m };
                // Diversity heuristic (Malkov & Yashunin Alg. 4): keeping only
                // the nearest candidates severs clusters on clustered data;
                // keep a candidate only if it is closer to the new node than
                // to every already-kept neighbour, so long-range links survive.
                let selected =
                    select_neighbors_heuristic(&index.points, index.metric, &found, config.m);
                for &peer in &selected {
                    neighbors[level][node].push(peer);
                    neighbors[level][peer as usize].push(node as u32);
                    // Prune the peer's adjacency if it grew too large, with the
                    // same diversity heuristic.
                    if neighbors[level][peer as usize].len() > max_degree {
                        let peer_vec = index.points.row(peer as usize).to_vec();
                        let mut ranked: Vec<Scored> = neighbors[level][peer as usize]
                            .iter()
                            .map(|&nb| Scored {
                                score: index.metric.raw_to_score(
                                    index
                                        .metric
                                        .distance(&peer_vec, index.points.row(nb as usize)),
                                ),
                                id: nb,
                            })
                            .collect();
                        ranked.sort();
                        neighbors[level][peer as usize] = select_neighbors_heuristic(
                            &index.points,
                            index.metric,
                            &ranked,
                            max_degree,
                        );
                    }
                }
                if let Some(best) = found.first() {
                    ep = best.id;
                }
            }

            if node_level > index.max_level {
                index.max_level = node_level;
                index.entry_point = node as u32;
            }
        }

        index.neighbors = neighbors;
        Ok(index)
    }

    /// Replaces the GPU simulation configuration (builder style).
    pub fn with_simulation(mut self, sim: SimulationConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Changes the search beam width (search-time quality knob).
    pub fn set_ef_search(&mut self, ef: usize) {
        self.ef_search = ef.max(1);
    }

    /// The current search beam width.
    pub fn ef_search(&self) -> usize {
        self.ef_search
    }

    /// The number of graph layers (including layer 0).
    pub fn num_layers(&self) -> usize {
        self.neighbors.len()
    }

    /// The sampled level of one node (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn node_level(&self, node: usize) -> usize {
        self.node_levels[node]
    }

    /// The maximum node degree observed on layer 0 (diagnostics).
    pub fn max_degree(&self) -> usize {
        self.neighbors
            .first()
            .map(|layer| layer.iter().map(Vec::len).max().unwrap_or(0))
            .unwrap_or(0)
    }
}

/// Selects up to `m` diverse neighbours from `candidates` (sorted best
/// first): a candidate is kept only if it is closer to `base` than to every
/// already-kept neighbour (Malkov & Yashunin Alg. 4, without extension). If
/// fewer than `m` survive, the discarded candidates fill the remainder in
/// rank order so degree is not wasted.
fn select_neighbors_heuristic(
    points: &VectorSet,
    metric: Metric,
    candidates: &[Scored],
    m: usize,
) -> Vec<u32> {
    let mut kept: Vec<u32> = Vec::with_capacity(m);
    let mut discarded: Vec<u32> = Vec::new();
    for cand in candidates {
        if kept.len() >= m {
            break;
        }
        let cand_vec = points.row(cand.id as usize);
        // Every candidate's `score` was computed against the base vector by
        // the caller, so the base distance needs no recomputation.
        let to_base = cand.score;
        let diverse = kept.iter().all(|&kb| {
            let to_kept = metric.raw_to_score(metric.distance(cand_vec, points.row(kb as usize)));
            to_base <= to_kept
        });
        if diverse {
            kept.push(cand.id);
        } else {
            discarded.push(cand.id);
        }
    }
    for id in discarded {
        if kept.len() >= m {
            break;
        }
        kept.push(id);
    }
    kept
}

/// Greedy single-step descent used on the upper layers.
fn greedy_closest(
    points: &VectorSet,
    metric: Metric,
    layer: &[Vec<u32>],
    query: &[f32],
    mut current: u32,
) -> u32 {
    let mut best = metric.raw_to_score(metric.distance(query, points.row(current as usize)));
    loop {
        let mut improved = false;
        for &nb in &layer[current as usize] {
            let score = metric.raw_to_score(metric.distance(query, points.row(nb as usize)));
            if score < best {
                best = score;
                current = nb;
                improved = true;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Best-first beam search within one layer. Returns up to `ef` candidates
/// sorted by score (best first). `evaluations` counts distance computations.
fn search_layer(
    points: &VectorSet,
    metric: Metric,
    layer: &[Vec<u32>],
    query: &[f32],
    entry_points: &[u32],
    ef: usize,
    evaluations: &mut usize,
) -> Vec<Scored> {
    let mut visited = vec![false; points.len()];
    let mut candidates: BinaryHeap<MinScored> = BinaryHeap::new();
    let mut results: BinaryHeap<Scored> = BinaryHeap::new();

    for &ep in entry_points {
        if visited[ep as usize] {
            continue;
        }
        visited[ep as usize] = true;
        *evaluations += 1;
        let score = metric.raw_to_score(metric.distance(query, points.row(ep as usize)));
        let s = Scored { score, id: ep };
        candidates.push(MinScored(s));
        results.push(s);
    }

    while let Some(MinScored(current)) = candidates.pop() {
        let worst = results.peek().map(|s| s.score).unwrap_or(f32::INFINITY);
        if results.len() >= ef && current.score > worst {
            break;
        }
        for &nb in &layer[current.id as usize] {
            if visited[nb as usize] {
                continue;
            }
            visited[nb as usize] = true;
            *evaluations += 1;
            let score = metric.raw_to_score(metric.distance(query, points.row(nb as usize)));
            let worst = results.peek().map(|s| s.score).unwrap_or(f32::INFINITY);
            if results.len() < ef || score < worst {
                let s = Scored { score, id: nb };
                candidates.push(MinScored(s));
                results.push(s);
                if results.len() > ef {
                    results.pop();
                }
            }
        }
    }

    let mut out: Vec<Scored> = results.into_vec();
    out.sort();
    out
}

impl AnnIndex for HnswIndex {
    fn metric(&self) -> Metric {
        self.metric
    }

    fn dim(&self) -> usize {
        self.points.dim()
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult> {
        if k == 0 {
            return Err(Error::invalid_config("k must be positive"));
        }
        if query.len() != self.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.dim(),
                actual: query.len(),
            });
        }
        let mut evaluations = 0usize;
        let mut ep = self.entry_point;
        for level in (1..=self.max_level).rev() {
            ep = greedy_closest(&self.points, self.metric, &self.neighbors[level], query, ep);
        }
        let ef = self.ef_search.max(k);
        let found = search_layer(
            &self.points,
            self.metric,
            &self.neighbors[0],
            query,
            &[ep],
            ef,
            &mut evaluations,
        );
        let mut topk = TopK::new(k, self.metric);
        for s in &found {
            topk.push_score(s.id as u64, s.score);
        }
        let mut stats = SearchStats {
            candidates: evaluations,
            accumulations: evaluations * self.dim(),
            ..SearchStats::default()
        };
        // Graph search is a sequence of full-dimension distance evaluations;
        // model it like a flat scan over the evaluated candidates.
        let simulated_us = self
            .sim
            .flat_scan_us(&mut stats, evaluations.max(1), self.dim());
        Ok(SearchResult {
            neighbors: topk.into_sorted_vec(),
            simulated_us,
            stats,
        })
    }

    fn name(&self) -> String {
        format!("HNSW(m={},ef={})", self.m, self.ef_search)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juno_common::recall::recall_at;
    use juno_data::profiles::DatasetProfile;

    fn build_small() -> (juno_data::profiles::Dataset, HnswIndex) {
        let ds = DatasetProfile::DeepLike.generate(2_000, 20, 23).unwrap();
        let index = HnswIndex::build(
            ds.points.clone(),
            &HnswConfig {
                m: 12,
                ef_construction: 80,
                ef_search: 64,
                metric: ds.metric(),
                seed: 2,
            },
        )
        .unwrap();
        (ds, index)
    }

    #[test]
    fn recall_is_high_on_clustered_data() {
        let (ds, index) = build_small();
        let gt = ds.ground_truth(10).unwrap();
        let retrieved: Vec<Vec<u64>> = ds
            .queries
            .iter()
            .map(|q| index.search(q, 10).unwrap().ids())
            .collect();
        let r = recall_at(&retrieved, &gt, 10, 10).unwrap();
        assert!(r > 0.85, "HNSW recall {r} too low");
    }

    #[test]
    fn recall_improves_with_ef_search() {
        let (ds, mut index) = build_small();
        let gt = ds.ground_truth(10).unwrap();
        let recall_with = |index: &HnswIndex| {
            let retrieved: Vec<Vec<u64>> = ds
                .queries
                .iter()
                .map(|q| index.search(q, 10).unwrap().ids())
                .collect();
            recall_at(&retrieved, &gt, 10, 10).unwrap()
        };
        index.set_ef_search(8);
        let low_ef = recall_with(&index);
        index.set_ef_search(128);
        let high_ef = recall_with(&index);
        assert!(
            high_ef >= low_ef,
            "recall must not drop with larger ef ({low_ef} -> {high_ef})"
        );
    }

    #[test]
    fn visits_small_fraction_of_points() {
        let (ds, index) = build_small();
        let res = index.search(ds.queries.row(0), 10).unwrap();
        assert!(
            res.stats.candidates < ds.points.len() / 2,
            "HNSW evaluated {} of {} points",
            res.stats.candidates,
            ds.points.len()
        );
        assert!(res.simulated_us > 0.0);
    }

    #[test]
    fn degree_bound_is_respected() {
        let (_, index) = build_small();
        assert!(
            index.max_degree() <= 24,
            "layer-0 degree {} exceeds 2m",
            index.max_degree()
        );
        assert!(index.num_layers() >= 1);
    }

    #[test]
    fn single_point_and_validation() {
        let points = VectorSet::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        let index = HnswIndex::build(points, &HnswConfig::default()).unwrap();
        let res = index.search(&[1.0, 2.0], 1).unwrap();
        assert_eq!(res.neighbors[0].id, 0);
        assert!(index.search(&[1.0, 2.0], 0).is_err());
        assert!(index.search(&[1.0], 1).is_err());
        assert!(HnswIndex::build(VectorSet::new(2).unwrap(), &HnswConfig::default()).is_err());
        assert!(HnswIndex::build(
            VectorSet::from_rows(vec![vec![0.0]]).unwrap(),
            &HnswConfig {
                m: 1,
                ..HnswConfig::default()
            }
        )
        .is_err());
        assert!(index.name().starts_with("HNSW"));
    }
}
