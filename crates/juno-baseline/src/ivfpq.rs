//! The FAISS-style IVFPQ baseline with dense L2-LUT construction.
//!
//! This is the pipeline the paper profiles in Section 3 and competes against
//! in Section 6: filtering (stage A), dense per-cluster LUT construction
//! (stages B–C) and distance calculation over all candidate points (stage D).
//! Both L2 and inner-product metrics are supported; for MIPS the LUT holds
//! per-subspace inner products and the per-cluster centroid term is added
//! once per candidate, following the additive decomposition
//! `IP(q, c + r) = IP(q, c) + Σ_s IP(q_s, r_s)`.

use crate::sim::SimulationConfig;
use juno_common::error::{Error, Result};
use juno_common::group::GroupSchedule;
use juno_common::index::{AnnIndex, Neighbor, SearchResult, SearchStats};
use juno_common::kernel::{
    self, QuantizedLut, BLOCK_LANES, GROUP_CHUNK_WORK, GROUP_TILE, MIN_GROUP_QUERIES,
};
use juno_common::metric::{inner_product, Metric};
use juno_common::parallel;
use juno_common::topk::TopK;
use juno_common::vector::VectorSet;
use juno_core::persist::{
    get_codes, get_ivf, get_metric, get_pq, put_codes, put_ivf, put_metric, put_pq,
};
use juno_data::snapshot::{kind, SectionWriter, Snapshot, SnapshotWriter};
use juno_quant::ivf::{IvfIndex, IvfTrainConfig};
use juno_quant::layout::{BlockCodes, GroupLane};
use juno_quant::pq::{EncodedPoints, PqTrainConfig, ProductQuantizer};
use std::path::Path;
use std::sync::OnceLock;

/// The engine kind word identifying IVFPQ baseline snapshots.
pub const KIND_IVFPQ: u32 = kind(*b"IVPQ");

/// Build/search configuration of an [`IvfPqIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvfPqConfig {
    /// Number of coarse clusters (`C`).
    pub n_clusters: usize,
    /// Number of clusters scanned per query (`nprobs`).
    pub nprobs: usize,
    /// Number of PQ subspaces (`D/M`), e.g. 48 for DEEP.
    pub pq_subspaces: usize,
    /// Codebook entries per subspace (`E`), typically 256.
    pub pq_entries: usize,
    /// Metric.
    pub metric: Metric,
    /// Training seed.
    pub seed: u64,
}

impl Default for IvfPqConfig {
    fn default() -> Self {
        Self {
            n_clusters: 64,
            nprobs: 8,
            pq_subspaces: 16,
            pq_entries: 256,
            metric: Metric::L2,
            seed: 0xFA15,
        }
    }
}

/// One cluster's scan-ready view: the inverted-list ids in list order, the
/// matching point-major codes gathered contiguously, and the
/// block-interleaved view the fast-scan kernel consumes.
#[derive(Debug, Clone)]
struct ClusterScan {
    ids: Vec<u32>,
    codes: Vec<u8>,
    blocks: BlockCodes,
}

/// Lazily built per-cluster scan cache (invalidated by mutation/restore).
#[derive(Debug, Clone, Default)]
struct ScanCache {
    clusters: Vec<ClusterScan>,
}

impl ScanCache {
    fn build(ivf: &IvfIndex, codes: &EncodedPoints) -> Self {
        let subspaces = codes.num_subspaces();
        let clusters = (0..ivf.n_clusters())
            .map(|c| {
                let ids = ivf.list(c).expect("cluster id in range").to_vec();
                let mut flat = Vec::with_capacity(ids.len() * subspaces);
                for &pid in &ids {
                    flat.extend_from_slice(codes.code(pid as usize));
                }
                let blocks = BlockCodes::build(&flat, ids.len(), subspaces);
                ClusterScan {
                    ids,
                    codes: flat,
                    blocks,
                }
            })
            .collect();
        Self { clusters }
    }
}

/// The FAISS-style `IVFx,PQy` index.
#[derive(Debug, Clone)]
pub struct IvfPqIndex {
    ivf: IvfIndex,
    pq: ProductQuantizer,
    codes: EncodedPoints,
    /// Inner product of each point's assigned centroid with itself is not
    /// needed; for MIPS we store nothing extra because the centroid term is
    /// computed per query per cluster.
    metric: Metric,
    nprobs: usize,
    num_points: usize,
    sim: SimulationConfig,
    /// Per-cluster contiguous + block-interleaved code views for the
    /// fast-scan path, built on first search and dropped on mutation.
    scan_cache: OnceLock<ScanCache>,
    /// Whether the quantised prune pass runs (results are bit-identical
    /// either way; off exposes the dense reference scan).
    fastscan: bool,
}

impl IvfPqIndex {
    /// Trains the coarse quantiser + PQ codebooks and encodes every point.
    ///
    /// # Errors
    ///
    /// Propagates training/configuration errors from the IVF and PQ stages.
    pub fn build(points: &VectorSet, config: &IvfPqConfig) -> Result<Self> {
        if config.nprobs == 0 {
            return Err(Error::invalid_config("nprobs must be positive"));
        }
        let ivf = IvfIndex::train(
            points,
            &IvfTrainConfig {
                n_clusters: config.n_clusters,
                metric: config.metric,
                seed: config.seed,
                ..IvfTrainConfig::default()
            },
        )?;
        let residuals = ivf.point_residuals(points)?;
        let pq = ProductQuantizer::train(
            &residuals,
            &PqTrainConfig {
                num_subspaces: config.pq_subspaces,
                entries_per_subspace: config.pq_entries,
                seed: config.seed ^ 0xBEEF,
                ..PqTrainConfig::default()
            },
        )?;
        let codes = pq.encode(&residuals)?;
        Ok(Self {
            ivf,
            pq,
            codes,
            metric: config.metric,
            nprobs: config.nprobs,
            num_points: points.len(),
            sim: SimulationConfig::default(),
            scan_cache: OnceLock::new(),
            fastscan: true,
        })
    }

    /// Replaces the GPU simulation configuration (builder style).
    pub fn with_simulation(mut self, sim: SimulationConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Changes the number of probed clusters (search-time knob).
    pub fn set_nprobs(&mut self, nprobs: usize) {
        self.nprobs = nprobs.max(1);
    }

    /// Enables or disables the quantised fast-scan prune pass (final
    /// results are bit-identical either way).
    pub fn set_fastscan(&mut self, enabled: bool) {
        self.fastscan = enabled;
    }

    /// Whether the fast-scan prune pass is active.
    pub fn fastscan_enabled(&self) -> bool {
        self.fastscan
    }

    /// The number of probed clusters.
    pub fn nprobs(&self) -> usize {
        self.nprobs
    }

    /// Borrow of the coarse quantiser.
    pub fn ivf(&self) -> &IvfIndex {
        &self.ivf
    }

    /// Borrow of the trained product quantiser.
    pub fn pq(&self) -> &ProductQuantizer {
        &self.pq
    }

    /// Borrow of the encoded points.
    pub fn codes(&self) -> &EncodedPoints {
        &self.codes
    }

    /// Inserts one vector: coarse-assigns it with the k-means rule, encodes
    /// its residual with the existing codebooks and appends it to the
    /// cluster's inverted list. Returns the new id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] for a wrong dimension; validation
    /// happens before any state is touched.
    pub fn insert(&mut self, vector: &[f32]) -> Result<u64> {
        if vector.len() != self.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.dim(),
                actual: vector.len(),
            });
        }
        let cluster = self.ivf.assign(vector)?;
        let residual = self.ivf.query_residual(vector, cluster)?;
        let code = self.pq.encode_one(&residual)?;
        let id = self.ivf.push_assignment(cluster)?;
        self.codes.push(&code)?;
        self.num_points += 1;
        self.scan_cache = OnceLock::new();
        Ok(id as u64)
    }

    /// Removes the point with the given id by pruning it from its cluster's
    /// inverted list (the dataset-order code row is retained — ids are
    /// positions and never renumbered). Returns `Ok(true)` when the id was
    /// indexed and live.
    ///
    /// # Errors
    ///
    /// Infallible today; `Result` for trait conformity.
    pub fn remove(&mut self, id: u64) -> Result<bool> {
        let Ok(id32) = u32::try_from(id) else {
            return Ok(false);
        };
        let removed = self.ivf.remove_from_list(id32);
        if removed {
            self.num_points -= 1;
            self.scan_cache = OnceLock::new();
        }
        Ok(removed)
    }

    /// Serialises the index into snapshot bytes (kind [`KIND_IVFPQ`]).
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut writer = SnapshotWriter::new(KIND_IVFPQ);
        let mut conf = SectionWriter::new();
        put_metric(&mut conf, self.metric);
        conf.put_u64(self.nprobs as u64);
        conf.put_u64(self.num_points as u64);
        writer.add_section(*b"CONF", conf);
        let mut ivfc = SectionWriter::new();
        put_ivf(&mut ivfc, &self.ivf);
        writer.add_section(*b"IVFC", ivfc);
        let mut pqcb = SectionWriter::new();
        put_pq(&mut pqcb, &self.pq);
        writer.add_section(*b"PQCB", pqcb);
        let mut code = SectionWriter::new();
        put_codes(&mut code, &self.codes);
        writer.add_section(*b"CODE", code);
        writer.finish()
    }

    /// Rebuilds an index from snapshot bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] for malformed or mismatched snapshots.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self> {
        let snap = Snapshot::parse(bytes)?;
        if snap.kind() != KIND_IVFPQ {
            return Err(Error::corrupted(
                "snapshot is not an IVFPQ baseline snapshot",
            ));
        }
        let mut r = snap.section(*b"CONF")?;
        let metric = get_metric(&mut r)?;
        let nprobs = r.get_usize()?;
        let num_points = r.get_usize()?;
        r.expect_end()?;
        let mut r = snap.section(*b"IVFC")?;
        let ivf = get_ivf(&mut r)?;
        r.expect_end()?;
        let mut r = snap.section(*b"PQCB")?;
        let pq = get_pq(&mut r)?;
        r.expect_end()?;
        let mut r = snap.section(*b"CODE")?;
        let codes = get_codes(&mut r)?;
        r.expect_end()?;
        if nprobs == 0
            || ivf.labels().len() != codes.len()
            || pq.num_subspaces() != codes.num_subspaces()
            || ivf.dim() != pq.dim()
            || num_points > ivf.labels().len()
            // Every stored code must address a live codebook entry; both
            // the dense-LUT lookup and the fast-scan kernel index rows
            // without per-lookup bounds checks.
            || codes
                .as_flat()
                .iter()
                .any(|&c| (c as usize) >= pq.entries_per_subspace())
        {
            return Err(Error::corrupted(
                "IVFPQ snapshot sections are mutually inconsistent",
            ));
        }
        Ok(Self {
            ivf,
            pq,
            codes,
            metric,
            nprobs,
            num_points,
            sim: SimulationConfig::default(),
            scan_cache: OnceLock::new(),
            fastscan: true,
        })
    }

    /// Writes the snapshot to a file **atomically** (temp file + fsync +
    /// rename, rotating the previous snapshot to a `.prev` generation), so a
    /// crash mid-save can never leave a torn snapshot as the only copy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the file cannot be written.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<()> {
        juno_common::atomic_file::write_atomic(path.as_ref(), &self.to_snapshot_bytes())
    }

    /// Loads an index from a snapshot file, falling back to the `.prev`
    /// generation when the newest file is torn.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and the decoding failure of the newest
    /// readable candidate.
    pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let mut last_err = None;
        for (candidate, bytes) in juno_common::atomic_file::read_candidates(path)? {
            match Self::from_snapshot_bytes(&bytes) {
                Ok(index) => return Ok(index),
                Err(err) => {
                    last_err = Some(Error::corrupted(format!("{}: {err}", candidate.display())))
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            Error::Io(format!(
                "no snapshot found at {} (nor a .prev generation)",
                path.display()
            ))
        }))
    }

    /// Builds the per-cluster LUT of a query for one selected cluster into a
    /// flat `subspaces × E` buffer (resized in place, allocation reused).
    ///
    /// For L2 the LUT rows are squared distances between the query *residual*
    /// projection and the codebook entries; for MIPS they are inner products
    /// between the query projection and the entries.
    fn cluster_flat_lut(&self, query: &[f32], cluster: usize, out: &mut Vec<f32>) -> Result<()> {
        match self.metric {
            Metric::L2 => {
                let residual = self.ivf.query_residual(query, cluster)?;
                self.pq.dense_lut_into(&residual, out)
            }
            Metric::InnerProduct => {
                let sub_dim = self.pq.sub_dim();
                let entries = self.pq.entries_per_subspace();
                out.clear();
                out.resize(self.pq.num_subspaces() * entries, 0.0);
                for (s, cb) in self.pq.codebooks().iter().enumerate() {
                    let proj = &query[s * sub_dim..(s + 1) * sub_dim];
                    let row = &mut out[s * entries..(s + 1) * entries];
                    for (o, e) in row.iter_mut().zip(cb.entries().iter()) {
                        *o = inner_product(proj, e);
                    }
                }
                Ok(())
            }
        }
    }

    /// Quantises a flat cluster LUT into the prune LUT: L2 takes the values
    /// as-is ("lower is better"), MIPS negates them and folds the negated
    /// centroid term into the constant — the same score space as the JUNO
    /// engine's prune pass.
    fn build_cluster_qlut(&self, flat: &[f32], centroid_term: f32, qlut: &mut QuantizedLut) {
        let subspaces = self.pq.num_subspaces();
        let entries = self.pq.entries_per_subspace();
        match self.metric {
            Metric::L2 => qlut.build(flat, subspaces, entries, 0.0),
            Metric::InnerProduct => {
                qlut.build_selective(flat, subspaces, entries, -centroid_term, 0.0, true);
            }
        }
    }

    /// Scans one probed cluster for one query — build the flat LUT, run the
    /// two-phase prune scan (when the cache and a prune bar are available)
    /// or the exact scan, and push candidates into `topk`. The per-cluster
    /// unit the query-major [`AnnIndex::search`] drives; the grouped batch
    /// executor runs the same arithmetic cluster-major.
    #[allow(clippy::too_many_arguments)]
    fn scan_cluster_single(
        &self,
        query: &[f32],
        cluster: usize,
        scan: Option<&ClusterScan>,
        flat: &mut Vec<f32>,
        qlut: &mut QuantizedLut,
        lane_sums: &mut [u16; BLOCK_LANES],
        topk: &mut TopK,
        ctr: &mut PqCounters,
    ) -> Result<()> {
        let subspaces = self.pq.num_subspaces();
        let entries = self.pq.entries_per_subspace();
        self.cluster_flat_lut(query, cluster, flat)?;
        ctr.lut_builds += 1;
        // For MIPS the centroid contribution is constant per cluster.
        let centroid_term = match self.metric {
            Metric::L2 => 0.0,
            Metric::InnerProduct => inner_product(query, self.ivf.centroid(cluster)?),
        };
        let list_len = match scan {
            Some(scan) => scan.ids.len(),
            None => self.ivf.list(cluster)?.len(),
        };
        // Every list record is streamed: the invariant candidate count.
        ctr.streamed += list_len;
        // The prune pass needs a worst score to prune against and a
        // cluster large enough to amortise the O(subspaces × E)
        // quantisation — the same gating as the JUNO engine.
        let worst0 = topk.worst_score();
        let prune = scan.is_some() && worst0.is_some() && list_len >= kernel::MIN_PRUNE_POINTS;
        let flat_ref: &[f32] = flat;
        if prune {
            let scan = scan.expect("prune implies cache");
            self.build_cluster_qlut(flat_ref, centroid_term, qlut);
            if qlut.cluster_bound() >= worst0.expect("prune requires worst") as f64 {
                ctr.pruned_clusters += 1;
                ctr.pruned_points += list_len;
                return Ok(());
            }
            let ctr_ref = &mut *ctr;
            let topk_ref = &mut *topk;
            let (pp, pb) = scan.blocks.prune_scan(qlut, lane_sums, worst0, |i| {
                let code = &scan.codes[i * subspaces..(i + 1) * subspaces];
                let raw =
                    centroid_term + ProductQuantizer::adc_distance_flat(flat_ref, entries, code);
                topk_ref.push(scan.ids[i] as u64, raw);
                ctr_ref.exact += 1;
                topk_ref.worst_score()
            });
            ctr.pruned_points += pp;
            ctr.pruned_blocks += pb;
            // The exact re-rank reused the flat LUT built for the prune pass.
            ctr.lut_reuses += 1;
        } else if let Some(scan) = scan {
            // Cache built but nothing prunable yet: exact scan over the
            // cache's contiguous codes (same order as the list walk).
            for (i, &pid) in scan.ids.iter().enumerate() {
                let code = &scan.codes[i * subspaces..(i + 1) * subspaces];
                let raw =
                    centroid_term + ProductQuantizer::adc_distance_flat(flat_ref, entries, code);
                topk.push(pid as u64, raw);
                ctr.exact += 1;
            }
        } else {
            for &pid in self.ivf.list(cluster)? {
                let code = self.codes.code(pid as usize);
                let raw =
                    centroid_term + ProductQuantizer::adc_distance_flat(flat_ref, entries, code);
                topk.push(pid as u64, raw);
                ctr.exact += 1;
            }
        }
        Ok(())
    }

    /// Assembles the final [`SearchResult`] from a query's filter output and
    /// scan counters — one shared assembly for the query-major and grouped
    /// executors, so stats and simulated times are derived identically.
    fn finish_result(
        &self,
        filter_clusters: usize,
        filter_distances: usize,
        neighbors: Vec<Neighbor>,
        ctr: &PqCounters,
    ) -> SearchResult {
        let subspaces = self.pq.num_subspaces();
        let entries = self.pq.entries_per_subspace();
        // `streamed` counts every considered record (incl. bound-settled
        // ones) — invariant to pruning order and execution strategy;
        // `accumulations` models the exact ADC work actually performed.
        let accumulations = ctr.exact * subspaces;
        let candidates = ctr.streamed;
        let lut_distances = filter_clusters * entries * subspaces;
        let mut stats = SearchStats {
            filter_distances,
            lut_distances,
            candidates,
            accumulations,
            pruned_points: ctr.pruned_points,
            pruned_blocks: ctr.pruned_blocks,
            pruned_clusters: ctr.pruned_clusters,
            lut_builds: ctr.lut_builds,
            lut_reuses: ctr.lut_reuses,
            ..SearchStats::default()
        };
        let simulated_us = self.sim.fill_ivfpq_times(
            &mut stats,
            self.ivf.n_clusters(),
            self.dim(),
            lut_distances,
            self.pq.sub_dim(),
            candidates,
            subspaces,
        );
        SearchResult {
            neighbors,
            simulated_us,
            stats,
        }
    }
}

/// Work counters of one IVFPQ scan.
#[derive(Debug, Clone, Copy, Default)]
struct PqCounters {
    /// List records streamed (the invariant `candidates` count).
    streamed: usize,
    /// Candidates exactly re-ranked through the flat ADC sum.
    exact: usize,
    pruned_points: usize,
    pruned_blocks: usize,
    pruned_clusters: usize,
    lut_builds: usize,
    lut_reuses: usize,
}

impl PqCounters {
    fn merge(&mut self, other: &PqCounters) {
        self.streamed += other.streamed;
        self.exact += other.exact;
        self.pruned_points += other.pruned_points;
        self.pruned_blocks += other.pruned_blocks;
        self.pruned_clusters += other.pruned_clusters;
        self.lut_builds += other.lut_builds;
        self.lut_reuses += other.lut_reuses;
    }
}

/// One tile slot's per-(query, cluster) constants during a grouped visit.
#[derive(Debug, Clone, Copy, Default)]
struct PqTileMeta {
    query: u32,
    centroid_term: f32,
    /// The query's seed-pass bound, combined with the chunk-local worst via
    /// [`kernel::tighter_worst`] for pruning.
    seed: Option<f32>,
    prune: bool,
    done: bool,
}

/// Per-query accumulation slot of the grouped scan's batch arena.
#[derive(Debug)]
struct PqQuerySlot {
    topk: TopK,
    ctr: PqCounters,
    touched: bool,
}

/// Reusable per-worker state of the IVFPQ grouped batch executor: a
/// [`GROUP_TILE`]-slot tile of flat LUTs + quantised prune LUTs, and one
/// per-query slot per batch query. Allocated once per worker; steady-state
/// batches reuse it without per-query allocation.
///
/// NOTE: this arena and the plan → seed → schedule → grouped-scan → gather
/// flow below deliberately mirror the JUNO engine's executor
/// (`GroupScratch` / `search_batch_grouped` in `juno-core/src/engine.rs`) —
/// the two differ in what a "LUT" is (dense flat rows here vs selective
/// decode + thresholds there, plus tails/tombstones/hit-count modes), which
/// is why only the block driver (`BlockCodes::prune_scan_group`), the
/// schedule (`juno_common::group`) and the bound combinator
/// (`kernel::tighter_worst`) are shared. A semantic change to the
/// touch/reset, seeding or partial-merge contract in either executor MUST
/// be mirrored in the other; `tests/group_parity.rs` covers both.
#[derive(Debug)]
struct PqGroupScratch {
    tile_luts: Vec<Vec<f32>>,
    tile_qluts: Vec<QuantizedLut>,
    tile_meta: Vec<PqTileMeta>,
    slots: Vec<PqQuerySlot>,
    touched: Vec<u32>,
}

impl PqGroupScratch {
    fn begin_chunk(&mut self, num_queries: usize, k: usize, metric: Metric) {
        if self.slots.len() < num_queries {
            self.slots.resize_with(num_queries, || PqQuerySlot {
                topk: TopK::new(k, metric),
                ctr: PqCounters::default(),
                touched: false,
            });
        }
        for i in 0..self.touched.len() {
            self.slots[self.touched[i] as usize].touched = false;
        }
        self.touched.clear();
    }

    fn touch(&mut self, query: u32, k: usize, metric: Metric) {
        let slot = &mut self.slots[query as usize];
        if !slot.touched {
            slot.touched = true;
            slot.topk.reset(k, metric);
            slot.ctr = PqCounters::default();
            self.touched.push(query);
        }
    }
}

/// A query's seed-pass output: drained top-k entries, the prune bound (the
/// k-th best score, when the top-k filled) and the counters observed.
type PqSeed = (Vec<(u64, f32)>, Option<f32>, PqCounters);

/// One chunk's contribution to one query of a grouped IVFPQ batch.
struct PqPartial {
    query: u32,
    top: Vec<(u64, f32)>,
    ctr: PqCounters,
}

impl IvfPqIndex {
    fn make_group_scratch(&self) -> PqGroupScratch {
        PqGroupScratch {
            tile_luts: (0..GROUP_TILE).map(|_| Vec::new()).collect(),
            tile_qluts: (0..GROUP_TILE).map(|_| QuantizedLut::new()).collect(),
            tile_meta: vec![PqTileMeta::default(); GROUP_TILE],
            slots: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// Scans one cluster-group chunk in cluster storage order, tiles of
    /// [`GROUP_TILE`] queries at a time, and returns the per-query partials.
    fn scan_group_chunk(
        &self,
        queries: &VectorSet,
        k: usize,
        sched: &GroupSchedule,
        chunk: usize,
        seed_bounds: &[Option<f32>],
        scratch: &mut PqGroupScratch,
    ) -> Vec<PqPartial> {
        let subspaces = self.pq.num_subspaces();
        let entries = self.pq.entries_per_subspace();
        let metric = self.metric;
        scratch.begin_chunk(queries.len(), k, metric);
        let cache = if self.fastscan {
            Some(
                self.scan_cache
                    .get_or_init(|| ScanCache::build(&self.ivf, &self.codes)),
            )
        } else {
            None
        };

        for (cluster, group) in sched.chunk(chunk) {
            let scan = cache.map(|cache| &cache.clusters[cluster]);
            let list_len = match scan {
                Some(scan) => scan.ids.len(),
                None => self
                    .ivf
                    .list(cluster)
                    .expect("cluster comes from the filter stage")
                    .len(),
            };
            let centroid = match metric {
                Metric::L2 => &[][..],
                Metric::InnerProduct => self
                    .ivf
                    .centroid(cluster)
                    .expect("cluster comes from the filter stage"),
            };

            for tile_entries in group.chunks(GROUP_TILE) {
                // Phase A: build each tile query's flat LUT (+ prune LUT)
                // once for the whole cluster visit.
                for (ti, &(q, _slot)) in tile_entries.iter().enumerate() {
                    scratch.touch(q, k, metric);
                    let qi = q as usize;
                    let query = queries.row(qi);
                    self.cluster_flat_lut(query, cluster, &mut scratch.tile_luts[ti])
                        .expect("batch dimensions validated up front");
                    let seed = seed_bounds.get(qi).copied().flatten();
                    let worst0 = {
                        let qs = &mut scratch.slots[qi];
                        qs.ctr.streamed += list_len;
                        qs.ctr.lut_builds += 1;
                        kernel::tighter_worst(qs.topk.worst_score(), seed)
                    };
                    let centroid_term = match metric {
                        Metric::L2 => 0.0,
                        Metric::InnerProduct => inner_product(query, centroid),
                    };
                    let prune =
                        scan.is_some() && worst0.is_some() && list_len >= kernel::MIN_PRUNE_POINTS;
                    let mut done = false;
                    if prune {
                        self.build_cluster_qlut(
                            &scratch.tile_luts[ti],
                            centroid_term,
                            &mut scratch.tile_qluts[ti],
                        );
                        done = scratch.tile_qluts[ti].cluster_bound()
                            >= worst0.expect("prune requires worst") as f64;
                        if done {
                            let ctr = &mut scratch.slots[qi].ctr;
                            ctr.pruned_clusters += 1;
                            ctr.pruned_points += list_len;
                        }
                    }
                    scratch.tile_meta[ti] = PqTileMeta {
                        query: q,
                        centroid_term,
                        seed,
                        prune,
                        done,
                    };
                }
                let tile_len = tile_entries.len();
                let PqGroupScratch {
                    tile_luts,
                    tile_qluts,
                    tile_meta,
                    slots,
                    ..
                } = scratch;
                let tile_meta = &tile_meta[..tile_len];

                // Phase B: the multi-query prune pass — the tile's quantised
                // LUTs held against each block, survivors re-ranked exactly
                // through the same flat ADC sum as the query-major path.
                let mut lane_map = [0usize; GROUP_TILE];
                let mut lanes_n = 0usize;
                for (ti, meta) in tile_meta.iter().enumerate() {
                    if meta.prune && !meta.done {
                        lane_map[lanes_n] = ti;
                        lanes_n += 1;
                    }
                }
                if lanes_n > 0 {
                    let scan = scan.expect("prune implies cache");
                    let mut lanes = [GroupLane::new(&tile_qluts[lane_map[0]], None); GROUP_TILE];
                    for (li, &ti) in lane_map.iter().enumerate().take(lanes_n) {
                        let meta = tile_meta[ti];
                        lanes[li] = GroupLane::new(
                            &tile_qluts[ti],
                            kernel::tighter_worst(
                                slots[meta.query as usize].topk.worst_score(),
                                meta.seed,
                            ),
                        );
                    }
                    scan.blocks
                        .prune_scan_group(&mut lanes[..lanes_n], |li, i| {
                            let ti = lane_map[li];
                            let meta = tile_meta[ti];
                            let qs = &mut slots[meta.query as usize];
                            let code = &scan.codes[i * subspaces..(i + 1) * subspaces];
                            let raw = meta.centroid_term
                                + ProductQuantizer::adc_distance_flat(
                                    &tile_luts[ti],
                                    entries,
                                    code,
                                );
                            qs.topk.push(scan.ids[i] as u64, raw);
                            qs.ctr.exact += 1;
                            kernel::tighter_worst(qs.topk.worst_score(), meta.seed)
                        });
                    for (li, &ti) in lane_map.iter().enumerate().take(lanes_n) {
                        let ctr = &mut slots[tile_meta[ti].query as usize].ctr;
                        ctr.pruned_points += lanes[li].pruned_points;
                        ctr.pruned_blocks += lanes[li].pruned_blocks;
                        ctr.lut_reuses += 1;
                    }
                }

                // Phase C: queries without a prune bar scan the freshly
                // streamed cluster exactly.
                for (ti, meta) in tile_meta.iter().enumerate() {
                    if meta.prune || meta.done {
                        continue;
                    }
                    let qs = &mut slots[meta.query as usize];
                    let flat = &tile_luts[ti];
                    if let Some(scan) = scan {
                        for (i, &pid) in scan.ids.iter().enumerate() {
                            let code = &scan.codes[i * subspaces..(i + 1) * subspaces];
                            let raw = meta.centroid_term
                                + ProductQuantizer::adc_distance_flat(flat, entries, code);
                            qs.topk.push(pid as u64, raw);
                            qs.ctr.exact += 1;
                        }
                    } else {
                        for &pid in self
                            .ivf
                            .list(cluster)
                            .expect("cluster comes from the filter stage")
                        {
                            let code = self.codes.code(pid as usize);
                            let raw = meta.centroid_term
                                + ProductQuantizer::adc_distance_flat(flat, entries, code);
                            qs.topk.push(pid as u64, raw);
                            qs.ctr.exact += 1;
                        }
                    }
                }
            }
        }

        let mut out = Vec::with_capacity(scratch.touched.len());
        for i in 0..scratch.touched.len() {
            let q = scratch.touched[i];
            let qs = &mut scratch.slots[q as usize];
            let mut top = Vec::new();
            qs.topk.drain_entries(&mut top);
            out.push(PqPartial {
                query: q,
                top,
                ctr: qs.ctr,
            });
        }
        out
    }

    /// Cluster-major grouped batch search (see the `search_batch_threads`
    /// override): plan → schedule → grouped scan → per-query gather, bit-
    /// identical to a sequential [`AnnIndex::search`] loop.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AnnIndex::search`].
    pub fn search_batch_grouped(
        &self,
        queries: &VectorSet,
        k: usize,
        num_threads: usize,
    ) -> Result<Vec<SearchResult>> {
        if k == 0 {
            return Err(Error::invalid_config("k must be positive"));
        }
        let nq = queries.len();
        if nq == 0 {
            return Ok(Vec::new());
        }
        if queries.dim() != self.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.dim(),
                actual: queries.dim(),
            });
        }
        let filters = parallel::map(nq, num_threads, |i| {
            self.ivf.filter(queries.row(i), self.nprobs)
        })?
        .into_iter()
        .collect::<Result<Vec<_>>>()?;

        // Seed pass: each query scans its nearest probe query-major, so the
        // cluster-major pass starts from a tight (and provably safe) prune
        // bound instead of filling top-ks with far-cluster candidates.
        let cache = if self.fastscan {
            Some(
                self.scan_cache
                    .get_or_init(|| ScanCache::build(&self.ivf, &self.codes)),
            )
        } else {
            None
        };
        let metric = self.metric;
        let seed_results = parallel::map_with(
            nq,
            num_threads,
            0,
            || (Vec::new(), QuantizedLut::new(), [0u16; BLOCK_LANES]),
            |(flat, qlut, lane_sums), qi| -> Result<PqSeed> {
                let mut topk = TopK::new(k, metric);
                let mut ctr = PqCounters::default();
                if let Some(&c) = filters[qi].clusters.first() {
                    self.scan_cluster_single(
                        queries.row(qi),
                        c,
                        cache.map(|cache| &cache.clusters[c]),
                        flat,
                        qlut,
                        lane_sums,
                        &mut topk,
                        &mut ctr,
                    )?;
                }
                let bound = topk.worst_score();
                let mut top = Vec::new();
                topk.drain_entries(&mut top);
                Ok((top, bound, ctr))
            },
        )?
        .into_iter()
        .collect::<Result<Vec<_>>>()?;
        let seed_bounds: Vec<Option<f32>> = seed_results.iter().map(|s| s.1).collect();

        let probe_lists: Vec<&[usize]> = filters
            .iter()
            .map(|f| &f.clusters[1.min(f.clusters.len())..])
            .collect();
        let sched = GroupSchedule::build(
            self.ivf.n_clusters(),
            &probe_lists,
            1,
            |c| self.ivf.list(c).map_or(0, <[u32]>::len),
            GROUP_CHUNK_WORK,
        );
        let partial_lists = parallel::map_with(
            sched.num_chunks(),
            num_threads,
            1,
            || self.make_group_scratch(),
            |scratch, ci| self.scan_group_chunk(queries, k, &sched, ci, &seed_bounds, scratch),
        )?;

        let mut per_query: Vec<Vec<PqPartial>> = (0..nq).map(|_| Vec::new()).collect();
        for list in partial_lists {
            for partial in list {
                per_query[partial.query as usize].push(partial);
            }
        }
        let mut out = Vec::with_capacity(nq);
        for ((qi, filter), (seed_top, _, seed_ctr)) in filters.iter().enumerate().zip(&seed_results)
        {
            let mut ctr = *seed_ctr;
            let mut topk = TopK::new(k, self.metric);
            for &(id, score) in seed_top {
                topk.push_score(id, score);
            }
            for partial in &per_query[qi] {
                ctr.merge(&partial.ctr);
                for &(id, score) in &partial.top {
                    topk.push_score(id, score);
                }
            }
            out.push(self.finish_result(
                filter.clusters.len(),
                filter.distance_computations,
                topk.into_sorted_vec(),
                &ctr,
            ));
        }
        Ok(out)
    }
}

impl AnnIndex for IvfPqIndex {
    fn metric(&self) -> Metric {
        self.metric
    }

    fn dim(&self) -> usize {
        self.ivf.dim()
    }

    fn len(&self) -> usize {
        self.num_points
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult> {
        if k == 0 {
            return Err(Error::invalid_config("k must be positive"));
        }
        if query.len() != self.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.dim(),
                actual: query.len(),
            });
        }
        let filter = self.ivf.filter(query, self.nprobs)?;

        let mut topk = TopK::new(k, self.metric);
        let mut ctr = PqCounters::default();
        // Fast-scan scratch (same kernel + bound machinery as the JUNO
        // engine, so cross-engine comparisons measure the same scan).
        let mut flat: Vec<f32> = Vec::new();
        let mut qlut = QuantizedLut::new();
        let mut lane_sums = [0u16; BLOCK_LANES];
        let cache = if self.fastscan {
            Some(
                self.scan_cache
                    .get_or_init(|| ScanCache::build(&self.ivf, &self.codes)),
            )
        } else {
            None
        };

        for &c in &filter.clusters {
            self.scan_cluster_single(
                query,
                c,
                cache.map(|cache| &cache.clusters[c]),
                &mut flat,
                &mut qlut,
                &mut lane_sums,
                &mut topk,
                &mut ctr,
            )?;
        }
        Ok(self.finish_result(
            filter.clusters.len(),
            filter.distance_computations,
            topk.into_sorted_vec(),
            &ctr,
        ))
    }

    /// Batch search, cluster-major: plans the batch (probe selection per
    /// query, parallel), builds the shared cluster→query-group schedule and
    /// scans clusters in storage order — each cluster's codes stream once
    /// per [`GROUP_TILE`]-query tile through the same multi-query prune
    /// kernel the JUNO engine uses. Bit-identical (ids and distance bits) to
    /// a sequential [`AnnIndex::search`] loop; tiny batches fall back to the
    /// query-major default.
    fn search_batch_threads(
        &self,
        queries: &VectorSet,
        k: usize,
        num_threads: usize,
    ) -> Result<Vec<SearchResult>> {
        if queries.len() < MIN_GROUP_QUERIES {
            return parallel::map(queries.len(), num_threads, |i| {
                self.search(queries.row(i), k)
            })?
            .into_iter()
            .collect();
        }
        self.search_batch_grouped(queries, k, num_threads)
    }

    fn supports_mutation(&self) -> bool {
        true
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn insert(&mut self, vector: &[f32]) -> Result<u64> {
        IvfPqIndex::insert(self, vector)
    }

    fn remove(&mut self, id: u64) -> Result<bool> {
        IvfPqIndex::remove(self, id)
    }

    /// Live ids are exactly the members of the coarse inverted lists
    /// (removal prunes the list; the code rows of dead ids are retained but
    /// unreachable).
    fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = (0..self.ivf.n_clusters())
            .filter_map(|c| self.ivf.list(c).ok())
            .flat_map(|list| list.iter().map(|&id| id as u64))
            .collect();
        ids.sort_unstable();
        ids
    }

    fn snapshot(&self) -> Result<Vec<u8>> {
        Ok(self.to_snapshot_bytes())
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<()> {
        *self = IvfPqIndex::from_snapshot_bytes(bytes)?;
        Ok(())
    }

    fn name(&self) -> String {
        format!(
            "IVF{},PQ{}(nprobs={})",
            self.ivf.n_clusters(),
            self.pq.num_subspaces(),
            self.nprobs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juno_common::recall::{r1_at_100, recall_at};
    use juno_data::profiles::DatasetProfile;

    fn build(
        profile: DatasetProfile,
        n: usize,
        q: usize,
        cfg: IvfPqConfig,
    ) -> (juno_data::profiles::Dataset, IvfPqIndex) {
        let ds = profile.generate(n, q, 17).unwrap();
        let index = IvfPqIndex::build(&ds.points, &cfg).unwrap();
        (ds, index)
    }

    fn deep_cfg() -> IvfPqConfig {
        IvfPqConfig {
            n_clusters: 32,
            nprobs: 8,
            pq_subspaces: 48,
            pq_entries: 64,
            metric: Metric::L2,
            seed: 3,
        }
    }

    #[test]
    fn recall_is_reasonable_on_clustered_data() {
        let (ds, index) = build(DatasetProfile::DeepLike, 4_000, 20, deep_cfg());
        let gt = ds.ground_truth(1).unwrap();
        let retrieved: Vec<Vec<u64>> = ds
            .queries
            .iter()
            .map(|q| index.search(q, 100).unwrap().ids())
            .collect();
        let r = r1_at_100(&retrieved, &gt).unwrap();
        assert!(r > 0.8, "R1@100 {r} too low for an IVFPQ baseline");
    }

    #[test]
    fn recall_improves_with_nprobs() {
        let (ds, mut index) = build(DatasetProfile::DeepLike, 3_000, 20, deep_cfg());
        let gt = ds.ground_truth(10).unwrap();
        let recall_with = |index: &IvfPqIndex| {
            let retrieved: Vec<Vec<u64>> = ds
                .queries
                .iter()
                .map(|q| index.search(q, 10).unwrap().ids())
                .collect();
            recall_at(&retrieved, &gt, 10, 10).unwrap()
        };
        index.set_nprobs(1);
        let low = recall_with(&index);
        index.set_nprobs(16);
        let high = recall_with(&index);
        assert!(
            high >= low,
            "recall should not drop with more probes ({low} -> {high})"
        );
    }

    #[test]
    fn simulated_time_grows_with_nprobs() {
        let (ds, mut index) = build(DatasetProfile::DeepLike, 3_000, 5, deep_cfg());
        index.set_nprobs(2);
        let t2 = index.search(ds.queries.row(0), 10).unwrap().simulated_us;
        index.set_nprobs(16);
        let t16 = index.search(ds.queries.row(0), 10).unwrap().simulated_us;
        assert!(t16 > t2, "more probes must cost more simulated time");
    }

    #[test]
    fn stats_reflect_dense_lut_work() {
        let (ds, index) = build(DatasetProfile::DeepLike, 2_000, 5, deep_cfg());
        let res = index.search(ds.queries.row(0), 10).unwrap();
        assert_eq!(res.stats.filter_distances, 32);
        // Dense LUT: nprobs × E × subspaces pairwise distances.
        assert_eq!(res.stats.lut_distances, 8 * 64 * 48);
        assert!(res.stats.candidates > 0);
        // `candidates` counts considered points (incl. bound-pruned ones);
        // accumulations reflect only the exactly re-ranked remainder.
        assert_eq!(
            res.stats.accumulations,
            (res.stats.candidates - res.stats.pruned_points) * 48
        );
        assert!(res.stats.lut_us > res.stats.filter_us);
    }

    #[test]
    fn inner_product_metric_ranks_by_dot_product() {
        let cfg = IvfPqConfig {
            n_clusters: 16,
            nprobs: 8,
            pq_subspaces: 40,
            pq_entries: 32,
            metric: Metric::InnerProduct,
            seed: 5,
        };
        let (ds, index) = build(DatasetProfile::TtiLike, 2_000, 10, cfg);
        let gt = ds.ground_truth(10).unwrap();
        let retrieved: Vec<Vec<u64>> = ds
            .queries
            .iter()
            .map(|q| index.search(q, 100).unwrap().ids())
            .collect();
        let r = recall_at(&retrieved, &gt, 10, 100).unwrap();
        assert!(r > 0.5, "MIPS recall {r} too low");
        // Raw distances are inner products: best neighbour should have the
        // largest value.
        let res = index.search(ds.queries.row(0), 5).unwrap();
        for w in res.neighbors.windows(2) {
            assert!(w[0].distance >= w[1].distance);
        }
    }

    #[test]
    fn mutation_inserts_and_removes_points() {
        let (ds, mut index) = build(DatasetProfile::DeepLike, 1_500, 4, deep_cfg());
        let n0 = index.len();
        let probe = ds.points.row(7).to_vec();
        let id = index.insert(&probe).unwrap();
        assert_eq!(id as usize, n0);
        assert_eq!(index.len(), n0 + 1);
        assert!(index.supports_mutation());
        let res = index.search(&probe, 5).unwrap();
        assert!(res.ids().contains(&id), "inserted duplicate not retrieved");

        assert!(index.remove(id).unwrap());
        assert!(!index.remove(id).unwrap());
        assert!(!index.remove(u64::MAX).unwrap());
        assert_eq!(index.len(), n0);
        assert!(!index.search(&probe, 5).unwrap().ids().contains(&id));
        assert!(index.insert(&[1.0; 3]).is_err());
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical_including_mutation() {
        let (ds, mut index) = build(DatasetProfile::DeepLike, 1_200, 6, deep_cfg());
        for i in 0..25 {
            index.insert(ds.points.row(i * 13)).unwrap();
        }
        for id in (0..120u64).step_by(4) {
            assert!(index.remove(id).unwrap());
        }
        let bytes = index.snapshot().unwrap();
        let restored = IvfPqIndex::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), index.len());
        for q in ds.queries.iter() {
            let a = index.search(q, 20).unwrap();
            let b = restored.search(q, 20).unwrap();
            assert_eq!(a.ids(), b.ids());
            for (na, nb) in a.neighbors.iter().zip(&b.neighbors) {
                assert_eq!(na.distance.to_bits(), nb.distance.to_bits());
            }
        }
        // Corruption and truncation are rejected without panicking.
        for len in (0..bytes.len()).step_by(131) {
            assert!(IvfPqIndex::from_snapshot_bytes(&bytes[..len]).is_err());
        }
        let mut wrong_kind = bytes.clone();
        wrong_kind[12] ^= 0xFF;
        assert!(IvfPqIndex::from_snapshot_bytes(&wrong_kind).is_err());
        // In-place trait restore.
        let (_, mut other) = build(DatasetProfile::DeepLike, 800, 2, deep_cfg());
        other.restore(&bytes).unwrap();
        assert_eq!(other.len(), index.len());
        assert!(index.supports_snapshot());
    }

    #[test]
    fn fastscan_results_are_bit_identical_to_the_dense_scan() {
        for (profile, metric, pq_entries) in [
            (DatasetProfile::DeepLike, Metric::L2, 64),
            (DatasetProfile::DeepLike, Metric::L2, 16), // nibble-packed path
            (DatasetProfile::TtiLike, Metric::InnerProduct, 32),
        ] {
            let cfg = IvfPqConfig {
                n_clusters: 24,
                nprobs: 8,
                pq_subspaces: 48,
                pq_entries,
                metric,
                seed: 11,
            };
            let subspaces = if metric == Metric::InnerProduct {
                40
            } else {
                48
            };
            let cfg = IvfPqConfig {
                pq_subspaces: subspaces,
                ..cfg
            };
            let (ds, mut index) = build(profile, 2_000, 10, cfg);
            // Mutate so the rebuilt scan cache also covers surgically edited
            // lists.
            for id in (0..100u64).step_by(7) {
                assert!(index.remove(id).unwrap());
            }
            for i in 0..20 {
                index.insert(ds.points.row(i * 31)).unwrap();
            }
            assert!(index.fastscan_enabled());
            let fast: Vec<_> = ds
                .queries
                .iter()
                .map(|q| index.search(q, 50).unwrap())
                .collect();
            index.set_fastscan(false);
            let exact: Vec<_> = ds
                .queries
                .iter()
                .map(|q| index.search(q, 50).unwrap())
                .collect();
            let mut total_pruned = 0usize;
            for (qi, (f, e)) in fast.iter().zip(&exact).enumerate() {
                assert_eq!(f.ids(), e.ids(), "{metric} E={pq_entries} query {qi}");
                for (nf, ne) in f.neighbors.iter().zip(&e.neighbors) {
                    assert_eq!(
                        nf.distance.to_bits(),
                        ne.distance.to_bits(),
                        "{metric} E={pq_entries} query {qi}"
                    );
                }
                total_pruned +=
                    f.stats.pruned_points + f.stats.pruned_clusters + f.stats.pruned_blocks;
                assert_eq!(e.stats.pruned_points, 0, "dense path never prunes");
            }
            assert!(
                total_pruned > 0,
                "{metric} E={pq_entries}: fast-scan never pruned anything"
            );
        }
    }

    #[test]
    fn accessors_and_validation() {
        let (ds, index) = build(DatasetProfile::DeepLike, 1_000, 2, deep_cfg());
        assert_eq!(index.len(), 1_000);
        assert_eq!(index.dim(), 96);
        assert_eq!(index.nprobs(), 8);
        assert_eq!(index.pq().num_subspaces(), 48);
        assert_eq!(index.codes().len(), 1_000);
        assert!(index.name().starts_with("IVF32,PQ48"));
        assert!(index.search(ds.queries.row(0), 0).is_err());
        assert!(index.search(&[0.0; 4], 1).is_err());
        assert!(IvfPqIndex::build(
            &ds.points,
            &IvfPqConfig {
                nprobs: 0,
                ..deep_cfg()
            }
        )
        .is_err());
    }
}
