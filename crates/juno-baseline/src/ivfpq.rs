//! The FAISS-style IVFPQ baseline with dense L2-LUT construction.
//!
//! This is the pipeline the paper profiles in Section 3 and competes against
//! in Section 6: filtering (stage A), dense per-cluster LUT construction
//! (stages B–C) and distance calculation over all candidate points (stage D).
//! Both L2 and inner-product metrics are supported; for MIPS the LUT holds
//! per-subspace inner products and the per-cluster centroid term is added
//! once per candidate, following the additive decomposition
//! `IP(q, c + r) = IP(q, c) + Σ_s IP(q_s, r_s)`.

use crate::sim::SimulationConfig;
use juno_common::error::{Error, Result};
use juno_common::index::{AnnIndex, SearchResult, SearchStats};
use juno_common::metric::{inner_product, Metric};
use juno_common::topk::TopK;
use juno_common::vector::VectorSet;
use juno_quant::ivf::{IvfIndex, IvfTrainConfig};
use juno_quant::pq::{EncodedPoints, PqTrainConfig, ProductQuantizer};

/// Build/search configuration of an [`IvfPqIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvfPqConfig {
    /// Number of coarse clusters (`C`).
    pub n_clusters: usize,
    /// Number of clusters scanned per query (`nprobs`).
    pub nprobs: usize,
    /// Number of PQ subspaces (`D/M`), e.g. 48 for DEEP.
    pub pq_subspaces: usize,
    /// Codebook entries per subspace (`E`), typically 256.
    pub pq_entries: usize,
    /// Metric.
    pub metric: Metric,
    /// Training seed.
    pub seed: u64,
}

impl Default for IvfPqConfig {
    fn default() -> Self {
        Self {
            n_clusters: 64,
            nprobs: 8,
            pq_subspaces: 16,
            pq_entries: 256,
            metric: Metric::L2,
            seed: 0xFA15,
        }
    }
}

/// The FAISS-style `IVFx,PQy` index.
#[derive(Debug, Clone)]
pub struct IvfPqIndex {
    ivf: IvfIndex,
    pq: ProductQuantizer,
    codes: EncodedPoints,
    /// Inner product of each point's assigned centroid with itself is not
    /// needed; for MIPS we store nothing extra because the centroid term is
    /// computed per query per cluster.
    metric: Metric,
    nprobs: usize,
    num_points: usize,
    sim: SimulationConfig,
}

impl IvfPqIndex {
    /// Trains the coarse quantiser + PQ codebooks and encodes every point.
    ///
    /// # Errors
    ///
    /// Propagates training/configuration errors from the IVF and PQ stages.
    pub fn build(points: &VectorSet, config: &IvfPqConfig) -> Result<Self> {
        if config.nprobs == 0 {
            return Err(Error::invalid_config("nprobs must be positive"));
        }
        let ivf = IvfIndex::train(
            points,
            &IvfTrainConfig {
                n_clusters: config.n_clusters,
                metric: config.metric,
                seed: config.seed,
                ..IvfTrainConfig::default()
            },
        )?;
        let residuals = ivf.point_residuals(points)?;
        let pq = ProductQuantizer::train(
            &residuals,
            &PqTrainConfig {
                num_subspaces: config.pq_subspaces,
                entries_per_subspace: config.pq_entries,
                seed: config.seed ^ 0xBEEF,
                ..PqTrainConfig::default()
            },
        )?;
        let codes = pq.encode(&residuals)?;
        Ok(Self {
            ivf,
            pq,
            codes,
            metric: config.metric,
            nprobs: config.nprobs,
            num_points: points.len(),
            sim: SimulationConfig::default(),
        })
    }

    /// Replaces the GPU simulation configuration (builder style).
    pub fn with_simulation(mut self, sim: SimulationConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Changes the number of probed clusters (search-time knob).
    pub fn set_nprobs(&mut self, nprobs: usize) {
        self.nprobs = nprobs.max(1);
    }

    /// The number of probed clusters.
    pub fn nprobs(&self) -> usize {
        self.nprobs
    }

    /// Borrow of the coarse quantiser.
    pub fn ivf(&self) -> &IvfIndex {
        &self.ivf
    }

    /// Borrow of the trained product quantiser.
    pub fn pq(&self) -> &ProductQuantizer {
        &self.pq
    }

    /// Borrow of the encoded points.
    pub fn codes(&self) -> &EncodedPoints {
        &self.codes
    }

    /// Builds the per-cluster LUT of a query for one selected cluster.
    ///
    /// For L2 the LUT rows are squared distances between the query *residual*
    /// projection and the codebook entries; for MIPS they are inner products
    /// between the query projection and the entries.
    fn cluster_lut(&self, query: &[f32], cluster: usize) -> Result<Vec<Vec<f32>>> {
        match self.metric {
            Metric::L2 => {
                let residual = self.ivf.query_residual(query, cluster)?;
                self.pq.dense_lut(&residual)
            }
            Metric::InnerProduct => {
                let sub_dim = self.pq.sub_dim();
                let mut lut = Vec::with_capacity(self.pq.num_subspaces());
                for (s, cb) in self.pq.codebooks().iter().enumerate() {
                    let proj = &query[s * sub_dim..(s + 1) * sub_dim];
                    lut.push(
                        cb.entries()
                            .iter()
                            .map(|e| inner_product(proj, e))
                            .collect(),
                    );
                }
                Ok(lut)
            }
        }
    }
}

impl AnnIndex for IvfPqIndex {
    fn metric(&self) -> Metric {
        self.metric
    }

    fn dim(&self) -> usize {
        self.ivf.dim()
    }

    fn len(&self) -> usize {
        self.num_points
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult> {
        if k == 0 {
            return Err(Error::invalid_config("k must be positive"));
        }
        if query.len() != self.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.dim(),
                actual: query.len(),
            });
        }
        let filter = self.ivf.filter(query, self.nprobs)?;
        let subspaces = self.pq.num_subspaces();
        let entries = self.pq.entries_per_subspace();

        let mut topk = TopK::new(k, self.metric);
        let mut candidates = 0usize;
        for &c in &filter.clusters {
            let lut = self.cluster_lut(query, c)?;
            // For MIPS the centroid contribution is constant per cluster.
            let centroid_term = match self.metric {
                Metric::L2 => 0.0,
                Metric::InnerProduct => inner_product(query, self.ivf.centroid(c)?),
            };
            for &pid in self.ivf.list(c)? {
                let code = self.codes.code(pid as usize);
                let partial = ProductQuantizer::adc_distance(&lut, code);
                let raw = centroid_term + partial;
                topk.push(pid as u64, raw);
                candidates += 1;
            }
        }

        let lut_distances = filter.clusters.len() * entries * subspaces;
        let mut stats = SearchStats {
            filter_distances: filter.distance_computations,
            lut_distances,
            candidates,
            accumulations: candidates * subspaces,
            ..SearchStats::default()
        };
        let simulated_us = self.sim.fill_ivfpq_times(
            &mut stats,
            self.ivf.n_clusters(),
            self.dim(),
            lut_distances,
            self.pq.sub_dim(),
            candidates,
            subspaces,
        );
        Ok(SearchResult {
            neighbors: topk.into_sorted_vec(),
            simulated_us,
            stats,
        })
    }

    fn name(&self) -> String {
        format!(
            "IVF{},PQ{}(nprobs={})",
            self.ivf.n_clusters(),
            self.pq.num_subspaces(),
            self.nprobs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juno_common::recall::{r1_at_100, recall_at};
    use juno_data::profiles::DatasetProfile;

    fn build(
        profile: DatasetProfile,
        n: usize,
        q: usize,
        cfg: IvfPqConfig,
    ) -> (juno_data::profiles::Dataset, IvfPqIndex) {
        let ds = profile.generate(n, q, 17).unwrap();
        let index = IvfPqIndex::build(&ds.points, &cfg).unwrap();
        (ds, index)
    }

    fn deep_cfg() -> IvfPqConfig {
        IvfPqConfig {
            n_clusters: 32,
            nprobs: 8,
            pq_subspaces: 48,
            pq_entries: 64,
            metric: Metric::L2,
            seed: 3,
        }
    }

    #[test]
    fn recall_is_reasonable_on_clustered_data() {
        let (ds, index) = build(DatasetProfile::DeepLike, 4_000, 20, deep_cfg());
        let gt = ds.ground_truth(1).unwrap();
        let retrieved: Vec<Vec<u64>> = ds
            .queries
            .iter()
            .map(|q| index.search(q, 100).unwrap().ids())
            .collect();
        let r = r1_at_100(&retrieved, &gt).unwrap();
        assert!(r > 0.8, "R1@100 {r} too low for an IVFPQ baseline");
    }

    #[test]
    fn recall_improves_with_nprobs() {
        let (ds, mut index) = build(DatasetProfile::DeepLike, 3_000, 20, deep_cfg());
        let gt = ds.ground_truth(10).unwrap();
        let recall_with = |index: &IvfPqIndex| {
            let retrieved: Vec<Vec<u64>> = ds
                .queries
                .iter()
                .map(|q| index.search(q, 10).unwrap().ids())
                .collect();
            recall_at(&retrieved, &gt, 10, 10).unwrap()
        };
        index.set_nprobs(1);
        let low = recall_with(&index);
        index.set_nprobs(16);
        let high = recall_with(&index);
        assert!(
            high >= low,
            "recall should not drop with more probes ({low} -> {high})"
        );
    }

    #[test]
    fn simulated_time_grows_with_nprobs() {
        let (ds, mut index) = build(DatasetProfile::DeepLike, 3_000, 5, deep_cfg());
        index.set_nprobs(2);
        let t2 = index.search(ds.queries.row(0), 10).unwrap().simulated_us;
        index.set_nprobs(16);
        let t16 = index.search(ds.queries.row(0), 10).unwrap().simulated_us;
        assert!(t16 > t2, "more probes must cost more simulated time");
    }

    #[test]
    fn stats_reflect_dense_lut_work() {
        let (ds, index) = build(DatasetProfile::DeepLike, 2_000, 5, deep_cfg());
        let res = index.search(ds.queries.row(0), 10).unwrap();
        assert_eq!(res.stats.filter_distances, 32);
        // Dense LUT: nprobs × E × subspaces pairwise distances.
        assert_eq!(res.stats.lut_distances, 8 * 64 * 48);
        assert!(res.stats.candidates > 0);
        assert_eq!(res.stats.accumulations, res.stats.candidates * 48);
        assert!(res.stats.lut_us > res.stats.filter_us);
    }

    #[test]
    fn inner_product_metric_ranks_by_dot_product() {
        let cfg = IvfPqConfig {
            n_clusters: 16,
            nprobs: 8,
            pq_subspaces: 40,
            pq_entries: 32,
            metric: Metric::InnerProduct,
            seed: 5,
        };
        let (ds, index) = build(DatasetProfile::TtiLike, 2_000, 10, cfg);
        let gt = ds.ground_truth(10).unwrap();
        let retrieved: Vec<Vec<u64>> = ds
            .queries
            .iter()
            .map(|q| index.search(q, 100).unwrap().ids())
            .collect();
        let r = recall_at(&retrieved, &gt, 10, 100).unwrap();
        assert!(r > 0.5, "MIPS recall {r} too low");
        // Raw distances are inner products: best neighbour should have the
        // largest value.
        let res = index.search(ds.queries.row(0), 5).unwrap();
        for w in res.neighbors.windows(2) {
            assert!(w[0].distance >= w[1].distance);
        }
    }

    #[test]
    fn accessors_and_validation() {
        let (ds, index) = build(DatasetProfile::DeepLike, 1_000, 2, deep_cfg());
        assert_eq!(index.len(), 1_000);
        assert_eq!(index.dim(), 96);
        assert_eq!(index.nprobs(), 8);
        assert_eq!(index.pq().num_subspaces(), 48);
        assert_eq!(index.codes().len(), 1_000);
        assert!(index.name().starts_with("IVF32,PQ48"));
        assert!(index.search(ds.queries.row(0), 0).is_err());
        assert!(index.search(&[0.0; 4], 1).is_err());
        assert!(IvfPqIndex::build(
            &ds.points,
            &IvfPqConfig {
                nprobs: 0,
                ..deep_cfg()
            }
        )
        .is_err());
    }
}
