//! Exact brute-force ("Flat") index.
//!
//! Computes the metric between the query and every indexed point. Slow but
//! exact; used as the accuracy reference, for small-scale sanity checks, and
//! as the building block of the lossless mode discussed in the paper's
//! Section 6.5.

use crate::sim::SimulationConfig;
use juno_common::error::{Error, Result};
use juno_common::index::{AnnIndex, SearchResult, SearchStats};
use juno_common::metric::Metric;
use juno_common::topk::TopK;
use juno_common::vector::VectorSet;

/// An exact nearest-neighbour index.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    points: VectorSet,
    metric: Metric,
    sim: SimulationConfig,
}

impl FlatIndex {
    /// Builds a flat index over the given points.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyInput`] when `points` is empty.
    pub fn new(points: VectorSet, metric: Metric) -> Result<Self> {
        if points.is_empty() {
            return Err(Error::empty_input("flat index requires at least one point"));
        }
        Ok(Self {
            points,
            metric,
            sim: SimulationConfig::default(),
        })
    }

    /// Replaces the GPU simulation configuration (builder style).
    pub fn with_simulation(mut self, sim: SimulationConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Borrow of the indexed points.
    pub fn points(&self) -> &VectorSet {
        &self.points
    }
}

impl AnnIndex for FlatIndex {
    fn metric(&self) -> Metric {
        self.metric
    }

    fn dim(&self) -> usize {
        self.points.dim()
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult> {
        if query.len() != self.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.dim(),
                actual: query.len(),
            });
        }
        if k == 0 {
            return Err(Error::invalid_config("k must be positive"));
        }
        let mut topk = TopK::new(k, self.metric);
        for (i, row) in self.points.iter().enumerate() {
            topk.push(i as u64, self.metric.distance(query, row));
        }
        let mut stats = SearchStats {
            candidates: self.points.len(),
            accumulations: self.points.len() * self.dim(),
            ..SearchStats::default()
        };
        let simulated_us = self
            .sim
            .flat_scan_us(&mut stats, self.points.len(), self.dim());
        Ok(SearchResult {
            neighbors: topk.into_sorted_vec(),
            simulated_us,
            stats,
        })
    }

    fn name(&self) -> String {
        format!("Flat({})", self.metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juno_common::recall::{r1_at_100, GroundTruth};
    use juno_data::profiles::DatasetProfile;

    #[test]
    fn exact_search_matches_ground_truth() {
        let ds = DatasetProfile::DeepLike.generate(800, 10, 5).unwrap();
        let index = FlatIndex::new(ds.points.clone(), ds.metric()).unwrap();
        let gt = ds.ground_truth(10).unwrap();
        let mut retrieved = Vec::new();
        for q in ds.queries.iter() {
            retrieved.push(index.search(q, 10).unwrap().ids());
        }
        // Exact search: retrieved ids equal ground truth ids exactly.
        for (got, want) in retrieved.iter().zip(gt.truth.iter()) {
            assert_eq!(got, want);
        }
        assert!((r1_at_100(&retrieved, &gt).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inner_product_flat_search() {
        let points =
            VectorSet::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![3.0, 3.0]]).unwrap();
        let index = FlatIndex::new(points, Metric::InnerProduct).unwrap();
        let res = index.search(&[1.0, 1.0], 1).unwrap();
        assert_eq!(res.neighbors[0].id, 2);
        assert_eq!(index.name(), "Flat(IP)");
    }

    #[test]
    fn validates_inputs() {
        let points = VectorSet::from_rows(vec![vec![0.0, 0.0]]).unwrap();
        let index = FlatIndex::new(points, Metric::L2).unwrap();
        assert!(index.search(&[1.0], 1).is_err());
        assert!(index.search(&[1.0, 1.0], 0).is_err());
        assert!(FlatIndex::new(VectorSet::new(3).unwrap(), Metric::L2).is_err());
        assert_eq!(index.len(), 1);
        assert_eq!(index.dim(), 2);
        assert_eq!(index.points().len(), 1);
    }

    #[test]
    fn reports_simulated_time_and_stats() {
        let ds = DatasetProfile::SiftLike.generate(500, 2, 11).unwrap();
        let index = FlatIndex::new(ds.points.clone(), ds.metric()).unwrap();
        let res = index.search(ds.queries.row(0), 5).unwrap();
        assert!(res.simulated_us > 0.0);
        assert_eq!(res.stats.candidates, 500);
        // Ground truth helper is compatible with the result format.
        let gt = GroundTruth::brute_force(&ds.points, &ds.queries, ds.metric(), 5).unwrap();
        assert_eq!(gt.truth[0], res.ids());
    }
}
