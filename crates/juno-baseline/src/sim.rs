//! Simulated GPU stage timing shared by the baseline indexes.
//!
//! The baselines run their actual search logic on the CPU (so recall numbers
//! are real), while their *reported* latency is the analytic GPU time of the
//! work they performed, using the `juno-gpu` cost model. Launch overheads are
//! amortised over a configurable query batch, mirroring how the paper
//! measures throughput over batches of 10 000 queries.

use juno_common::index::SearchStats;
use juno_gpu::cost::{dense_lut_cost, distance_calc_cost, filtering_cost};
use juno_gpu::device::GpuDevice;

/// Parameters describing how simulated times are derived.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationConfig {
    /// The device the (virtual) search runs on.
    pub device: GpuDevice,
    /// Number of queries a batch is assumed to contain when amortising kernel
    /// launch overheads.
    pub batch_size: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            device: GpuDevice::rtx4090(),
            batch_size: 10_000,
        }
    }
}

impl SimulationConfig {
    /// Creates a simulation config for a specific device.
    pub fn on_device(device: GpuDevice) -> Self {
        Self {
            device,
            ..Self::default()
        }
    }

    /// Fills the per-stage simulated times of an IVFPQ-style query given its
    /// work description, returning the total per-query time in microseconds.
    ///
    /// * `clusters` / `dim` — filtering work (`C` distances of dimension `D`);
    /// * `lut_entries` — pairwise entry distances computed while building the
    ///   LUT (0 for engines that skip it);
    /// * `sub_dim` — dimension of each subspace;
    /// * `candidates` / `subspaces` — accumulation work.
    #[allow(clippy::too_many_arguments)]
    pub fn fill_ivfpq_times(
        &self,
        stats: &mut SearchStats,
        clusters: usize,
        dim: usize,
        lut_entries: usize,
        sub_dim: usize,
        candidates: usize,
        subspaces: usize,
    ) -> f64 {
        let q = self.batch_size.max(1);
        let filter = filtering_cost(q, clusters, dim).estimate_us(&self.device) / q as f64;
        // `dense_lut_cost` expects the entry count per (query, cluster); we
        // already have the aggregate number of pairwise distances, so pass it
        // as a single-cluster single-subspace equivalent.
        let lut = if lut_entries == 0 {
            0.0
        } else {
            dense_lut_cost(q, 1, lut_entries, 1, sub_dim).estimate_us(&self.device) / q as f64
        };
        let accumulate =
            distance_calc_cost(q, candidates, subspaces).estimate_us(&self.device) / q as f64;
        stats.filter_us = filter;
        stats.lut_us = lut;
        stats.accumulate_us = accumulate;
        filter + lut + accumulate
    }

    /// Simulated per-query time of a brute-force scan over `n` points of
    /// dimension `dim`.
    pub fn flat_scan_us(&self, stats: &mut SearchStats, n: usize, dim: usize) -> f64 {
        let q = self.batch_size.max(1);
        let us = filtering_cost(q, n, dim).estimate_us(&self.device) / q as f64;
        stats.accumulate_us = us;
        us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_and_distance_dominate_at_paper_scale() {
        // DEEP1M-like config, nprobs = 64: the filtering stage must be a small
        // fraction of the total (Fig. 3(a)).
        let sim = SimulationConfig::default();
        let mut stats = SearchStats::default();
        let nprobs = 64usize;
        let total =
            sim.fill_ivfpq_times(&mut stats, 4096, 96, nprobs * 256 * 48, 2, nprobs * 250, 48);
        assert!(stats.filter_us < 0.12 * total, "filter share too high");
        assert!((stats.total_us() - total).abs() < 1e-9);
    }

    #[test]
    fn times_scale_with_nprobs() {
        let sim = SimulationConfig::default();
        let mut a = SearchStats::default();
        let mut b = SearchStats::default();
        let t8 = sim.fill_ivfpq_times(&mut a, 4096, 96, 8 * 256 * 48, 2, 8 * 250, 48);
        let t64 = sim.fill_ivfpq_times(&mut b, 4096, 96, 64 * 256 * 48, 2, 64 * 250, 48);
        assert!(t64 > 3.0 * t8, "t64 {t64} vs t8 {t8}");
        // Filtering stays constant.
        assert!((a.filter_us - b.filter_us).abs() < 1e-9);
    }

    #[test]
    fn flat_scan_time_scales_with_points() {
        let sim = SimulationConfig::default();
        let mut a = SearchStats::default();
        let mut b = SearchStats::default();
        let t1 = sim.flat_scan_us(&mut a, 100_000, 128);
        let t2 = sim.flat_scan_us(&mut b, 1_000_000, 128);
        assert!(t2 > 5.0 * t1);
    }

    #[test]
    fn device_choice_changes_latency() {
        let fast = SimulationConfig::on_device(GpuDevice::rtx4090());
        let slow = SimulationConfig::on_device(GpuDevice::a40());
        let mut s1 = SearchStats::default();
        let mut s2 = SearchStats::default();
        let f = fast.fill_ivfpq_times(&mut s1, 4096, 96, 64 * 256 * 48, 2, 16_000, 48);
        let s = slow.fill_ivfpq_times(&mut s2, 4096, 96, 64 * 256 * 48, 2, 16_000, 48);
        assert!(
            s > f,
            "A40 ({s}) should be slower than the 4090 ({f}): lower FLOP rate and bandwidth"
        );
    }
}
