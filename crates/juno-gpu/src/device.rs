//! GPU device descriptors.
//!
//! The paper evaluates on three GPUs (Section 6.1): RTX 4090 (16384 CUDA
//! cores / 128 RT cores, Ada), A40 (10752 / 84, Ampere) and A100 (6912 / 0,
//! Ampere data-centre part without RT cores). The per-SM CUDA/Tensor
//! throughput of the 4090 is ~1.4× that of the A40 (Section 6.4), which the
//! default figures below encode.

use juno_rt::hardware::{RtCoreGeneration, RtCoreModel};

/// An analytic description of one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuDevice {
    /// Marketing name, used in reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Number of CUDA (FP32) cores.
    pub cuda_cores: usize,
    /// Peak FP32 throughput in GFLOP/s.
    pub fp32_gflops: f64,
    /// Peak Tensor-core throughput (FP16/TF32 accumulate) in GFLOP/s.
    pub tensor_gflops: f64,
    /// DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// RT-core model (generation, count, throughput).
    pub rt: RtCoreModel,
}

impl GpuDevice {
    /// NVIDIA GeForce RTX 4090 (Ada): 128 SMs, 16384 CUDA cores, 128 Gen-3 RT
    /// cores.
    pub fn rtx4090() -> Self {
        Self {
            name: "RTX 4090".to_string(),
            sm_count: 128,
            cuda_cores: 16_384,
            fp32_gflops: 82_600.0,
            tensor_gflops: 330_000.0,
            mem_bandwidth_gbs: 1_008.0,
            launch_overhead_us: 5.0,
            rt: RtCoreModel::ada(128),
        }
    }

    /// NVIDIA A40 (Ampere): 84 SMs, 10752 CUDA cores, 84 Gen-2 RT cores.
    pub fn a40() -> Self {
        Self {
            name: "A40".to_string(),
            sm_count: 84,
            cuda_cores: 10_752,
            fp32_gflops: 37_400.0,
            tensor_gflops: 149_700.0,
            mem_bandwidth_gbs: 696.0,
            launch_overhead_us: 5.0,
            rt: RtCoreModel::ampere(84),
        }
    }

    /// NVIDIA A100 (Ampere data-centre): 108 SMs, 6912 CUDA cores, **no** RT
    /// cores — OptiX falls back to a software traversal on CUDA cores.
    pub fn a100() -> Self {
        Self {
            name: "A100".to_string(),
            sm_count: 108,
            cuda_cores: 6_912,
            fp32_gflops: 19_500.0,
            tensor_gflops: 156_000.0,
            mem_bandwidth_gbs: 1_555.0,
            launch_overhead_us: 5.0,
            rt: RtCoreModel::cuda_fallback(108),
        }
    }

    /// Returns `true` when the device has dedicated RT cores.
    pub fn has_rt_cores(&self) -> bool {
        self.rt.generation.has_hardware()
    }

    /// Per-SM FP32 throughput in GFLOP/s, used for the "1.4× per SM" style
    /// comparisons in Section 6.4.
    pub fn fp32_gflops_per_sm(&self) -> f64 {
        self.fp32_gflops / self.sm_count as f64
    }

    /// Scales the compute resources of the device by a fraction in `(0, 1]`,
    /// modelling a CUDA MPS partition that only sees that share of the SMs.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn partition(&self, fraction: f64) -> GpuDevice {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "partition fraction must be in (0, 1]"
        );
        let mut scaled = self.clone();
        scaled.name = format!("{} ({}% SMs)", self.name, (fraction * 100.0).round());
        scaled.sm_count = ((self.sm_count as f64 * fraction).round() as usize).max(1);
        scaled.cuda_cores = ((self.cuda_cores as f64 * fraction).round() as usize).max(1);
        scaled.fp32_gflops = self.fp32_gflops * fraction;
        scaled.tensor_gflops = self.tensor_gflops * fraction;
        // Memory bandwidth is shared, not partitioned, by MPS; keep it.
        scaled.rt = RtCoreModel {
            core_count: ((self.rt.core_count as f64 * fraction).round() as usize).max(1),
            ..self.rt
        };
        scaled
    }

    /// The RT-core generation of this device.
    pub fn rt_generation(&self) -> RtCoreGeneration {
        self.rt.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_core_counts() {
        let rtx = GpuDevice::rtx4090();
        let a40 = GpuDevice::a40();
        let a100 = GpuDevice::a100();
        assert_eq!(rtx.cuda_cores, 16_384);
        assert_eq!(rtx.rt.core_count, 128);
        assert_eq!(a40.cuda_cores, 10_752);
        assert_eq!(a40.rt.core_count, 84);
        assert_eq!(a100.cuda_cores, 6_912);
        assert!(!a100.has_rt_cores());
        assert!(rtx.has_rt_cores());
        assert!(a40.has_rt_cores());
    }

    #[test]
    fn rtx4090_per_sm_is_about_1_4x_a40() {
        let ratio =
            GpuDevice::rtx4090().fp32_gflops_per_sm() / GpuDevice::a40().fp32_gflops_per_sm();
        assert!((1.2..=1.6).contains(&ratio), "per-SM ratio {ratio}");
    }

    #[test]
    fn partition_scales_compute_not_bandwidth() {
        let full = GpuDevice::rtx4090();
        let part = full.partition(0.1);
        assert!(part.sm_count >= 12 && part.sm_count <= 13);
        assert!((part.fp32_gflops - full.fp32_gflops * 0.1).abs() < 1e-6);
        assert_eq!(part.mem_bandwidth_gbs, full.mem_bandwidth_gbs);
        assert!(part.rt.core_count < full.rt.core_count);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn partition_rejects_zero() {
        let _ = GpuDevice::a40().partition(0.0);
    }

    #[test]
    fn rt_generation_accessor() {
        assert_eq!(
            GpuDevice::rtx4090().rt_generation(),
            RtCoreGeneration::Gen3Ada
        );
        assert_eq!(GpuDevice::a100().rt_generation(), RtCoreGeneration::None);
    }
}
