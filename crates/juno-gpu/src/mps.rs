//! CUDA MPS-style SM partitioning.
//!
//! JUNO uses CUDA MPS to split the GPU 9:1 — 90 % of the SMs run the L2-LUT
//! construction (RT cores) and 10 % run the distance calculation (Tensor
//! cores) — so the two stages can overlap with similar latencies (paper
//! Section 5.3). [`MpsPartition`] captures that split and produces the two
//! scaled device views.

use crate::device::GpuDevice;
use juno_common::error::{Error, Result};

/// A two-way fractional split of a device's SMs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpsPartition {
    /// Fraction of SMs given to the first stage (L2-LUT construction).
    pub lut_fraction: f64,
    /// Fraction of SMs given to the second stage (distance calculation).
    pub accumulate_fraction: f64,
}

impl Default for MpsPartition {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl MpsPartition {
    /// The paper's 9:1 split.
    pub fn paper_default() -> Self {
        Self {
            lut_fraction: 0.9,
            accumulate_fraction: 0.1,
        }
    }

    /// Creates a custom split.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] unless both fractions are positive and
    /// they sum to at most 1.
    pub fn new(lut_fraction: f64, accumulate_fraction: f64) -> Result<Self> {
        if lut_fraction <= 0.0 || accumulate_fraction <= 0.0 {
            return Err(Error::invalid_config(
                "partition fractions must be positive",
            ));
        }
        if lut_fraction + accumulate_fraction > 1.0 + 1e-9 {
            return Err(Error::invalid_config(format!(
                "partition fractions sum to {} > 1",
                lut_fraction + accumulate_fraction
            )));
        }
        Ok(Self {
            lut_fraction,
            accumulate_fraction,
        })
    }

    /// The device view seen by the L2-LUT construction stage.
    pub fn lut_device(&self, device: &GpuDevice) -> GpuDevice {
        device.partition(self.lut_fraction)
    }

    /// The device view seen by the distance-calculation stage.
    pub fn accumulate_device(&self, device: &GpuDevice) -> GpuDevice {
        device.partition(self.accumulate_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_nine_to_one() {
        let p = MpsPartition::default();
        assert!((p.lut_fraction - 0.9).abs() < 1e-12);
        assert!((p.accumulate_fraction - 0.1).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(MpsPartition::new(0.5, 0.5).is_ok());
        assert!(MpsPartition::new(0.0, 0.5).is_err());
        assert!(MpsPartition::new(0.7, 0.5).is_err());
        assert!(MpsPartition::new(0.5, -0.1).is_err());
    }

    #[test]
    fn device_views_scale_resources() {
        let dev = GpuDevice::rtx4090();
        let p = MpsPartition::paper_default();
        let lut = p.lut_device(&dev);
        let acc = p.accumulate_device(&dev);
        assert!(lut.sm_count > acc.sm_count);
        assert!(lut.rt.core_count > acc.rt.core_count);
        assert!(lut.sm_count < dev.sm_count);
    }
}
