//! Roofline-style kernel cost model.
//!
//! A GPU kernel is characterised by the floating-point work it performs and
//! the bytes it moves through DRAM; its latency on a device is the larger of
//! compute time and memory time (the "roofline"), plus a launch overhead.
//! This is deliberately simple — the breakdown figures of the paper
//! (Fig. 3(a), Fig. 11(a)) depend on how stage costs scale with `nprobs`, the
//! number of codebook entries and the number of candidate points, which the
//! model captures, not on absolute microseconds.

use crate::device::GpuDevice;

/// Which execution resource a kernel primarily occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Ordinary CUDA-core (FP32) kernel.
    Cuda,
    /// Tensor-core GEMM-style kernel.
    Tensor,
}

/// The resource usage of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Floating point operations performed.
    pub flops: f64,
    /// Bytes read from or written to DRAM.
    pub bytes: f64,
    /// Which core type executes the arithmetic.
    pub kind: KernelKind,
}

impl KernelCost {
    /// A CUDA-core kernel cost.
    pub fn cuda(flops: f64, bytes: f64) -> Self {
        Self {
            flops,
            bytes,
            kind: KernelKind::Cuda,
        }
    }

    /// A Tensor-core kernel cost.
    pub fn tensor(flops: f64, bytes: f64) -> Self {
        Self {
            flops,
            bytes,
            kind: KernelKind::Tensor,
        }
    }

    /// Adds another kernel's work to this one (they are assumed to be fused /
    /// launched back to back on the same resource).
    pub fn accumulate(&mut self, other: &KernelCost) {
        self.flops += other.flops;
        self.bytes += other.bytes;
    }

    /// Estimated latency of this kernel on `device`, in microseconds.
    pub fn estimate_us(&self, device: &GpuDevice) -> f64 {
        let gflops = match self.kind {
            KernelKind::Cuda => device.fp32_gflops,
            KernelKind::Tensor => device.tensor_gflops,
        };
        // GFLOP/s = FLOP/ns, so flops / (gflops * 1e3) gives microseconds.
        let compute_us = self.flops / (gflops * 1e3).max(1e-9);
        let memory_us = self.bytes / (device.mem_bandwidth_gbs * 1e3).max(1e-9);
        device.launch_overhead_us + compute_us.max(memory_us)
    }

    /// Arithmetic intensity in FLOPs per byte (0 when no bytes are moved).
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes <= 0.0 {
            0.0
        } else {
            self.flops / self.bytes
        }
    }
}

/// Cost of the IVFPQ **filtering** stage for a batch of queries: each query
/// computes `C` distances over `dim` components (paper stage A; its cost is
/// independent of `nprobs`, which Fig. 3(a) shows as the flat line).
pub fn filtering_cost(queries: usize, clusters: usize, dim: usize) -> KernelCost {
    let flops = queries as f64 * clusters as f64 * dim as f64 * 3.0; // sub, mul, add
    let bytes = (queries as f64 + clusters as f64) * dim as f64 * 4.0
        + queries as f64 * clusters as f64 * 4.0;
    KernelCost::cuda(flops, bytes)
}

/// Cost of the dense **L2-LUT construction** stage (paper stage C): for each
/// query and each of its `nprobs` clusters, `E` entries × `D/M` subspaces ×
/// `M` dimensions of pairwise distance work.
pub fn dense_lut_cost(
    queries: usize,
    nprobs: usize,
    entries: usize,
    subspaces: usize,
    sub_dim: usize,
) -> KernelCost {
    let pairwise = queries as f64 * nprobs as f64 * entries as f64 * subspaces as f64;
    let flops = pairwise * sub_dim as f64 * 3.0;
    let bytes = pairwise * 4.0 // write the LUT
        + queries as f64 * nprobs as f64 * subspaces as f64 * sub_dim as f64 * 4.0 // residuals
        + entries as f64 * subspaces as f64 * sub_dim as f64 * 4.0; // codebook (cached across queries)
    KernelCost::cuda(flops, bytes)
}

/// Cost of the **distance calculation** stage (paper stage D) on CUDA cores:
/// every candidate point needs `D/M` LUT lookups and additions.
pub fn distance_calc_cost(queries: usize, candidates: usize, subspaces: usize) -> KernelCost {
    let lookups = queries as f64 * candidates as f64 * subspaces as f64;
    let flops = lookups; // one add per lookup
    let bytes = lookups * 2.0 /* code byte + LUT float, amortised */ * 2.0
        + queries as f64 * candidates as f64 * 4.0; // result write
    KernelCost::cuda(flops, bytes)
}

/// Cost of the same accumulation mapped onto Tensor cores as a ones-vector
/// GEMM (paper Section 5.3): `A[M,K] × B[K,1]`, where `M` is the number of
/// selected points (padded) and `K = D/M` subspaces.
pub fn tensor_accumulation_cost(queries: usize, candidates: usize, subspaces: usize) -> KernelCost {
    let flops = queries as f64 * candidates as f64 * subspaces as f64 * 2.0;
    let bytes = queries as f64 * candidates as f64 * subspaces as f64 * 2.0 // A in fp16
        + queries as f64 * candidates as f64 * 4.0; // C output
    KernelCost::tensor(flops, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_takes_max_of_compute_and_memory() {
        let dev = GpuDevice::a40();
        // Compute-bound kernel: high intensity.
        let compute = KernelCost::cuda(1e12, 1e6);
        // Memory-bound kernel: same bytes as a big transfer, negligible flops.
        let memory = KernelCost::cuda(1e6, 1e12);
        let c_us = compute.estimate_us(&dev);
        let m_us = memory.estimate_us(&dev);
        assert!(c_us > 1e4, "compute-bound kernel should take a while");
        assert!(
            m_us > 1e5,
            "memory-bound kernel should be bandwidth limited"
        );
        // Tensor kernels with the same flops are faster than CUDA kernels.
        let t = KernelCost::tensor(1e12, 1e6).estimate_us(&dev);
        assert!(t < c_us);
    }

    #[test]
    fn accumulate_and_intensity() {
        let mut a = KernelCost::cuda(100.0, 50.0);
        a.accumulate(&KernelCost::cuda(100.0, 150.0));
        assert_eq!(a.flops, 200.0);
        assert_eq!(a.bytes, 200.0);
        assert!((a.arithmetic_intensity() - 1.0).abs() < 1e-12);
        assert_eq!(KernelCost::cuda(10.0, 0.0).arithmetic_intensity(), 0.0);
    }

    #[test]
    fn filtering_cost_is_independent_of_nprobs() {
        // The filtering stage only depends on Q, C and D.
        let a = filtering_cost(100, 4096, 96);
        let b = filtering_cost(100, 4096, 96);
        assert_eq!(a.flops, b.flops);
        assert!(a.flops > 0.0);
    }

    #[test]
    fn lut_and_distance_costs_scale_linearly_with_nprobs() {
        let lut1 = dense_lut_cost(100, 8, 256, 48, 2);
        let lut2 = dense_lut_cost(100, 16, 256, 48, 2);
        assert!((lut2.flops / lut1.flops - 2.0).abs() < 1e-9);
        let d1 = distance_calc_cost(100, 10_000, 48);
        let d2 = distance_calc_cost(100, 20_000, 48);
        assert!((d2.flops / d1.flops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lut_dominates_filtering_at_paper_scale() {
        // DEEP1M configuration: C = 4096, D = 96, PQ48, E = 256, nprobs = 64.
        let dev = GpuDevice::rtx4090();
        let filter = filtering_cost(10_000, 4096, 96).estimate_us(&dev);
        let lut = dense_lut_cost(10_000, 64, 256, 48, 2).estimate_us(&dev);
        let dist = distance_calc_cost(10_000, 15_000, 48).estimate_us(&dev);
        // Fig. 3(a): LUT construction + distance calculation are ~90-99.9 % of
        // the query time.
        assert!(
            lut + dist > 5.0 * filter,
            "lut {lut} dist {dist} filter {filter}"
        );
    }

    #[test]
    fn tensor_accumulation_is_cheaper_than_cuda() {
        let dev = GpuDevice::a40();
        let cuda = distance_calc_cost(1_000, 50_000, 48).estimate_us(&dev);
        let tensor = tensor_accumulation_cost(1_000, 50_000, 48).estimate_us(&dev);
        assert!(tensor < cuda, "tensor {tensor} should beat cuda {cuda}");
    }
}
