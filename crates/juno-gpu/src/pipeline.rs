//! Two-stage heterogeneous-core execution model.
//!
//! The online part of JUNO has two dominant stages: L2-LUT construction (RT
//! cores) and distance calculation (CUDA or Tensor cores). The paper explores
//! three ways of running them (Section 5.3, Fig. 11(a)):
//!
//! 1. **Solo-run** — execute them back to back; the batch latency is the sum.
//! 2. **Naive co-run** — launch them concurrently with no resource
//!    management; resource contention makes both stages slower, and the
//!    long-latency CUDA-core accumulation dominates.
//! 3. **Pipelined** — map the accumulation to Tensor cores and partition the
//!    SMs 9:1 with MPS so successive query batches overlap; the steady-state
//!    cost per batch approaches the maximum of the two (now similar) stage
//!    latencies plus a small data-movement overhead.

use crate::mps::MpsPartition;

/// Per-batch latencies of the two overlappable stages, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTimes {
    /// L2-LUT construction time (RT cores).
    pub lut_us: f64,
    /// Distance calculation / accumulation time (CUDA or Tensor cores).
    pub accumulate_us: f64,
}

impl StageTimes {
    /// Creates a stage-time pair.
    pub fn new(lut_us: f64, accumulate_us: f64) -> Self {
        Self {
            lut_us,
            accumulate_us,
        }
    }

    /// Serial (solo-run) latency: the sum of the two stages.
    pub fn serial_us(&self) -> f64 {
        self.lut_us + self.accumulate_us
    }
}

/// How the two stages are scheduled on the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// Back-to-back execution; no overlap.
    Serial,
    /// Concurrent launch without MPS partitioning; both stages suffer
    /// contention.
    NaiveCorun,
    /// MPS-partitioned, Tensor-core accumulated pipeline (JUNO's choice).
    Pipelined,
}

/// The analytic pipeline model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineModel {
    /// SM partition used in pipelined mode.
    pub partition: MpsPartition,
    /// Multiplicative slowdown suffered by *each* stage under naive co-running
    /// (Fig. 11(a) shows both stages inflating well beyond their solo-run
    /// latency; ~1.6× each reproduces the reported shape).
    pub contention_factor: f64,
    /// Fractional overhead of the padding / data transformation JUNO applies
    /// to enable the pipeline (paper: "less than 5 % of the latency").
    pub pipeline_overhead: f64,
}

impl Default for PipelineModel {
    fn default() -> Self {
        Self {
            partition: MpsPartition::paper_default(),
            contention_factor: 1.6,
            pipeline_overhead: 0.05,
        }
    }
}

impl PipelineModel {
    /// Creates the default (paper-calibrated) model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Effective per-batch latency of the given stage times under a mode.
    ///
    /// For [`ExecutionMode::Pipelined`] the returned value is the
    /// steady-state cost per batch of a two-stage pipeline: the bottleneck
    /// stage latency plus the enablement overhead. The caller is responsible
    /// for providing stage times that already reflect the 9:1 partition (the
    /// JUNO engine computes them from the partitioned device views).
    pub fn batch_latency_us(&self, mode: ExecutionMode, times: &StageTimes) -> f64 {
        match mode {
            ExecutionMode::Serial => times.serial_us(),
            ExecutionMode::NaiveCorun => {
                // Both stages run concurrently but contend for SMs, memory and
                // scheduler slots: each inflates by the contention factor and
                // the batch finishes when the slower one does.
                (times.lut_us * self.contention_factor)
                    .max(times.accumulate_us * self.contention_factor)
            }
            ExecutionMode::Pipelined => {
                times.lut_us.max(times.accumulate_us) * (1.0 + self.pipeline_overhead)
            }
        }
    }

    /// Throughput in batches per second for a mode.
    pub fn batches_per_second(&self, mode: ExecutionMode, times: &StageTimes) -> f64 {
        let us = self.batch_latency_us(mode, times);
        if us <= 0.0 {
            0.0
        } else {
            1e6 / us
        }
    }

    /// Speed-up of the pipelined mode over serial execution for the given
    /// stage times — the quantity behind the "without pipelining the
    /// improvement decreases by 44–50 %" discussion of Section 6.3.
    pub fn pipelining_speedup(&self, times: &StageTimes) -> f64 {
        let serial = self.batch_latency_us(ExecutionMode::Serial, times);
        let piped = self.batch_latency_us(ExecutionMode::Pipelined, times);
        if piped <= 0.0 {
            return f64::INFINITY;
        }
        serial / piped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_is_sum() {
        let t = StageTimes::new(100.0, 40.0);
        assert!((t.serial_us() - 140.0).abs() < 1e-12);
        let m = PipelineModel::new();
        assert!((m.batch_latency_us(ExecutionMode::Serial, &t) - 140.0).abs() < 1e-12);
    }

    #[test]
    fn naive_corun_is_worse_than_pipelined() {
        let m = PipelineModel::new();
        let t = StageTimes::new(100.0, 90.0);
        let naive = m.batch_latency_us(ExecutionMode::NaiveCorun, &t);
        let piped = m.batch_latency_us(ExecutionMode::Pipelined, &t);
        assert!(naive > piped, "naive {naive} must exceed pipelined {piped}");
        // Fig. 11(a): naive co-running can even exceed the solo-run total when
        // stages are balanced-ish and contention is high.
        assert!(naive > t.lut_us * 1.5);
    }

    #[test]
    fn pipelined_latency_is_bottleneck_plus_overhead() {
        let m = PipelineModel::new();
        let t = StageTimes::new(100.0, 60.0);
        let got = m.batch_latency_us(ExecutionMode::Pipelined, &t);
        assert!((got - 105.0).abs() < 1e-9);
    }

    #[test]
    fn balanced_stages_give_near_2x_pipelining_speedup() {
        let m = PipelineModel::new();
        let balanced = StageTimes::new(100.0, 100.0);
        let speedup = m.pipelining_speedup(&balanced);
        assert!(speedup > 1.8 && speedup < 2.0, "speedup {speedup}");
        // Unbalanced stages benefit less — the 44 % vs 50 % asymmetry in §6.3.
        let skewed = StageTimes::new(100.0, 20.0);
        assert!(m.pipelining_speedup(&skewed) < speedup);
    }

    #[test]
    fn throughput_is_inverse_latency() {
        let m = PipelineModel::new();
        let t = StageTimes::new(500.0, 250.0);
        let qps = m.batches_per_second(ExecutionMode::Serial, &t);
        assert!((qps - 1e6 / 750.0).abs() < 1e-6);
        assert_eq!(
            m.batches_per_second(ExecutionMode::Pipelined, &StageTimes::default()),
            0.0
        );
    }
}
