//! Tensor-core distance accumulation.
//!
//! JUNO maps the accumulation of per-subspace distances onto Tensor cores
//! (paper Section 5.3): the selected distances of each candidate point are
//! laid out as the rows of a matrix `A` with `K = D/M` columns (padded with
//! zeros), `B` is a `K × 1` matrix of ones, and the candidate's total
//! distance is the matching row of `A × B`. This module provides a software
//! implementation of that GEMM (so results are bit-for-bit reproducible) plus
//! its cost on a device.

use crate::cost::{tensor_accumulation_cost, KernelCost};
use juno_common::error::{Error, Result};

/// The padded `A` matrix of one accumulation batch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AccumulationMatrix {
    /// Row-major data, `rows × k`.
    data: Vec<f32>,
    /// Number of candidate rows.
    rows: usize,
    /// Number of subspace columns (`D/M`).
    k: usize,
}

impl AccumulationMatrix {
    /// Creates a zero-filled matrix for `rows` candidates and `k` subspaces.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `k == 0`.
    pub fn new(rows: usize, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(Error::invalid_config(
                "accumulation width k must be positive",
            ));
        }
        Ok(Self {
            data: vec![0.0; rows * k],
            rows,
            k,
        })
    }

    /// Number of candidate rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of subspace columns.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Sets the partial distance of candidate `row` in subspace column `col`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.k, "index out of bounds");
        self.data[row * self.k + col] = value;
    }

    /// Accesses the partial distance of candidate `row` in column `col`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.k, "index out of bounds");
        self.data[row * self.k + col]
    }

    /// Performs the ones-vector GEMM `A × 1`, returning one accumulated value
    /// per candidate row — exactly what cuBLAS would return on Tensor cores.
    pub fn accumulate(&self) -> Vec<f32> {
        self.data
            .chunks_exact(self.k.max(1))
            .map(|row| row.iter().sum())
            .collect()
    }

    /// The Tensor-core kernel cost of this accumulation for a whole batch of
    /// `queries` queries sharing the same shape.
    pub fn cost(&self, queries: usize) -> KernelCost {
        tensor_accumulation_cost(queries, self.rows, self.k)
    }
}

/// Accumulates a set of per-subspace distance rows directly (helper used when
/// the caller does not need to keep the matrix around).
pub fn accumulate_rows(rows: &[Vec<f32>]) -> Vec<f32> {
    rows.iter().map(|r| r.iter().sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_matches_manual_sum() {
        let mut m = AccumulationMatrix::new(3, 4).unwrap();
        m.set(0, 0, 1.0);
        m.set(0, 3, 2.0);
        m.set(1, 1, 5.0);
        m.set(2, 0, -1.0);
        m.set(2, 2, 1.5);
        let out = m.accumulate();
        assert_eq!(out, vec![3.0, 5.0, 0.5]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.k(), 4);
        assert_eq!(m.get(1, 1), 5.0);
    }

    #[test]
    fn zero_width_rejected() {
        assert!(AccumulationMatrix::new(5, 0).is_err());
    }

    #[test]
    fn empty_matrix_accumulates_to_nothing() {
        let m = AccumulationMatrix::new(0, 4).unwrap();
        assert!(m.accumulate().is_empty());
    }

    #[test]
    fn accumulate_rows_helper() {
        let rows = vec![vec![1.0, 2.0], vec![0.5, 0.25], vec![]];
        assert_eq!(accumulate_rows(&rows), vec![3.0, 0.75, 0.0]);
    }

    #[test]
    fn cost_scales_with_rows() {
        let a = AccumulationMatrix::new(1_000, 48).unwrap().cost(10);
        let b = AccumulationMatrix::new(2_000, 48).unwrap().cost(10);
        assert!((b.flops / a.flops - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_out_of_bounds_panics() {
        let mut m = AccumulationMatrix::new(1, 1).unwrap();
        m.set(1, 0, 1.0);
    }
}
