//! Analytic GPU execution model for the JUNO reproduction.
//!
//! The paper runs on NVIDIA GPUs and derives its performance from three kinds
//! of on-chip resources — CUDA cores, Tensor cores and RT cores — plus DRAM
//! bandwidth and the CUDA MPS resource partitioning used to pipeline stages
//! (Section 5.3). None of that hardware is available here, so this crate
//! models it analytically:
//!
//! * [`device`] — descriptors of the three GPUs evaluated in the paper
//!   (RTX 4090, A40, A100) with their core counts and throughputs.
//! * [`cost`] — a roofline-style kernel cost model: a kernel is characterised
//!   by FLOPs and bytes moved, its latency is the max of compute time and
//!   memory time plus a launch overhead.
//! * [`tensor`] — the ones-vector GEMM that JUNO uses to map distance
//!   accumulation onto Tensor cores, with both a software implementation and
//!   its cost.
//! * [`mps`] — CUDA MPS-style fractional SM partitioning.
//! * [`pipeline`] — the two-stage execution model (L2-LUT construction on RT
//!   cores overlapped with distance calculation on Tensor/CUDA cores),
//!   including the contention penalty of naive co-running that Fig. 11(a)
//!   reports.
//!
//! All absolute numbers are order-of-magnitude calibrations taken from the
//! white papers the paper cites; every benchmark conclusion drawn from this
//! model is a *ratio* between configurations that share the same calibration.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod device;
pub mod mps;
pub mod pipeline;
pub mod tensor;

pub use cost::{KernelCost, KernelKind};
pub use device::GpuDevice;
pub use mps::MpsPartition;
pub use pipeline::{ExecutionMode, PipelineModel, StageTimes};
