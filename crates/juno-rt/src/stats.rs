//! Traversal work counters.
//!
//! The simulator cannot measure RT-core cycles, so it counts the units of
//! work the hardware would perform — BVH node (AABB) tests, primitive
//! (sphere) tests and hit-shader invocations — and leaves the conversion to
//! time to [`crate::hardware::RtCoreModel`]. The same counters also feed the
//! paper's breakdown figures.

/// Work performed while tracing one or more rays through a scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraversalStats {
    /// Rays traced.
    pub rays: usize,
    /// Ray–AABB (BVH node) tests performed.
    pub aabb_tests: usize,
    /// Ray–primitive (sphere) intersection tests performed.
    pub primitive_tests: usize,
    /// Hits reported to the any-hit callback (hit-shader invocations).
    pub hits: usize,
}

impl TraversalStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &TraversalStats) {
        self.rays += other.rays;
        self.aabb_tests += other.aabb_tests;
        self.primitive_tests += other.primitive_tests;
        self.hits += other.hits;
    }

    /// Average primitive tests per ray (0 when no ray was traced).
    pub fn primitive_tests_per_ray(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            self.primitive_tests as f64 / self.rays as f64
        }
    }

    /// Average AABB tests per ray (0 when no ray was traced).
    pub fn aabb_tests_per_ray(&self) -> f64 {
        if self.rays == 0 {
            0.0
        } else {
            self.aabb_tests as f64 / self.rays as f64
        }
    }

    /// Fraction of primitive tests that produced a hit.
    pub fn hit_rate(&self) -> f64 {
        if self.primitive_tests == 0 {
            0.0
        } else {
            self.hits as f64 / self.primitive_tests as f64
        }
    }
}

impl std::ops::Add for TraversalStats {
    type Output = TraversalStats;

    fn add(mut self, rhs: TraversalStats) -> TraversalStats {
        self.merge(&rhs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_add_accumulate() {
        let a = TraversalStats {
            rays: 2,
            aabb_tests: 10,
            primitive_tests: 6,
            hits: 3,
        };
        let b = TraversalStats {
            rays: 1,
            aabb_tests: 5,
            primitive_tests: 4,
            hits: 1,
        };
        let c = a + b;
        assert_eq!(c.rays, 3);
        assert_eq!(c.aabb_tests, 15);
        assert_eq!(c.primitive_tests, 10);
        assert_eq!(c.hits, 4);
    }

    #[test]
    fn derived_rates() {
        let s = TraversalStats {
            rays: 4,
            aabb_tests: 40,
            primitive_tests: 20,
            hits: 5,
        };
        assert!((s.aabb_tests_per_ray() - 10.0).abs() < 1e-12);
        assert!((s.primitive_tests_per_ray() - 5.0).abs() < 1e-12);
        assert!((s.hit_rate() - 0.25).abs() < 1e-12);
        let zero = TraversalStats::new();
        assert_eq!(zero.aabb_tests_per_ray(), 0.0);
        assert_eq!(zero.hit_rate(), 0.0);
    }
}
