//! Traversable scenes — the software analogue of an OptiX acceleration
//! structure plus launch.
//!
//! JUNO builds the scene **offline**: every codebook entry of subspace `s`
//! becomes a sphere at `(x_e, y_e, 2s + 1)` with a constant radius (paper
//! Section 5.2, Alg. 1 lines 10–13). Online, each query projection becomes a
//! `+z` ray from `z = 2s` with a per-ray `t_max` implementing the dynamic
//! threshold; any-hit callbacks receive the primitive id and `t_hit`.

use crate::bvh::Bvh;
use crate::ray::Ray;
use crate::sphere::Sphere;
use crate::stats::TraversalStats;

/// One reported intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// The `primitive_id` of the intersected sphere.
    pub primitive_id: u32,
    /// Ray travel time at the intersection.
    pub t_hit: f32,
}

/// Incrementally collects spheres and builds a [`Scene`].
#[derive(Debug, Clone, Default)]
pub struct SceneBuilder {
    spheres: Vec<Sphere>,
}

impl SceneBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sphere primitive.
    pub fn add_sphere(&mut self, sphere: Sphere) -> &mut Self {
        self.spheres.push(sphere);
        self
    }

    /// Adds a sphere per (x, y) coordinate at depth `z`, assigning primitive
    /// ids `base_id, base_id + 1, ...` — the codebook-entry placement helper.
    pub fn add_layer(
        &mut self,
        coords: &[[f32; 2]],
        z: f32,
        radius: f32,
        base_id: u32,
    ) -> &mut Self {
        for (i, &[x, y]) in coords.iter().enumerate() {
            self.add_sphere(Sphere::new([x, y, z], radius, base_id + i as u32));
        }
        self
    }

    /// Number of spheres added so far.
    pub fn len(&self) -> usize {
        self.spheres.len()
    }

    /// Returns `true` when no sphere has been added.
    pub fn is_empty(&self) -> bool {
        self.spheres.is_empty()
    }

    /// Builds the acceleration structure and returns the immutable scene.
    pub fn build(self) -> Scene {
        let bvh = Bvh::build(&self.spheres);
        Scene {
            spheres: self.spheres,
            bvh,
        }
    }
}

/// An immutable, traversable scene (spheres + BVH).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Scene {
    spheres: Vec<Sphere>,
    bvh: Bvh,
}

impl Scene {
    /// Number of primitives in the scene.
    pub fn len(&self) -> usize {
        self.spheres.len()
    }

    /// Returns `true` when the scene holds no primitives.
    pub fn is_empty(&self) -> bool {
        self.spheres.is_empty()
    }

    /// Borrow of the primitives.
    pub fn spheres(&self) -> &[Sphere] {
        &self.spheres
    }

    /// Borrow of the acceleration structure.
    pub fn bvh(&self) -> &Bvh {
        &self.bvh
    }

    /// Traces one ray, invoking the any-hit callback for every intersection
    /// within the ray's `t_max`. Returns the work performed.
    pub fn trace<F>(&self, ray: &Ray, on_hit: &mut F) -> TraversalStats
    where
        F: FnMut(Hit),
    {
        let mut stats = TraversalStats::new();
        self.trace_with_stats(ray, &mut stats, on_hit);
        stats
    }

    /// Traces one ray, accumulating work into an existing counter set.
    pub fn trace_with_stats<F>(&self, ray: &Ray, stats: &mut TraversalStats, on_hit: &mut F)
    where
        F: FnMut(Hit),
    {
        self.bvh
            .trace(&self.spheres, ray, stats, &mut |prim_index, t_hit| {
                on_hit(Hit {
                    primitive_id: self.spheres[prim_index as usize].primitive_id,
                    t_hit,
                })
            });
    }

    /// Traces a batch of rays, collecting per-ray hit lists. Convenience used
    /// by tests and the figure binaries; the JUNO engine itself uses the
    /// callback form to write straight into its selective LUT.
    pub fn trace_batch(&self, rays: &[Ray]) -> (Vec<Vec<Hit>>, TraversalStats) {
        let mut stats = TraversalStats::new();
        let mut all = Vec::with_capacity(rays.len());
        for ray in rays {
            let mut hits = Vec::new();
            self.trace_with_stats(ray, &mut stats, &mut |h| hits.push(h));
            all.push(hits);
        }
        (all, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_layer_scene() -> Scene {
        // Subspace 0 entries at z = 1, subspace 1 entries at z = 3 (paper's
        // z = 2s + 1 placement).
        let mut b = SceneBuilder::new();
        b.add_layer(&[[0.0, 0.0], [2.0, 0.0]], 1.0, 0.5, 0);
        b.add_layer(&[[0.0, 0.0], [2.0, 0.0]], 3.0, 0.5, 100);
        b.build()
    }

    #[test]
    fn builder_counts_and_builds() {
        let mut b = SceneBuilder::new();
        assert!(b.is_empty());
        b.add_sphere(Sphere::new([0.0, 0.0, 1.0], 0.5, 0));
        assert_eq!(b.len(), 1);
        let scene = b.build();
        assert_eq!(scene.len(), 1);
        assert!(!scene.is_empty());
        assert_eq!(scene.spheres()[0].primitive_id, 0);
    }

    #[test]
    fn rays_only_hit_their_own_layer() {
        let scene = two_layer_scene();
        // A ray from z = 0 with t_max = 2 (the paper restricts t_max ≤ 1 after
        // normalisation; here layer spacing is 2 so 2.0 stops before z = 3).
        let ray0 = Ray::axis_aligned_z([0.0, 0.0, 0.0], 2.0);
        let mut hits = Vec::new();
        scene.trace(&ray0, &mut |h| hits.push(h.primitive_id));
        assert_eq!(hits, vec![0]);
        // A ray launched from the second layer's origin plane (z = 2).
        let ray1 = Ray::axis_aligned_z([2.0, 0.0, 2.0], 2.0);
        hits.clear();
        scene.trace(&ray1, &mut |h| hits.push(h.primitive_id));
        assert_eq!(hits, vec![101]);
    }

    #[test]
    fn trace_batch_aggregates_stats() {
        let scene = two_layer_scene();
        let rays = vec![
            Ray::axis_aligned_z([0.0, 0.0, 0.0], 2.0),
            Ray::axis_aligned_z([2.0, 0.0, 0.0], 2.0),
            Ray::axis_aligned_z([50.0, 0.0, 0.0], 2.0),
        ];
        let (hits, stats) = scene.trace_batch(&rays);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].len(), 1);
        assert_eq!(hits[1].len(), 1);
        assert!(hits[2].is_empty());
        assert_eq!(stats.rays, 3);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn hit_time_is_returned() {
        let scene = two_layer_scene();
        let ray = Ray::axis_aligned_z([0.0, 0.0, 0.0], 2.0);
        let mut t = None;
        scene.trace(&ray, &mut |h| t = Some(h.t_hit));
        let t = t.unwrap();
        // Sphere at z = 1 with radius 0.5: entry point at t = 0.5.
        assert!((t - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_scene_is_traceable() {
        let scene = SceneBuilder::new().build();
        let stats = scene.trace(&Ray::axis_aligned_z([0.0; 3], 1.0), &mut |_| {
            panic!("no hit expected")
        });
        assert_eq!(stats.hits, 0);
        assert!(scene.is_empty());
    }
}
