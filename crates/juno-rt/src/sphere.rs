//! Sphere primitives and the ray–sphere intersection returning `t_hit`.
//!
//! JUNO represents every codebook entry as a sphere centred at the entry's
//! 2-D coordinates (placed at `z = 2s + 1` for subspace `s`) with a constant
//! radius `R` (paper Section 5.2). Query projections become `+z` rays; the
//! reported `t_hit` lets the hit shader recover the exact entry–query distance
//! as `d = sqrt(R² − (1 − t_hit)²)` without reading the sphere coordinates
//! from global memory (Fig. 9, left).

use crate::aabb::Aabb;
use crate::ray::Ray;

/// A sphere primitive. `primitive_id` is opaque user data, used by JUNO to
/// encode `(subspace, entry)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sphere {
    /// Centre of the sphere.
    pub center: [f32; 3],
    /// Radius of the sphere (the distance threshold `R`).
    pub radius: f32,
    /// Opaque primitive identifier reported on hit.
    pub primitive_id: u32,
}

impl Sphere {
    /// Creates a sphere.
    ///
    /// # Panics
    ///
    /// Panics if the radius is not strictly positive.
    pub fn new(center: [f32; 3], radius: f32, primitive_id: u32) -> Self {
        assert!(radius > 0.0, "sphere radius must be positive");
        Self {
            center,
            radius,
            primitive_id,
        }
    }

    /// Bounding box of this sphere.
    pub fn aabb(&self) -> Aabb {
        Aabb::from_sphere(self.center, self.radius)
    }

    /// Ray–sphere intersection.
    ///
    /// Returns the smallest non-negative `t_hit ≤ ray.t_max` at which the ray
    /// enters (or, if it starts inside, exits) the sphere, or `None` when the
    /// ray misses the sphere within its travel budget.
    pub fn intersect(&self, ray: &Ray) -> Option<f32> {
        // Solve |o + t·d − c|² = r² for t with d normalised.
        let oc = [
            ray.origin[0] - self.center[0],
            ray.origin[1] - self.center[1],
            ray.origin[2] - self.center[2],
        ];
        let b = oc[0] * ray.direction[0] + oc[1] * ray.direction[1] + oc[2] * ray.direction[2];
        let c = oc[0] * oc[0] + oc[1] * oc[1] + oc[2] * oc[2] - self.radius * self.radius;
        let disc = b * b - c;
        if disc < 0.0 {
            return None;
        }
        let sqrt_disc = disc.sqrt();
        let t_near = -b - sqrt_disc;
        let t_far = -b + sqrt_disc;
        let t_hit = if t_near >= 0.0 {
            t_near
        } else if t_far >= 0.0 {
            t_far
        } else {
            return None;
        };
        if t_hit <= ray.t_max {
            Some(t_hit)
        } else {
            None
        }
    }

    /// Returns `true` when the point lies inside or on the sphere.
    pub fn contains(&self, p: [f32; 3]) -> bool {
        let d = [
            p[0] - self.center[0],
            p[1] - self.center[1],
            p[2] - self.center[2],
        ];
        d[0] * d[0] + d[1] * d[1] + d[2] * d[2] <= self.radius * self.radius
    }
}

/// Recovers the in-plane (x, y) distance between the ray origin and the centre
/// of a hit sphere from the hit time, for JUNO's canonical geometry where the
/// ray travels exactly one unit in `z` to reach the sphere's plane:
/// `d = sqrt(R² − (1 − t_hit)²)` (paper Fig. 9, left).
///
/// Returns `None` when `t_hit` is inconsistent with a hit (|1 − t_hit| > R up
/// to rounding), which would indicate the caller mixed up radii.
pub fn planar_distance_from_hit_time(radius: f32, t_hit: f32) -> Option<f32> {
    let dz = 1.0 - t_hit;
    let inside = radius * radius - dz * dz;
    if inside < -1e-6 {
        None
    } else {
        Some(inside.max(0.0).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_straight_through_center() {
        let s = Sphere::new([0.0, 0.0, 1.0], 0.5, 7);
        let r = Ray::axis_aligned_z([0.0, 0.0, 0.0], 2.0);
        let t = s.intersect(&r).expect("must hit");
        assert!((t - 0.5).abs() < 1e-6);
    }

    #[test]
    fn miss_when_offset_beyond_radius() {
        let s = Sphere::new([0.0, 0.0, 1.0], 0.5, 7);
        let r = Ray::axis_aligned_z([0.8, 0.0, 0.0], 2.0);
        assert!(s.intersect(&r).is_none());
    }

    #[test]
    fn miss_when_t_max_too_small() {
        let s = Sphere::new([0.0, 0.0, 1.0], 0.5, 7);
        let r = Ray::axis_aligned_z([0.0, 0.0, 0.0], 0.4);
        assert!(s.intersect(&r).is_none());
        // With a just-large-enough t_max the same geometry hits.
        assert!(s.intersect(&r.with_t_max(0.51)).is_some());
    }

    #[test]
    fn ray_starting_inside_reports_exit() {
        let s = Sphere::new([0.0, 0.0, 0.0], 1.0, 1);
        let r = Ray::axis_aligned_z([0.0, 0.0, 0.0], 5.0);
        let t = s.intersect(&r).expect("exit hit");
        assert!((t - 1.0).abs() < 1e-6);
    }

    #[test]
    fn hit_time_recovers_planar_distance() {
        // JUNO geometry: entry at (x_e, y_e, 1), query ray from (x_q, y_q, 0).
        let entry = [0.3f32, -0.4, 1.0];
        let query = [0.0f32, 0.0, 0.0];
        let planar = ((entry[0] - query[0]).powi(2) + (entry[1] - query[1]).powi(2)).sqrt();
        let radius = 0.9f32;
        let s = Sphere::new(entry, radius, 0);
        let r = Ray::axis_aligned_z(query, 1.0);
        let t_hit = s.intersect(&r).expect("inside threshold, must hit");
        let recovered = planar_distance_from_hit_time(radius, t_hit).unwrap();
        assert!(
            (recovered - planar).abs() < 1e-4,
            "recovered {recovered} vs true {planar}"
        );
    }

    #[test]
    fn planar_distance_rejects_inconsistent_time() {
        assert!(planar_distance_from_hit_time(0.2, -1.0).is_none());
        // t_hit exactly at tangency maps to zero planar distance.
        let d = planar_distance_from_hit_time(0.25, 0.75).unwrap();
        assert!(d.abs() < 1e-6);
    }

    #[test]
    fn contains_and_aabb() {
        let s = Sphere::new([1.0, 1.0, 1.0], 2.0, 3);
        assert!(s.contains([2.0, 1.0, 1.0]));
        assert!(!s.contains([4.0, 1.0, 1.0]));
        let b = s.aabb();
        assert_eq!(b.min, [-1.0, -1.0, -1.0]);
        assert_eq!(b.max, [3.0, 3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_panics() {
        let _ = Sphere::new([0.0; 3], 0.0, 0);
    }
}
