//! Rays with `t_max` semantics.
//!
//! In the RT pipeline a ray travels one unit of space per unit of "time"
//! (along a unit-length direction). Two time values matter for JUNO (paper
//! Section 4.2, Fig. 9):
//!
//! * `t_hit` — when the ray first meets a primitive; reported by the
//!   intersection routine and used to recover the hit distance without
//!   touching global memory;
//! * `t_max` — the maximum time the ray may travel; JUNO shrinks it to turn
//!   the dynamic distance threshold into a per-ray parameter instead of
//!   rebuilding the scene with smaller spheres.

/// A ray with origin, (unit) direction and maximum travel time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Starting point of the ray.
    pub origin: [f32; 3],
    /// Direction of travel; normalised by [`Ray::new`].
    pub direction: [f32; 3],
    /// Maximum travel time; intersections beyond it are ignored.
    pub t_max: f32,
}

impl Ray {
    /// Creates a ray, normalising the direction so that travel time equals
    /// travelled distance.
    ///
    /// # Panics
    ///
    /// Panics if the direction is the zero vector or `t_max` is negative.
    pub fn new(origin: [f32; 3], direction: [f32; 3], t_max: f32) -> Self {
        let len = (direction[0] * direction[0]
            + direction[1] * direction[1]
            + direction[2] * direction[2])
            .sqrt();
        assert!(len > 0.0, "ray direction must be non-zero");
        assert!(t_max >= 0.0, "ray t_max must be non-negative");
        Self {
            origin,
            direction: [direction[0] / len, direction[1] / len, direction[2] / len],
            t_max,
        }
    }

    /// The canonical JUNO query ray: origin at the query projection, shooting
    /// towards `+z` (paper Fig. 8 places codebook entries at `z = 2s + 1` and
    /// ray origins at `z = 2s`).
    pub fn axis_aligned_z(origin: [f32; 3], t_max: f32) -> Self {
        Self::new(origin, [0.0, 0.0, 1.0], t_max)
    }

    /// Position of the ray after travelling for time `t`.
    pub fn at(&self, t: f32) -> [f32; 3] {
        [
            self.origin[0] + t * self.direction[0],
            self.origin[1] + t * self.direction[1],
            self.origin[2] + t * self.direction[2],
        ]
    }

    /// Returns a copy of the ray with a different `t_max` (used when applying
    /// a per-query dynamic threshold to a template ray).
    pub fn with_t_max(mut self, t_max: f32) -> Self {
        assert!(t_max >= 0.0, "ray t_max must be non-negative");
        self.t_max = t_max;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_is_normalised() {
        let r = Ray::new([0.0, 0.0, 0.0], [0.0, 3.0, 4.0], 1.0);
        let len = (r.direction[0].powi(2) + r.direction[1].powi(2) + r.direction[2].powi(2)).sqrt();
        assert!((len - 1.0).abs() < 1e-6);
        assert!((r.direction[1] - 0.6).abs() < 1e-6);
        assert!((r.direction[2] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn at_travels_unit_distance_per_unit_time() {
        let r = Ray::axis_aligned_z([1.0, 2.0, 0.0], 5.0);
        assert_eq!(r.at(0.0), [1.0, 2.0, 0.0]);
        assert_eq!(r.at(1.5), [1.0, 2.0, 1.5]);
    }

    #[test]
    fn with_t_max_replaces_only_t_max() {
        let r = Ray::axis_aligned_z([0.0, 0.0, 0.0], 1.0).with_t_max(0.25);
        assert_eq!(r.t_max, 0.25);
        assert_eq!(r.direction, [0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_direction_panics() {
        let _ = Ray::new([0.0; 3], [0.0; 3], 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_t_max_panics() {
        let _ = Ray::axis_aligned_z([0.0; 3], -1.0);
    }
}
