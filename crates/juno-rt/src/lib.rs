//! Software ray-tracing core simulator.
//!
//! The paper maps JUNO's selective L2-LUT construction onto NVIDIA RT cores
//! through OptiX (Section 4.2). No RT hardware is available to this
//! reproduction, so this crate provides a faithful *functional* model of the
//! parts of the RT pipeline JUNO relies on, together with work counters that a
//! hardware throughput model (see `juno-gpu`) converts into simulated time:
//!
//! * [`aabb`] — axis-aligned bounding boxes and the slab intersection test.
//! * [`ray`] — rays with an origin, direction and maximum travel time
//!   `t_max` (the knob JUNO uses to implement dynamic thresholds).
//! * [`sphere`] — sphere primitives: one per codebook entry, laid out at
//!   `z = 2s + 1` for subspace `s`.
//! * [`bvh`] — a bounding volume hierarchy built over primitive AABBs with a
//!   median-split strategy and an iterative traversal loop.
//! * [`scene`] — the traversable scene: build once offline, trace rays with
//!   any-hit callbacks online, exactly like an OptiX launch.
//! * [`stats`] — traversal work counters (box tests, primitive tests, hit
//!   shader invocations) that stand in for RT-core cycles.
//! * [`hardware`] — per-generation RT-core throughput figures (Turing /
//!   Ampere / Ada) and a CUDA-core software fallback, used to convert work
//!   counters into microseconds.
//!
//! # Example: the 2-D nearest-neighbour mapping of RTNN / JUNO
//!
//! ```
//! use juno_rt::scene::{Scene, SceneBuilder};
//! use juno_rt::ray::Ray;
//! use juno_rt::sphere::Sphere;
//!
//! // Two codebook entries as spheres in the z = 1 plane (subspace 0).
//! let mut builder = SceneBuilder::new();
//! builder.add_sphere(Sphere::new([0.0, 0.0, 1.0], 0.5, 0));
//! builder.add_sphere(Sphere::new([3.0, 0.0, 1.0], 0.5, 1));
//! let scene = builder.build();
//!
//! // A query projection at (0.1, 0.1) shot towards +z intersects entry 0 only.
//! let ray = Ray::axis_aligned_z([0.1, 0.1, 0.0], 2.0);
//! let mut hits = Vec::new();
//! scene.trace(&ray, &mut |hit| hits.push(hit.primitive_id));
//! assert_eq!(hits, vec![0]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aabb;
pub mod bvh;
pub mod hardware;
pub mod ray;
pub mod scene;
pub mod sphere;
pub mod stats;

pub use aabb::Aabb;
pub use bvh::Bvh;
pub use hardware::{RtCoreGeneration, RtCoreModel};
pub use ray::Ray;
pub use scene::{Hit, Scene, SceneBuilder};
pub use sphere::Sphere;
pub use stats::TraversalStats;
