//! Bounding volume hierarchy (BVH) construction and traversal.
//!
//! The RT core accelerates ray tracing with a hardware BVH traversal whose
//! depth is logarithmic in the number of primitives (paper Section 2.2). This
//! module provides a software equivalent: a binary BVH built with a
//! median-split over the longest centroid axis, and an iterative traversal
//! that counts the work the hardware would perform.

use crate::aabb::Aabb;
use crate::ray::Ray;
use crate::sphere::Sphere;
use crate::stats::TraversalStats;

/// Maximum number of primitives stored in a leaf node.
const LEAF_SIZE: usize = 4;

/// One node of the flattened BVH.
#[derive(Debug, Clone, Copy, PartialEq)]
enum NodeKind {
    /// Interior node with indices of its two children in the node array.
    Interior { left: u32, right: u32 },
    /// Leaf node holding a range `[start, start + count)` into the primitive
    /// order array.
    Leaf { start: u32, count: u32 },
}

/// A BVH node: bounds plus either children or a primitive range.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Node {
    bounds: Aabb,
    kind: NodeKind,
}

/// A bounding volume hierarchy over sphere primitives.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Bvh {
    nodes: Vec<Node>,
    /// Primitive indices ordered so that each leaf owns a contiguous range.
    order: Vec<u32>,
}

impl Bvh {
    /// Builds a BVH over the given spheres. An empty input yields an empty
    /// hierarchy that reports no intersections.
    pub fn build(spheres: &[Sphere]) -> Self {
        if spheres.is_empty() {
            return Self::default();
        }
        let mut order: Vec<u32> = (0..spheres.len() as u32).collect();
        let mut nodes = Vec::with_capacity(2 * spheres.len());
        build_recursive(spheres, &mut order, 0, spheres.len(), &mut nodes);
        Self { nodes, order }
    }

    /// Number of nodes in the hierarchy.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the hierarchy contains no primitives.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Maximum leaf depth of the hierarchy (root = depth 1). Used in tests to
    /// check the log-scale shape the paper relies on.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], idx: usize) -> usize {
            match nodes[idx].kind {
                NodeKind::Leaf { .. } => 1,
                NodeKind::Interior { left, right } => {
                    1 + walk(nodes, left as usize).max(walk(nodes, right as usize))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    /// Bounds of the whole scene.
    pub fn root_bounds(&self) -> Aabb {
        self.nodes.first().map_or_else(Aabb::empty, |n| n.bounds)
    }

    /// Traces a ray through the hierarchy, invoking `on_hit(primitive index,
    /// t_hit)` for every sphere intersected within `ray.t_max` (any-hit
    /// semantics — every intersection is reported, in traversal order).
    ///
    /// Work counters are accumulated into `stats`.
    pub fn trace<F>(
        &self,
        spheres: &[Sphere],
        ray: &Ray,
        stats: &mut TraversalStats,
        on_hit: &mut F,
    ) where
        F: FnMut(u32, f32),
    {
        stats.rays += 1;
        if self.nodes.is_empty() {
            return;
        }
        // Iterative traversal with an explicit stack, mirroring the hardware's
        // behaviour (and avoiding recursion-depth issues on large scenes).
        let mut stack: Vec<u32> = Vec::with_capacity(64);
        stack.push(0);
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx as usize];
            stats.aabb_tests += 1;
            if !node.bounds.intersects_ray(ray) {
                continue;
            }
            match node.kind {
                NodeKind::Interior { left, right } => {
                    stack.push(left);
                    stack.push(right);
                }
                NodeKind::Leaf { start, count } => {
                    for i in start..start + count {
                        let prim_idx = self.order[i as usize];
                        let sphere = &spheres[prim_idx as usize];
                        stats.primitive_tests += 1;
                        if let Some(t_hit) = sphere.intersect(ray) {
                            stats.hits += 1;
                            on_hit(prim_idx, t_hit);
                        }
                    }
                }
            }
        }
    }
}

/// Recursive builder over `order[start..end]`; returns the node index.
fn build_recursive(
    spheres: &[Sphere],
    order: &mut [u32],
    start: usize,
    end: usize,
    nodes: &mut Vec<Node>,
) -> u32 {
    let count = end - start;
    // Bounds of all primitives and of their centroids within the range.
    let mut bounds = Aabb::empty();
    let mut centroid_bounds = Aabb::empty();
    for &p in &order[start..end] {
        let b = spheres[p as usize].aabb();
        bounds.grow(&b);
        let c = b.centroid();
        centroid_bounds.grow(&Aabb::new(c, c));
    }

    let node_index = nodes.len() as u32;
    if count <= LEAF_SIZE {
        nodes.push(Node {
            bounds,
            kind: NodeKind::Leaf {
                start: start as u32,
                count: count as u32,
            },
        });
        return node_index;
    }

    // Median split on the longest centroid axis.
    let axis = centroid_bounds.longest_axis();
    let mid = start + count / 2;
    order[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
        let ca = spheres[a as usize].aabb().centroid()[axis];
        let cb = spheres[b as usize].aabb().centroid()[axis];
        ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
    });

    // Reserve the interior node slot before recursing so children land after it.
    nodes.push(Node {
        bounds,
        kind: NodeKind::Leaf { start: 0, count: 0 },
    });
    let left = build_recursive(spheres, order, start, mid, nodes);
    let right = build_recursive(spheres, order, mid, end, nodes);
    nodes[node_index as usize].kind = NodeKind::Interior { left, right };
    node_index
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_spheres(n_side: usize, radius: f32) -> Vec<Sphere> {
        let mut spheres = Vec::new();
        let mut id = 0u32;
        for i in 0..n_side {
            for j in 0..n_side {
                spheres.push(Sphere::new([i as f32, j as f32, 1.0], radius, id));
                id += 1;
            }
        }
        spheres
    }

    fn brute_force_hits(spheres: &[Sphere], ray: &Ray) -> Vec<(u32, f32)> {
        let mut hits: Vec<(u32, f32)> = spheres
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.intersect(ray).map(|t| (i as u32, t)))
            .collect();
        hits.sort_by_key(|&(i, _)| i);
        hits
    }

    #[test]
    fn empty_bvh_reports_nothing() {
        let bvh = Bvh::build(&[]);
        assert!(bvh.is_empty());
        assert_eq!(bvh.depth(), 0);
        let mut stats = TraversalStats::new();
        let mut hits = Vec::new();
        bvh.trace(
            &[],
            &Ray::axis_aligned_z([0.0; 3], 1.0),
            &mut stats,
            &mut |i, t| hits.push((i, t)),
        );
        assert!(hits.is_empty());
        assert_eq!(stats.rays, 1);
    }

    #[test]
    fn matches_brute_force_on_grid() {
        let spheres = grid_spheres(8, 0.45);
        let bvh = Bvh::build(&spheres);
        // Several rays with varying origins; hit sets must match brute force.
        for (ox, oy) in [(0.0f32, 0.0f32), (3.2, 3.9), (7.0, 0.1), (2.5, 2.5)] {
            let ray = Ray::axis_aligned_z([ox, oy, 0.0], 2.0);
            let mut stats = TraversalStats::new();
            let mut hits = Vec::new();
            bvh.trace(&spheres, &ray, &mut stats, &mut |i, t| hits.push((i, t)));
            hits.sort_by_key(|&(i, _)| i);
            let expected = brute_force_hits(&spheres, &ray);
            assert_eq!(
                hits.len(),
                expected.len(),
                "hit count mismatch at ({ox},{oy})"
            );
            for (got, want) in hits.iter().zip(expected.iter()) {
                assert_eq!(got.0, want.0);
                assert!((got.1 - want.1).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn traversal_prunes_work() {
        let spheres = grid_spheres(16, 0.3);
        let bvh = Bvh::build(&spheres);
        let ray = Ray::axis_aligned_z([4.0, 4.0, 0.0], 2.0);
        let mut stats = TraversalStats::new();
        bvh.trace(&spheres, &ray, &mut stats, &mut |_, _| {});
        // A well-formed BVH should test far fewer primitives than exist.
        assert!(
            stats.primitive_tests < spheres.len() / 4,
            "tested {} of {} primitives",
            stats.primitive_tests,
            spheres.len()
        );
    }

    #[test]
    fn depth_is_logarithmic() {
        let spheres = grid_spheres(32, 0.3); // 1024 primitives
        let bvh = Bvh::build(&spheres);
        let depth = bvh.depth();
        // ceil(log2(1024 / LEAF_SIZE)) + 1 = 9; allow slack for uneven splits.
        assert!(depth <= 14, "depth {depth} too large for 1024 primitives");
        assert!(depth >= 8, "depth {depth} suspiciously small");
        assert!(bvh.node_count() >= 1024 / LEAF_SIZE);
    }

    #[test]
    fn respects_ray_t_max() {
        let spheres = grid_spheres(4, 0.4);
        let bvh = Bvh::build(&spheres);
        // Spheres live at z = 1 with radius 0.4: entry points are at t = 0.6.
        let mut hits = Vec::new();
        let mut stats = TraversalStats::new();
        bvh.trace(
            &spheres,
            &Ray::axis_aligned_z([1.0, 1.0, 0.0], 0.5),
            &mut stats,
            &mut |i, _| hits.push(i),
        );
        assert!(
            hits.is_empty(),
            "t_max = 0.5 must not reach spheres at z = 1"
        );
        bvh.trace(
            &spheres,
            &Ray::axis_aligned_z([1.0, 1.0, 0.0], 0.7),
            &mut stats,
            &mut |i, _| hits.push(i),
        );
        assert_eq!(hits, vec![5]);
    }

    #[test]
    fn root_bounds_cover_all_primitives() {
        let spheres = grid_spheres(5, 0.5);
        let bvh = Bvh::build(&spheres);
        let root = bvh.root_bounds();
        for s in &spheres {
            assert!(root.contains_point(s.center));
        }
    }
}
