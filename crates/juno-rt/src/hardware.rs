//! RT-core hardware throughput model.
//!
//! The simulator counts work units ([`TraversalStats`]); this module converts
//! them into simulated microseconds using per-generation throughput figures.
//! The relative numbers follow the sources the paper itself cites:
//!
//! * Ada (Gen-3) RT cores have ~2× the ray–triangle/box throughput of Ampere
//!   (Gen-2) RT cores (NVIDIA Ada white paper, cited as [54]).
//! * A100 has **no** RT cores; OptiX falls back to a CUDA-core software
//!   traversal, which the paper observes to erase JUNO's advantage at high
//!   recall (Fig. 14(a)). The fallback is modelled as a large per-test cost
//!   on CUDA cores.
//!
//! Absolute values are calibrated only to the order of magnitude; every
//! conclusion drawn from the model in the benches is about *ratios*.

use crate::stats::TraversalStats;

/// The RT-core generation of a GPU (or its absence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RtCoreGeneration {
    /// No RT cores: traversal runs as software on CUDA cores (e.g. A100).
    None,
    /// Turing-class (Gen-1) RT cores.
    Gen1Turing,
    /// Ampere-class (Gen-2) RT cores (e.g. A40).
    Gen2Ampere,
    /// Ada-class (Gen-3) RT cores (e.g. RTX 4090), ~2× Gen-2 throughput.
    Gen3Ada,
}

impl RtCoreGeneration {
    /// Relative traversal throughput versus a Gen-2 (Ampere) RT core.
    pub fn relative_throughput(self) -> f64 {
        match self {
            // Software fallback on CUDA cores is roughly an order of magnitude
            // slower per test than a hardware RT core.
            RtCoreGeneration::None => 0.1,
            RtCoreGeneration::Gen1Turing => 0.55,
            RtCoreGeneration::Gen2Ampere => 1.0,
            RtCoreGeneration::Gen3Ada => 2.0,
        }
    }

    /// Returns `true` when dedicated RT hardware is present.
    pub fn has_hardware(self) -> bool {
        !matches!(self, RtCoreGeneration::None)
    }
}

/// An analytic RT-core performance model for one GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtCoreModel {
    /// Generation of the RT cores.
    pub generation: RtCoreGeneration,
    /// Number of RT cores on the device (one per SM on RTX GPUs). When the
    /// generation is [`RtCoreGeneration::None`] this is the number of SMs
    /// executing the software fallback.
    pub core_count: usize,
    /// Box (AABB) tests per microsecond per Gen-2-equivalent core.
    pub box_tests_per_core_us: f64,
    /// Primitive (sphere / custom-IS) tests per microsecond per
    /// Gen-2-equivalent core.
    pub primitive_tests_per_core_us: f64,
    /// Fixed cost, in microseconds, of launching a batch of rays (kernel
    /// launch plus scheduling), independent of ray count.
    pub launch_overhead_us: f64,
    /// Cost of one any-hit shader invocation in nanoseconds (the hit shader
    /// body — a handful of FLOPs plus a list append in JUNO).
    pub hit_shader_ns: f64,
}

impl RtCoreModel {
    /// Model of an Ampere-class (A40-like) RT-core array.
    pub fn ampere(core_count: usize) -> Self {
        Self {
            generation: RtCoreGeneration::Gen2Ampere,
            core_count,
            box_tests_per_core_us: 800.0,
            primitive_tests_per_core_us: 400.0,
            launch_overhead_us: 8.0,
            hit_shader_ns: 4.0,
        }
    }

    /// Model of an Ada-class (RTX-4090-like) RT-core array.
    pub fn ada(core_count: usize) -> Self {
        Self {
            generation: RtCoreGeneration::Gen3Ada,
            ..Self::ampere(core_count)
        }
    }

    /// Model of a GPU with no RT cores (A100-like): the same traversal work is
    /// executed in software on `sm_count` SMs.
    pub fn cuda_fallback(sm_count: usize) -> Self {
        Self {
            generation: RtCoreGeneration::None,
            ..Self::ampere(sm_count)
        }
    }

    /// Effective aggregate box-test throughput (tests per microsecond).
    pub fn aggregate_box_rate(&self) -> f64 {
        self.box_tests_per_core_us * self.core_count as f64 * self.generation.relative_throughput()
    }

    /// Effective aggregate primitive-test throughput (tests per microsecond).
    pub fn aggregate_primitive_rate(&self) -> f64 {
        self.primitive_tests_per_core_us
            * self.core_count as f64
            * self.generation.relative_throughput()
    }

    /// Estimated time, in microseconds, to perform the given traversal work.
    pub fn estimate_us(&self, stats: &TraversalStats) -> f64 {
        let box_us = stats.aabb_tests as f64 / self.aggregate_box_rate().max(1e-9);
        let prim_us = stats.primitive_tests as f64 / self.aggregate_primitive_rate().max(1e-9);
        // Hit shaders run on the SMs; model them as a serial tail over the
        // same core count.
        let hit_us =
            stats.hits as f64 * self.hit_shader_ns / 1000.0 / self.core_count.max(1) as f64;
        self.launch_overhead_us + box_us + prim_us + hit_us
    }

    /// Speed ratio of this model over another for identical work (how many
    /// times faster `self` completes `stats` than `other`).
    pub fn speedup_over(&self, other: &RtCoreModel, stats: &TraversalStats) -> f64 {
        let mine = self.estimate_us(stats);
        let theirs = other.estimate_us(stats);
        if mine <= 0.0 {
            return f64::INFINITY;
        }
        theirs / mine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> TraversalStats {
        TraversalStats {
            rays: 10_000,
            aabb_tests: 400_000,
            primitive_tests: 120_000,
            hits: 30_000,
        }
    }

    #[test]
    fn generation_ordering_matches_white_papers() {
        assert!(
            RtCoreGeneration::Gen3Ada.relative_throughput()
                > RtCoreGeneration::Gen2Ampere.relative_throughput()
        );
        assert!(
            RtCoreGeneration::Gen2Ampere.relative_throughput()
                > RtCoreGeneration::Gen1Turing.relative_throughput()
        );
        assert!(
            RtCoreGeneration::Gen1Turing.relative_throughput()
                > RtCoreGeneration::None.relative_throughput()
        );
        assert!(RtCoreGeneration::Gen3Ada.has_hardware());
        assert!(!RtCoreGeneration::None.has_hardware());
    }

    #[test]
    fn ada_is_roughly_twice_ampere() {
        let ada = RtCoreModel::ada(84);
        let ampere = RtCoreModel::ampere(84);
        let w = workload();
        let speedup = ada.speedup_over(&ampere, &w);
        // The launch overhead dilutes the 2.0 ratio slightly.
        assert!(speedup > 1.25 && speedup < 2.0, "speedup {speedup}");
    }

    #[test]
    fn cuda_fallback_is_much_slower() {
        let hw = RtCoreModel::ampere(84);
        let sw = RtCoreModel::cuda_fallback(108);
        let w = workload();
        assert!(hw.speedup_over(&sw, &w) > 3.0);
    }

    #[test]
    fn estimate_scales_with_work() {
        let m = RtCoreModel::ampere(84);
        let small = workload();
        let mut big = workload();
        big.aabb_tests *= 10;
        big.primitive_tests *= 10;
        big.hits *= 10;
        assert!(m.estimate_us(&big) > 5.0 * m.estimate_us(&small));
        // Empty work still pays the launch overhead.
        let zero = TraversalStats::new();
        assert!((m.estimate_us(&zero) - m.launch_overhead_us).abs() < 1e-9);
    }

    #[test]
    fn more_cores_mean_more_throughput() {
        let small = RtCoreModel::ada(28);
        let large = RtCoreModel::ada(128);
        assert!(large.aggregate_box_rate() > small.aggregate_box_rate());
        assert!(large.estimate_us(&workload()) < small.estimate_us(&workload()));
    }
}
