//! Axis-aligned bounding boxes (AABBs) and the slab intersection test.
//!
//! The RT core's first hardware unit performs interval-based ray/AABB tests
//! (paper Section 2.2). This module implements the same test in software; the
//! number of tests performed is counted by [`crate::stats::TraversalStats`]
//! and converted to time by [`crate::hardware::RtCoreModel`].

use crate::ray::Ray;

/// An axis-aligned bounding box in 3-D.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: [f32; 3],
    /// Maximum corner.
    pub max: [f32; 3],
}

impl Default for Aabb {
    fn default() -> Self {
        Self::empty()
    }
}

impl Aabb {
    /// An empty (inverted) box that behaves as the identity of [`Aabb::union`].
    pub fn empty() -> Self {
        Self {
            min: [f32::INFINITY; 3],
            max: [f32::NEG_INFINITY; 3],
        }
    }

    /// Creates a box from explicit corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any `min` component exceeds the matching
    /// `max` component.
    pub fn new(min: [f32; 3], max: [f32; 3]) -> Self {
        debug_assert!(
            min.iter().zip(max.iter()).all(|(a, b)| a <= b),
            "Aabb min must not exceed max"
        );
        Self { min, max }
    }

    /// The bounding box of a sphere.
    pub fn from_sphere(center: [f32; 3], radius: f32) -> Self {
        Self {
            min: [center[0] - radius, center[1] - radius, center[2] - radius],
            max: [center[0] + radius, center[1] + radius, center[2] + radius],
        }
    }

    /// Returns `true` for a box that has never been grown.
    pub fn is_empty(&self) -> bool {
        self.min[0] > self.max[0]
    }

    /// The smallest box containing both operands.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: [
                self.min[0].min(other.min[0]),
                self.min[1].min(other.min[1]),
                self.min[2].min(other.min[2]),
            ],
            max: [
                self.max[0].max(other.max[0]),
                self.max[1].max(other.max[1]),
                self.max[2].max(other.max[2]),
            ],
        }
    }

    /// Grows this box in place to contain `other`.
    pub fn grow(&mut self, other: &Aabb) {
        *self = self.union(other);
    }

    /// Centre of the box (used by the median-split BVH builder).
    pub fn centroid(&self) -> [f32; 3] {
        [
            0.5 * (self.min[0] + self.max[0]),
            0.5 * (self.min[1] + self.max[1]),
            0.5 * (self.min[2] + self.max[2]),
        ]
    }

    /// Surface area of the box (used by SAH-style diagnostics).
    pub fn surface_area(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let d = [
            self.max[0] - self.min[0],
            self.max[1] - self.min[1],
            self.max[2] - self.min[2],
        ];
        2.0 * (d[0] * d[1] + d[1] * d[2] + d[2] * d[0])
    }

    /// Index (0..3) of the widest axis.
    pub fn longest_axis(&self) -> usize {
        let d = [
            self.max[0] - self.min[0],
            self.max[1] - self.min[1],
            self.max[2] - self.min[2],
        ];
        if d[0] >= d[1] && d[0] >= d[2] {
            0
        } else if d[1] >= d[2] {
            1
        } else {
            2
        }
    }

    /// Returns `true` when the point lies inside or on the box.
    pub fn contains_point(&self, p: [f32; 3]) -> bool {
        (0..3).all(|i| p[i] >= self.min[i] && p[i] <= self.max[i])
    }

    /// The slab test: returns `true` if the ray intersects the box within
    /// `[0, ray.t_max]`. This is the cheap interval calculation performed by
    /// the RT core for every BVH node visit.
    pub fn intersects_ray(&self, ray: &Ray) -> bool {
        let mut t_enter = 0.0f32;
        let mut t_exit = ray.t_max;
        for axis in 0..3 {
            let origin = ray.origin[axis];
            let dir = ray.direction[axis];
            if dir.abs() < 1e-12 {
                // Ray parallel to the slab: must already be inside it.
                if origin < self.min[axis] || origin > self.max[axis] {
                    return false;
                }
            } else {
                let inv = 1.0 / dir;
                let mut t0 = (self.min[axis] - origin) * inv;
                let mut t1 = (self.max[axis] - origin) * inv;
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                t_enter = t_enter.max(t0);
                t_exit = t_exit.min(t1);
                if t_enter > t_exit {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_grow() {
        let a = Aabb::new([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]);
        let b = Aabb::new([-1.0, 0.5, 0.0], [0.5, 2.0, 3.0]);
        let u = a.union(&b);
        assert_eq!(u.min, [-1.0, 0.0, 0.0]);
        assert_eq!(u.max, [1.0, 2.0, 3.0]);
        let mut g = Aabb::empty();
        g.grow(&a);
        g.grow(&b);
        assert_eq!(g, u);
        assert!(Aabb::empty().is_empty());
        assert!(!u.is_empty());
    }

    #[test]
    fn sphere_bounds_and_centroid() {
        let b = Aabb::from_sphere([1.0, 2.0, 3.0], 0.5);
        assert_eq!(b.min, [0.5, 1.5, 2.5]);
        assert_eq!(b.max, [1.5, 2.5, 3.5]);
        assert_eq!(b.centroid(), [1.0, 2.0, 3.0]);
    }

    #[test]
    fn surface_area_and_longest_axis() {
        let b = Aabb::new([0.0, 0.0, 0.0], [2.0, 1.0, 4.0]);
        assert!((b.surface_area() - 2.0 * (2.0 + 4.0 + 8.0)).abs() < 1e-6);
        assert_eq!(b.longest_axis(), 2);
        assert_eq!(Aabb::empty().surface_area(), 0.0);
    }

    #[test]
    fn contains_point() {
        let b = Aabb::new([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]);
        assert!(b.contains_point([0.5, 0.5, 1.0]));
        assert!(!b.contains_point([1.5, 0.5, 0.5]));
    }

    #[test]
    fn slab_test_hits_and_misses() {
        let b = Aabb::new([-1.0, -1.0, 0.5], [1.0, 1.0, 1.5]);
        // Straight +z ray through the box.
        let hit = Ray::axis_aligned_z([0.0, 0.0, 0.0], 2.0);
        assert!(b.intersects_ray(&hit));
        // Ray that stops before reaching the box.
        let short = Ray::axis_aligned_z([0.0, 0.0, 0.0], 0.25);
        assert!(!b.intersects_ray(&short));
        // Ray offset laterally outside the box, parallel to z.
        let offset = Ray::axis_aligned_z([5.0, 0.0, 0.0], 2.0);
        assert!(!b.intersects_ray(&offset));
        // Diagonal ray entering through a corner region.
        let diag = Ray::new([-2.0, -2.0, 0.0], [1.0, 1.0, 0.5], 10.0);
        assert!(b.intersects_ray(&diag));
    }

    #[test]
    fn slab_test_ray_starting_inside() {
        let b = Aabb::new([-1.0, -1.0, -1.0], [1.0, 1.0, 1.0]);
        let r = Ray::axis_aligned_z([0.0, 0.0, 0.0], 0.1);
        assert!(b.intersects_ray(&r));
    }
}
