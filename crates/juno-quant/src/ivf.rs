//! Inverted file index (IVF) — the coarse filtering stage.
//!
//! The IVF (paper Section 2.1, step 1 and stage A) clusters the `N` search
//! points into `C` clusters with full-dimension k-means and stores, for each
//! cluster, the list of its member point ids. At query time the *filtering*
//! stage computes the query's distance to all `C` centroids and keeps the
//! `nprobs` closest clusters; all later stages only touch points in those
//! clusters.

use crate::kmeans::{KMeans, KMeansConfig};
use juno_common::error::{Error, Result};
use juno_common::metric::{l2_squared, Metric};
use juno_common::topk::TopK;
use juno_common::vector::VectorSet;

/// Training configuration for an [`IvfIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvfTrainConfig {
    /// Number of coarse clusters (`C`), e.g. 4096 in the paper's DEEP1M setup.
    pub n_clusters: usize,
    /// Metric used for filtering (L2 or inner product).
    pub metric: Metric,
    /// k-means iterations.
    pub kmeans_iters: usize,
    /// Seed for the coarse k-means.
    pub seed: u64,
    /// Optional training subsample for the coarse k-means.
    pub train_subsample: Option<usize>,
}

impl Default for IvfTrainConfig {
    fn default() -> Self {
        Self {
            n_clusters: 64,
            metric: Metric::L2,
            kmeans_iters: 20,
            seed: 0x1F5,
            train_subsample: Some(100_000),
        }
    }
}

impl IvfTrainConfig {
    /// Convenience constructor with a cluster count and metric.
    pub fn new(n_clusters: usize, metric: Metric) -> Self {
        Self {
            n_clusters,
            metric,
            ..Self::default()
        }
    }
}

/// Result of the filtering stage for one query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FilterResult {
    /// Selected cluster ids, closest first.
    pub clusters: Vec<usize>,
    /// Raw metric value of the query to each selected centroid.
    pub centroid_distances: Vec<f32>,
    /// Number of pairwise distance computations performed (`C`).
    pub distance_computations: usize,
}

/// A trained inverted file index.
#[derive(Debug, Clone, PartialEq)]
pub struct IvfIndex {
    centroids: VectorSet,
    /// `lists[c]` holds the ids of the points assigned to cluster `c`.
    lists: Vec<Vec<u32>>,
    /// Cluster assignment of every indexed point.
    labels: Vec<usize>,
    metric: Metric,
}

impl IvfIndex {
    /// Trains the coarse quantiser and builds the inverted lists.
    ///
    /// # Errors
    ///
    /// Propagates k-means errors (empty input, too many clusters, ...).
    pub fn train(points: &VectorSet, config: &IvfTrainConfig) -> Result<Self> {
        let km_cfg = KMeansConfig {
            n_clusters: config.n_clusters,
            max_iters: config.kmeans_iters,
            tolerance: 1e-4,
            seed: config.seed,
            train_subsample: config.train_subsample,
        };
        let km = KMeans::train(points, &km_cfg)?;
        let labels = km.labels().to_vec();
        let mut lists = vec![Vec::new(); config.n_clusters];
        for (i, &c) in labels.iter().enumerate() {
            lists[c].push(i as u32);
        }
        Ok(Self {
            centroids: km.into_centroids(),
            lists,
            labels,
            metric: config.metric,
        })
    }

    /// Rebuilds an index from persisted parts, recomputing the inverted
    /// lists from the labels. Use
    /// [`IvfIndex::from_parts_with_lists`] when the lists have been mutated
    /// (points removed) and must be restored verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] when a label is out of range.
    pub fn from_parts(centroids: VectorSet, labels: Vec<usize>, metric: Metric) -> Result<Self> {
        let n_clusters = centroids.len();
        if n_clusters == 0 {
            return Err(Error::corrupted("IvfIndex: no centroids"));
        }
        let mut lists = vec![Vec::new(); n_clusters];
        for (i, &c) in labels.iter().enumerate() {
            let list = lists
                .get_mut(c)
                .ok_or_else(|| Error::corrupted("IvfIndex: label out of range"))?;
            list.push(i as u32);
        }
        Ok(Self {
            centroids,
            lists,
            labels,
            metric,
        })
    }

    /// Rebuilds an index from persisted parts including explicit inverted
    /// lists (which may omit removed points). Every listed id must carry the
    /// matching label and appear at most once.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] when labels and lists disagree.
    pub fn from_parts_with_lists(
        centroids: VectorSet,
        labels: Vec<usize>,
        lists: Vec<Vec<u32>>,
        metric: Metric,
    ) -> Result<Self> {
        let n_clusters = centroids.len();
        if n_clusters == 0 {
            return Err(Error::corrupted("IvfIndex: no centroids"));
        }
        if lists.len() != n_clusters {
            return Err(Error::corrupted("IvfIndex: list count != cluster count"));
        }
        if labels.iter().any(|&c| c >= n_clusters) {
            return Err(Error::corrupted("IvfIndex: label out of range"));
        }
        let mut seen = vec![false; labels.len()];
        for (c, list) in lists.iter().enumerate() {
            for &id in list {
                let label = labels
                    .get(id as usize)
                    .ok_or_else(|| Error::corrupted("IvfIndex: listed id out of range"))?;
                if *label != c {
                    return Err(Error::corrupted("IvfIndex: listed id in wrong cluster"));
                }
                if std::mem::replace(&mut seen[id as usize], true) {
                    return Err(Error::corrupted("IvfIndex: duplicate listed id"));
                }
            }
        }
        Ok(Self {
            centroids,
            lists,
            labels,
            metric,
        })
    }

    /// Number of clusters `C`.
    pub fn n_clusters(&self) -> usize {
        self.centroids.len()
    }

    /// Dimension of indexed points.
    pub fn dim(&self) -> usize {
        self.centroids.dim()
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The filtering metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Borrow of the coarse centroids.
    pub fn centroids(&self) -> &VectorSet {
        &self.centroids
    }

    /// Borrow of one coarse centroid.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] for an invalid cluster id.
    pub fn centroid(&self, c: usize) -> Result<&[f32]> {
        self.centroids
            .get(c)
            .ok_or_else(|| Error::IndexOutOfBounds {
                what: "cluster".into(),
                index: c,
                len: self.centroids.len(),
            })
    }

    /// Cluster assignment of every indexed point.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The member point ids of cluster `c`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] for an invalid cluster id.
    pub fn list(&self, c: usize) -> Result<&[u32]> {
        self.lists
            .get(c)
            .map(Vec::as_slice)
            .ok_or_else(|| Error::IndexOutOfBounds {
                what: "cluster".into(),
                index: c,
                len: self.lists.len(),
            })
    }

    /// Sizes of all inverted lists (useful for balance diagnostics).
    pub fn list_sizes(&self) -> Vec<usize> {
        self.lists.iter().map(Vec::len).collect()
    }

    /// The filtering stage: selects the `nprobs` clusters whose centroids are
    /// closest to (or, for MIPS, have largest inner product with) the query.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the query dimension differs
    /// and [`Error::InvalidConfig`] when `nprobs == 0`.
    pub fn filter(&self, query: &[f32], nprobs: usize) -> Result<FilterResult> {
        if query.len() != self.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.dim(),
                actual: query.len(),
            });
        }
        if nprobs == 0 {
            return Err(Error::invalid_config("nprobs must be positive"));
        }
        let nprobs = nprobs.min(self.n_clusters());
        let mut topk = TopK::new(nprobs, self.metric);
        for (c, row) in self.centroids.iter().enumerate() {
            topk.push(c as u64, self.metric.distance(query, row));
        }
        let ranked = topk.into_sorted_vec();
        Ok(FilterResult {
            clusters: ranked.iter().map(|n| n.id as usize).collect(),
            centroid_distances: ranked.iter().map(|n| n.distance).collect(),
            distance_computations: self.n_clusters(),
        })
    }

    /// The cluster a new point would be assigned to: the centroid nearest in
    /// **squared L2** distance, replicating the k-means assignment rule used
    /// at training time (also under the inner-product metric, where the
    /// coarse clustering itself is Euclidean).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] for a wrong point dimension.
    pub fn assign(&self, point: &[f32]) -> Result<usize> {
        if point.len() != self.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.dim(),
                actual: point.len(),
            });
        }
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (c, row) in self.centroids.iter().enumerate() {
            let d = l2_squared(point, row);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        Ok(best)
    }

    /// Registers a newly inserted point under `cluster` and returns its id
    /// (the next position in the label array — ids are monotone and never
    /// reused).
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] for an invalid cluster and
    /// [`Error::InvalidConfig`] when the u32 id space is exhausted.
    pub fn push_assignment(&mut self, cluster: usize) -> Result<u32> {
        if cluster >= self.n_clusters() {
            return Err(Error::IndexOutOfBounds {
                what: "cluster".into(),
                index: cluster,
                len: self.n_clusters(),
            });
        }
        let id = u32::try_from(self.labels.len())
            .map_err(|_| Error::invalid_config("point id space exhausted"))?;
        if id == u32::MAX {
            return Err(Error::invalid_config("point id space exhausted"));
        }
        self.labels.push(cluster);
        self.lists[cluster].push(id);
        Ok(id)
    }

    /// Removes a point id from its cluster's inverted list (the label entry
    /// is retained so id → cluster stays resolvable). Returns `true` when
    /// the id was listed.
    pub fn remove_from_list(&mut self, id: u32) -> bool {
        let Some(&c) = self.labels.get(id as usize) else {
            return false;
        };
        let list = &mut self.lists[c];
        match list.iter().position(|&p| p == id) {
            Some(pos) => {
                list.remove(pos);
                true
            }
            None => false,
        }
    }

    /// The residual of a query with respect to cluster `c`'s centroid
    /// (`query - centroid`), used by PQ's asymmetric distance computation.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid cluster id or mismatched dimension.
    pub fn query_residual(&self, query: &[f32], c: usize) -> Result<Vec<f32>> {
        if query.len() != self.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.dim(),
                actual: query.len(),
            });
        }
        let centroid = self.centroid(c)?;
        Ok(query
            .iter()
            .zip(centroid.iter())
            .map(|(q, c)| q - c)
            .collect())
    }

    /// Computes residuals of all indexed points with respect to their assigned
    /// centroid — the training input of the PQ codebooks.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors from [`VectorSet::residual_to`].
    pub fn point_residuals(&self, points: &VectorSet) -> Result<VectorSet> {
        if points.len() != self.labels.len() {
            return Err(Error::invalid_config(format!(
                "point count {} does not match trained assignment {}",
                points.len(),
                self.labels.len()
            )));
        }
        points.residual_to(&self.centroids, &self.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juno_common::rng::{normal, seeded};

    fn clustered_points(n_per: usize, seed: u64) -> VectorSet {
        let mut rng = seeded(seed);
        let centers = [
            [0.0f32, 0.0, 0.0, 0.0],
            [10.0, 10.0, 10.0, 10.0],
            [-10.0, 5.0, 0.0, -5.0],
            [20.0, -20.0, 10.0, 0.0],
        ];
        let mut rows = Vec::new();
        for c in centers {
            for _ in 0..n_per {
                rows.push(c.iter().map(|&m| normal(&mut rng, m, 0.5)).collect());
            }
        }
        VectorSet::from_rows(rows).unwrap()
    }

    fn toy_index() -> (VectorSet, IvfIndex) {
        let points = clustered_points(50, 3);
        let ivf = IvfIndex::train(&points, &IvfTrainConfig::new(4, Metric::L2)).unwrap();
        (points, ivf)
    }

    #[test]
    fn lists_partition_all_points() {
        let (points, ivf) = toy_index();
        let total: usize = ivf.list_sizes().iter().sum();
        assert_eq!(total, points.len());
        // Every point appears in the list matching its label.
        for (i, &label) in ivf.labels().iter().enumerate() {
            assert!(ivf.list(label).unwrap().contains(&(i as u32)));
        }
    }

    #[test]
    fn filter_selects_own_cluster_first() {
        let (points, ivf) = toy_index();
        // A query equal to an indexed point must rank that point's cluster first.
        for i in (0..points.len()).step_by(23) {
            let res = ivf.filter(points.row(i), 2).unwrap();
            assert_eq!(res.clusters[0], ivf.labels()[i]);
            assert_eq!(res.distance_computations, 4);
            assert_eq!(res.clusters.len(), 2);
        }
    }

    #[test]
    fn filter_distances_are_sorted() {
        let (points, ivf) = toy_index();
        let res = ivf.filter(points.row(0), 4).unwrap();
        for w in res.centroid_distances.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn filter_with_inner_product_prefers_aligned_centroid() {
        let points = VectorSet::from_rows(vec![
            vec![1.0, 0.0],
            vec![1.1, 0.0],
            vec![0.9, 0.1],
            vec![0.0, 1.0],
            vec![0.0, 1.1],
            vec![0.1, 0.9],
        ])
        .unwrap();
        let ivf = IvfIndex::train(&points, &IvfTrainConfig::new(2, Metric::InnerProduct)).unwrap();
        let res = ivf.filter(&[3.0, 0.0], 1).unwrap();
        let picked = ivf.centroid(res.clusters[0]).unwrap();
        // The selected centroid must be the x-aligned one.
        assert!(picked[0] > picked[1]);
    }

    #[test]
    fn nprobs_is_clamped_and_validated() {
        let (points, ivf) = toy_index();
        assert!(ivf.filter(points.row(0), 0).is_err());
        let res = ivf.filter(points.row(0), 100).unwrap();
        assert_eq!(res.clusters.len(), ivf.n_clusters());
        assert!(ivf.filter(&[0.0; 3], 1).is_err());
    }

    #[test]
    fn residuals_are_consistent() {
        let (points, ivf) = toy_index();
        let res = ivf.point_residuals(&points).unwrap();
        // Residual + centroid reconstructs the point.
        for i in (0..points.len()).step_by(17) {
            let c = ivf.centroid(ivf.labels()[i]).unwrap();
            for (d, &cd) in c.iter().enumerate().take(points.dim()) {
                let rebuilt = res.row(i)[d] + cd;
                assert!((rebuilt - points.row(i)[d]).abs() < 1e-5);
            }
        }
        // Query residual agrees with manual subtraction.
        let qres = ivf.query_residual(points.row(0), 0).unwrap();
        let c0 = ivf.centroid(0).unwrap();
        for d in 0..points.dim() {
            assert!((qres[d] - (points.row(0)[d] - c0[d])).abs() < 1e-6);
        }
        assert!(ivf.query_residual(&[0.0; 2], 0).is_err());
        assert!(ivf.query_residual(points.row(0), 99).is_err());
    }

    #[test]
    fn assign_matches_training_labels() {
        let (points, ivf) = toy_index();
        for i in (0..points.len()).step_by(13) {
            assert_eq!(ivf.assign(points.row(i)).unwrap(), ivf.labels()[i]);
        }
        assert!(ivf.assign(&[0.0; 2]).is_err());
    }

    #[test]
    fn push_assignment_and_list_removal() {
        let (points, mut ivf) = toy_index();
        let n = points.len() as u32;
        let id = ivf.push_assignment(2).unwrap();
        assert_eq!(id, n);
        assert_eq!(ivf.labels()[id as usize], 2);
        assert!(ivf.list(2).unwrap().contains(&id));
        assert!(ivf.push_assignment(99).is_err());

        assert!(ivf.remove_from_list(id));
        assert!(!ivf.list(2).unwrap().contains(&id));
        assert!(!ivf.remove_from_list(id), "second removal is a no-op");
        assert!(!ivf.remove_from_list(10_000));
        // The label survives removal so id -> cluster stays resolvable.
        assert_eq!(ivf.labels()[id as usize], 2);
    }

    #[test]
    fn parts_round_trips_and_validation() {
        let (_, ivf) = toy_index();
        let rebuilt =
            IvfIndex::from_parts(ivf.centroids().clone(), ivf.labels().to_vec(), ivf.metric())
                .unwrap();
        assert_eq!(rebuilt, ivf);
        let lists: Vec<Vec<u32>> = (0..ivf.n_clusters())
            .map(|c| ivf.list(c).unwrap().to_vec())
            .collect();
        let rebuilt = IvfIndex::from_parts_with_lists(
            ivf.centroids().clone(),
            ivf.labels().to_vec(),
            lists.clone(),
            ivf.metric(),
        )
        .unwrap();
        assert_eq!(rebuilt, ivf);

        // Bad label.
        assert!(IvfIndex::from_parts(ivf.centroids().clone(), vec![99; 10], ivf.metric()).is_err());
        // Wrong-cluster list entry.
        let mut bad = lists.clone();
        let moved = bad[0].pop().unwrap();
        bad[1].push(moved);
        assert!(IvfIndex::from_parts_with_lists(
            ivf.centroids().clone(),
            ivf.labels().to_vec(),
            bad,
            ivf.metric()
        )
        .is_err());
        // Duplicate list entry.
        let mut bad = lists;
        let dup = bad[0][0];
        bad[0].push(dup);
        assert!(IvfIndex::from_parts_with_lists(
            ivf.centroids().clone(),
            ivf.labels().to_vec(),
            bad,
            ivf.metric()
        )
        .is_err());
    }

    #[test]
    fn accessors_and_bounds() {
        let (_, ivf) = toy_index();
        assert_eq!(ivf.n_clusters(), 4);
        assert_eq!(ivf.dim(), 4);
        assert_eq!(ivf.len(), 200);
        assert!(!ivf.is_empty());
        assert_eq!(ivf.metric(), Metric::L2);
        assert!(ivf.centroid(4).is_err());
        assert!(ivf.list(4).is_err());
    }
}
