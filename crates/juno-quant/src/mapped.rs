//! The v3 ("mapped") binary layout of the hot snapshot sections, and its
//! encoders/decoders.
//!
//! v2 snapshot sections store the code layout as a stream of length-prefixed
//! vectors — compact, but restoring means deserialize-copying every byte
//! into fresh allocations. The v3 layout instead stores the hot arrays
//! (base point ids, point-major codes, the block-interleaved fast-scan
//! view) **in their exact in-memory representation**, padded so each array
//! starts 64-byte aligned *in the file*, with explicit offsets in a fixed
//! header. A reader can then serve the arrays zero-copy straight out of an
//! `mmap` of the snapshot ([`map_layout_v3`]) — restore cost is
//! O(clusters) header/directory validation, not O(index bytes) — or copy
//! them out for the portable RAM-resident path ([`decode_layout_v3`]).
//!
//! Integrity is split in two tiers so an out-of-core restore does not
//! fault the whole file in:
//!
//! * a **meta checksum** over the header, CSR offsets, cluster directory,
//!   mutation tails and tombstone bitmap — verified eagerly at map time
//!   (these regions are small and needed immediately anyway);
//! * a **per-cluster checksum** over each cluster's ids + codes (+ the
//!   directory's `nibble`/`max_code` bytes, so a flipped directory byte
//!   cannot silently change block geometry) — verified lazily on the
//!   cluster's first probe by
//!   [`ResidencySet`](crate::residency::ResidencySet), which also rebuilds
//!   the block view from the codes and requires bit-identity.
//!
//! Alignment is an optimisation, never a correctness requirement: if the
//! container places a payload at an unexpected base offset the `u32` views
//! silently fall back to owned decoded copies
//! ([`U32Store::from_le_bytes`]), and the byte arrays need no alignment.
//!
//! Both payloads open with the `u64::MAX` sentinel + a `u32` version, the
//! same in-band versioning scheme the v2 sections use (a legitimate legacy
//! length prefix can never be `u64::MAX`), so v2 snapshots remain readable
//! through the copy path.

use crate::layout::{BlockCodes, IvfListCodes};
use crate::pq::{EncodedPoints, LazyCodeMeta};
use crate::residency::{ClusterMeta, ResidencySet};
use juno_common::error::{Error, Result};
use juno_common::mmap::{ByteStore, MappedBytes, Mmap, ResidencyConfig, U32Store};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// In-band sentinel marking a versioned (non-legacy) section payload.
pub const MAPPED_SENTINEL: u64 = u64::MAX;
/// The mapped layout version this module writes for the LAYT section.
pub const LAYOUT_MAPPED_VERSION: u32 = 3;
/// The mapped layout version this module writes for the CODE section.
pub const CODES_MAPPED_VERSION: u32 = 3;

/// File alignment of every hot array (cache line; also divides the page
/// size, so per-cluster `madvise` ranges behave).
const ALIGN: usize = 64;
/// Fixed LAYT v3 header length (see [`encode_layout_v3`] for the fields).
const LAYT_HEADER_LEN: usize = 136;
/// One cluster-directory record: block offset/length, checksum, flags.
const DIR_RECORD_LEN: usize = 24;
/// Fixed CODE v3 header length.
const CODE_HEADER_LEN: usize = 56;

/// FNV-1a over a concatenation of byte slices — bit-identical to hashing
/// the concatenated bytes. Constants match `juno_data::snapshot::fnv1a`
/// (the container checksum), kept in-tree here because `juno-quant` sits
/// below `juno-data` in the dependency order.
pub(crate) fn fnv1a_chain(parts: &[&[u8]]) -> u32 {
    let mut hash = 0x811C_9DC5u32;
    for part in parts {
        for &b in *part {
            hash ^= b as u32;
            hash = hash.wrapping_mul(0x0100_0193);
        }
    }
    hash
}

fn rd_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn rd_u64(b: &[u8], at: usize) -> u64 {
    let mut v = [0u8; 8];
    v.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(v)
}

fn wr_u32(b: &mut [u8], at: usize, v: u32) {
    b[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn wr_u64(b: &mut [u8], at: usize, v: u64) {
    b[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

fn to_usize(v: u64, what: &str) -> Result<usize> {
    usize::try_from(v).map_err(|_| Error::corrupted(format!("{what} {v} exceeds address space")))
}

/// `a + b` with corruption (not panic/wrap) on overflow.
fn add(a: usize, b: usize) -> Result<usize> {
    a.checked_add(b)
        .ok_or_else(|| Error::corrupted("mapped-layout offset arithmetic overflows"))
}

/// `a * b` with corruption on overflow.
fn mul(a: usize, b: usize) -> Result<usize> {
    a.checked_mul(b)
        .ok_or_else(|| Error::corrupted("mapped-layout size arithmetic overflows"))
}

/// Pads `out` with zeros until `abs_off + out.len()` is `ALIGN`-aligned.
fn pad_to_align(out: &mut Vec<u8>, abs_off: usize) {
    let abs = abs_off + out.len();
    out.resize(out.len() + (abs.next_multiple_of(ALIGN) - abs), 0);
}

/// Checks that `off..off+len` lies within `total`, returning the end.
fn region(off: usize, len: usize, total: usize, what: &str) -> Result<usize> {
    let end = add(off, len)?;
    if end > total {
        return Err(Error::corrupted(format!(
            "mapped-layout {what} region {off}+{len} exceeds payload of {total} bytes"
        )));
    }
    Ok(end)
}

// ---------------------------------------------------------------------------
// LAYT v3
// ---------------------------------------------------------------------------
//
// Payload layout (all offsets relative to the payload start; the writer is
// told the payload's absolute file offset `abs_off` so the hot arrays land
// 64-byte aligned *in the file*):
//
//   0    u64  sentinel (u64::MAX)
//   8    u32  version (3)
//   12   u32  flags (0)
//   16   u64  S   — subspaces per code
//   24   u64  C   — clusters
//   32   u64  n   — base points
//   40   u64  next_id
//   48   u64  live
//   56   u64  stored_tombstones
//   64   u64  offsets_off   — (C+1) LE u32 CSR offsets
//   72   u64  dir_off       — C directory records of 24 B
//   80   u64  tail_off      — per-cluster tail stream, then tombstone bitmap
//   88   u64  tail_len
//   96   u64  ids_off       — n LE u32 base ids        (64-aligned)
//   104  u64  codes_off     — n*S base code bytes      (64-aligned)
//   112  u64  blocks_off    — per-cluster block views  (each 64-aligned)
//   120  u64  total_len
//   128  u32  meta_checksum — FNV over header[0..128] ‖ offsets ‖ dir ‖ tail
//   132  u32  pad (0)
//
// Directory record (per cluster):
//   0    u64  block_rel_off — relative to blocks_off
//   8    u64  block_len
//   16   u32  checksum      — FNV over ids ‖ codes ‖ [nibble, max_code]
//   20   u8   nibble (0/1)
//   21   u8   max_code
//   22   u16  pad (0)
//
// Tail stream: per cluster `u64 count`, `count` LE u32 ids, `count*S` code
// bytes; then `next_id` tombstone bytes (0/1).

/// Serialises the layout in the v3 mapped format. `abs_off` is the
/// absolute file offset at which this payload will be placed (the engine's
/// snapshot assembler computes it), used purely to align the hot arrays.
pub fn encode_layout_v3(list: &IvfListCodes, abs_off: usize) -> Vec<u8> {
    let s = list.num_subspaces;
    let c = list.num_clusters();
    let n = list.point_ids.len();
    let ids = list.point_ids.as_slice();

    let mut out = vec![0u8; LAYT_HEADER_LEN];
    let offsets_off = out.len();
    for &o in &list.offsets {
        out.extend_from_slice(&o.to_le_bytes());
    }
    let dir_off = out.len();
    out.resize(out.len() + c * DIR_RECORD_LEN, 0);
    let tail_off = out.len();
    for cl in 0..c {
        out.extend_from_slice(&(list.extra_ids[cl].len() as u64).to_le_bytes());
        for &id in &list.extra_ids[cl] {
            out.extend_from_slice(&id.to_le_bytes());
        }
        out.extend_from_slice(&list.extra_codes[cl]);
    }
    out.extend(list.deleted.iter().map(|&d| d as u8));
    let tail_len = out.len() - tail_off;

    pad_to_align(&mut out, abs_off);
    let ids_off = out.len();
    for &id in ids {
        out.extend_from_slice(&id.to_le_bytes());
    }
    pad_to_align(&mut out, abs_off);
    let codes_off = out.len();
    out.extend_from_slice(&list.codes);
    pad_to_align(&mut out, abs_off);
    let blocks_off = out.len();
    for cl in 0..c {
        pad_to_align(&mut out, abs_off);
        let rel = out.len() - blocks_off;
        let blocks = list.cluster_blocks(cl);
        out.extend_from_slice(blocks.data());
        // Per-cluster integrity record.
        let (a, b) = (list.offsets[cl] as usize, list.offsets[cl + 1] as usize);
        let id_bytes: Vec<u8> = ids[a..b].iter().flat_map(|i| i.to_le_bytes()).collect();
        let code_bytes = &list.codes[a * s..b * s];
        let max_code = code_bytes.iter().copied().max().unwrap_or(0);
        let nibble = blocks.nibble_packed();
        let checksum = fnv1a_chain(&[&id_bytes, code_bytes, &[nibble as u8, max_code]]);
        let rec = dir_off + cl * DIR_RECORD_LEN;
        wr_u64(&mut out, rec, rel as u64);
        wr_u64(&mut out, rec + 8, blocks.data().len() as u64);
        wr_u32(&mut out, rec + 16, checksum);
        out[rec + 20] = nibble as u8;
        out[rec + 21] = max_code;
    }

    wr_u64(&mut out, 0, MAPPED_SENTINEL);
    wr_u32(&mut out, 8, LAYOUT_MAPPED_VERSION);
    wr_u32(&mut out, 12, 0);
    for (at, v) in [
        (16, s as u64),
        (24, c as u64),
        (32, n as u64),
        (40, list.next_id as u64),
        (48, list.live as u64),
        (56, list.stored_tombstones as u64),
        (64, offsets_off as u64),
        (72, dir_off as u64),
        (80, tail_off as u64),
        (88, tail_len as u64),
        (96, ids_off as u64),
        (104, codes_off as u64),
        (112, blocks_off as u64),
        (120, out.len() as u64),
    ] {
        wr_u64(&mut out, at, v);
    }
    let meta = fnv1a_chain(&[
        &out[..128],
        &out[offsets_off..offsets_off + (c + 1) * 4],
        &out[dir_off..dir_off + c * DIR_RECORD_LEN],
        &out[tail_off..tail_off + tail_len],
    ]);
    wr_u32(&mut out, 128, meta);
    out
}

/// The parsed, validated skeleton of a v3 layout payload — everything
/// except the lazily-verified hot arrays.
struct LayoutV3 {
    s: usize,
    n: usize,
    next_id: u32,
    live: usize,
    stored_tombstones: usize,
    offsets: Vec<u32>,
    /// Per cluster: `(block_rel_off, block_len, checksum, nibble, max_code)`.
    dir: Vec<(usize, usize, u32, bool, u8)>,
    extra_ids: Vec<Vec<u32>>,
    extra_codes: Vec<Vec<u8>>,
    deleted: Vec<bool>,
    ids_off: usize,
    codes_off: usize,
    blocks_off: usize,
}

fn parse_layout_v3(b: &[u8]) -> Result<LayoutV3> {
    let bad = |msg: &str| Error::corrupted(format!("mapped layout: {msg}"));
    if b.len() < LAYT_HEADER_LEN {
        return Err(bad("payload shorter than the v3 header"));
    }
    if rd_u64(b, 0) != MAPPED_SENTINEL {
        return Err(bad("missing v3 sentinel"));
    }
    let version = rd_u32(b, 8);
    if version != LAYOUT_MAPPED_VERSION {
        return Err(Error::corrupted(format!(
            "mapped layout: unknown version {version} (reader supports {LAYOUT_MAPPED_VERSION})"
        )));
    }
    if rd_u32(b, 12) != 0 {
        return Err(bad("unknown flags"));
    }
    let s = to_usize(rd_u64(b, 16), "subspace count")?;
    let c = to_usize(rd_u64(b, 24), "cluster count")?;
    let n = to_usize(rd_u64(b, 32), "point count")?;
    let next_id64 = rd_u64(b, 40);
    let live = to_usize(rd_u64(b, 48), "live count")?;
    let stored_tombstones = to_usize(rd_u64(b, 56), "tombstone count")?;
    let offsets_off = to_usize(rd_u64(b, 64), "offsets offset")?;
    let dir_off = to_usize(rd_u64(b, 72), "directory offset")?;
    let tail_off = to_usize(rd_u64(b, 80), "tail offset")?;
    let tail_len = to_usize(rd_u64(b, 88), "tail length")?;
    let ids_off = to_usize(rd_u64(b, 96), "ids offset")?;
    let codes_off = to_usize(rd_u64(b, 104), "codes offset")?;
    let blocks_off = to_usize(rd_u64(b, 112), "blocks offset")?;
    let total_len = to_usize(rd_u64(b, 120), "total length")?;
    if total_len != b.len() {
        return Err(bad("recorded length does not match the payload"));
    }
    if s == 0 {
        return Err(bad("subspace count must be positive"));
    }
    if c == 0 {
        return Err(bad("cluster count must be positive"));
    }
    let next_id = u32::try_from(next_id64).map_err(|_| bad("next id exceeds the u32 id space"))?;
    if n > u32::MAX as usize {
        return Err(bad("point count exceeds the u32 id space"));
    }

    // Eager (meta-checksummed) regions.
    let offsets_end = region(offsets_off, mul(add(c, 1)?, 4)?, total_len, "offsets")?;
    let dir_end = region(dir_off, mul(c, DIR_RECORD_LEN)?, total_len, "directory")?;
    let tail_end = region(tail_off, tail_len, total_len, "tail")?;
    let meta = fnv1a_chain(&[
        &b[..128],
        &b[offsets_off..offsets_end],
        &b[dir_off..dir_end],
        &b[tail_off..tail_end],
    ]);
    if meta != rd_u32(b, 128) {
        return Err(bad("meta checksum mismatch"));
    }

    // CSR offsets.
    let offsets: Vec<u32> = b[offsets_off..offsets_end]
        .chunks_exact(4)
        .map(|ch| u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]))
        .collect();
    if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(bad("offsets are not monotonically non-decreasing from 0"));
    }
    if *offsets.last().expect("c + 1 >= 2 entries") as usize != n {
        return Err(bad("final offset does not match the point count"));
    }

    // Hot-array regions (content verified lazily, bounds verified now).
    region(ids_off, mul(n, 4)?, total_len, "ids")?;
    region(codes_off, mul(n, s)?, total_len, "codes")?;

    // Cluster directory.
    let mut dir = Vec::with_capacity(c);
    for cl in 0..c {
        let rec = dir_off + cl * DIR_RECORD_LEN;
        let rel = to_usize(rd_u64(b, rec), "block offset")?;
        let len = to_usize(rd_u64(b, rec + 8), "block length")?;
        let checksum = rd_u32(b, rec + 16);
        let nibble = match b[rec + 20] {
            0 => false,
            1 => true,
            _ => return Err(bad("directory nibble flag is not boolean")),
        };
        let max_code = b[rec + 21];
        let n_c = (offsets[cl + 1] - offsets[cl]) as usize;
        if len != BlockCodes::expected_data_len(n_c, s, nibble) {
            return Err(bad("block view length does not match the cluster shape"));
        }
        region(add(blocks_off, rel)?, len, total_len, "block view")?;
        dir.push((rel, len, checksum, nibble, max_code));
    }

    // Tail stream + tombstone bitmap.
    let tail = &b[tail_off..tail_end];
    let mut at = 0usize;
    let mut extra_ids = Vec::with_capacity(c);
    let mut extra_codes = Vec::with_capacity(c);
    let mut total_tail = 0usize;
    for _ in 0..c {
        if at + 8 > tail.len() {
            return Err(bad("tail stream truncated"));
        }
        let count = to_usize(rd_u64(tail, at), "tail count")?;
        at += 8;
        let ids_len = mul(count, 4)?;
        let codes_len = mul(count, s)?;
        if add(at, add(ids_len, codes_len)?)? > tail.len() {
            return Err(bad("tail stream truncated"));
        }
        let ids: Vec<u32> = tail[at..at + ids_len]
            .chunks_exact(4)
            .map(|ch| u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]))
            .collect();
        at += ids_len;
        if ids.windows(2).any(|w| w[0] >= w[1]) {
            return Err(bad("tail ids are not strictly increasing"));
        }
        if ids.iter().any(|&id| id >= next_id) {
            return Err(bad("tail id exceeds the id space"));
        }
        total_tail += count;
        extra_ids.push(ids);
        extra_codes.push(tail[at..at + codes_len].to_vec());
        at += codes_len;
    }
    if tail.len() - at != next_id as usize {
        return Err(bad("tombstone bitmap does not match the id space"));
    }
    let mut deleted = Vec::with_capacity(next_id as usize);
    for &byte in &tail[at..] {
        match byte {
            0 => deleted.push(false),
            1 => deleted.push(true),
            _ => return Err(bad("tombstone bitmap byte is not boolean")),
        }
    }

    // The stored-record ledger must balance: every stored record (base +
    // tail) is either live or a stored tombstone.
    if add(live, stored_tombstones)? != add(n, total_tail)? {
        return Err(bad("live/tombstone counts do not match the stored records"));
    }
    if stored_tombstones > deleted.iter().filter(|&&d| d).count() {
        return Err(bad("more stored tombstones than tombstone bits"));
    }

    Ok(LayoutV3 {
        s,
        n,
        next_id,
        live,
        stored_tombstones,
        offsets,
        dir,
        extra_ids,
        extra_codes,
        deleted,
        ids_off,
        codes_off,
        blocks_off,
    })
}

/// Opens a v3 layout payload **zero-copy** over its mapped bytes: eager
/// regions are validated now (meta checksum, shapes, bounds), the hot
/// arrays become views into the mapping, and a
/// [`ResidencySet`](crate::residency::ResidencySet) built from `config`
/// verifies each cluster on first probe.
///
/// # Errors
///
/// Returns [`Error::Corrupted`] for any framing, bounds, checksum or
/// consistency violation — a payload that maps successfully can be probed
/// without panicking, whatever its provenance.
pub fn map_layout_v3(bytes: MappedBytes, config: &ResidencyConfig) -> Result<IvfListCodes> {
    let parsed = parse_layout_v3(bytes.as_slice())?;
    let map: Arc<Mmap> = bytes.map().clone();
    let base = bytes.offset();
    let LayoutV3 {
        s,
        n,
        next_id,
        live,
        stored_tombstones,
        offsets,
        dir,
        extra_ids,
        extra_codes,
        deleted,
        ids_off,
        codes_off,
        blocks_off,
    } = parsed;

    let point_ids = U32Store::from_le_bytes(MappedBytes::new(map.clone(), base + ids_off, n * 4)?)?;
    let codes = ByteStore::Mapped(MappedBytes::new(map.clone(), base + codes_off, n * s)?);
    let mut blocks = Vec::with_capacity(dir.len());
    let mut metas = Vec::with_capacity(dir.len());
    let mut mapped_max = 0u8;
    for (cl, &(rel, len, checksum, nibble, max_code)) in dir.iter().enumerate() {
        let (a, b) = (offsets[cl] as usize, offsets[cl + 1] as usize);
        let view = MappedBytes::new(map.clone(), base + blocks_off + rel, len)?;
        blocks.push(BlockCodes::from_mapped(view, b - a, s, nibble)?);
        metas.push(ClusterMeta {
            ids: (base + ids_off + a * 4, (b - a) * 4),
            codes: (base + codes_off + a * s, (b - a) * s),
            blocks: (base + blocks_off + rel, len),
            checksum,
            nibble,
            max_code,
        });
        mapped_max = mapped_max.max(max_code);
    }
    let residency = ResidencySet::new(map, s, next_id, metas, config);
    Ok(IvfListCodes {
        offsets,
        point_ids,
        codes,
        num_subspaces: s,
        blocks,
        extra_ids,
        extra_codes,
        deleted,
        next_id,
        live,
        stored_tombstones,
        residency: Some(Arc::new(residency)),
        mapped_max_code: Some(mapped_max),
    })
}

/// Decodes a v3 layout payload into a fully **owned** RAM-resident layout —
/// the copy path, chosen when mapping is unavailable or the caller passed
/// plain bytes. Every cluster is verified eagerly and the result passes the
/// full [`IvfListCodes::from_parts`] invariant validation (including global
/// id uniqueness, which the lazy mapped path deliberately trusts to the
/// per-cluster checksums).
///
/// # Errors
///
/// Returns [`Error::Corrupted`] for any validation failure.
pub fn decode_layout_v3(payload: &[u8]) -> Result<IvfListCodes> {
    let map = Mmap::from_bytes(payload.to_vec());
    let len = map.len();
    let mapped = map_layout_v3(MappedBytes::new(map, 0, len)?, &ResidencyConfig::default())?;
    mapped.ensure_resident_all()?;
    IvfListCodes::from_parts(mapped.to_parts())
}

// ---------------------------------------------------------------------------
// CODE v3
// ---------------------------------------------------------------------------
//
// Payload layout:
//
//   0    u64  sentinel (u64::MAX)
//   8    u32  version (3)
//   12   u32  flags (0)
//   16   u64  S
//   24   u64  n
//   32   u64  data_off   — n*S dataset-order code bytes (64-aligned)
//   40   u64  total_len
//   48   u32  checksum   — FNV over the data bytes (verified lazily)
//   52   u8   max_code
//   53   u8×3 pad (0)

/// Serialises dataset-order codes in the v3 mapped format (`abs_off` as in
/// [`encode_layout_v3`]).
pub fn encode_codes_v3(codes: &EncodedPoints, abs_off: usize) -> Vec<u8> {
    let flat = codes.as_flat();
    let mut out = vec![0u8; CODE_HEADER_LEN];
    pad_to_align(&mut out, abs_off);
    let data_off = out.len();
    out.extend_from_slice(flat);
    wr_u64(&mut out, 0, MAPPED_SENTINEL);
    wr_u32(&mut out, 8, CODES_MAPPED_VERSION);
    wr_u32(&mut out, 12, 0);
    wr_u64(&mut out, 16, codes.num_subspaces() as u64);
    wr_u64(&mut out, 24, codes.len() as u64);
    wr_u64(&mut out, 32, data_off as u64);
    let total_len = out.len() as u64;
    wr_u64(&mut out, 40, total_len);
    wr_u32(&mut out, 48, fnv1a_chain(&[flat]));
    out[52] = flat.iter().copied().max().unwrap_or(0);
    out
}

/// Parses a CODE v3 header: `(S, n, data_off, checksum, max_code)`.
fn parse_codes_v3(b: &[u8]) -> Result<(usize, usize, usize, u32, u8)> {
    let bad = |msg: &str| Error::corrupted(format!("mapped codes: {msg}"));
    if b.len() < CODE_HEADER_LEN {
        return Err(bad("payload shorter than the v3 header"));
    }
    if rd_u64(b, 0) != MAPPED_SENTINEL {
        return Err(bad("missing v3 sentinel"));
    }
    let version = rd_u32(b, 8);
    if version != CODES_MAPPED_VERSION {
        return Err(Error::corrupted(format!(
            "mapped codes: unknown version {version} (reader supports {CODES_MAPPED_VERSION})"
        )));
    }
    if rd_u32(b, 12) != 0 {
        return Err(bad("unknown flags"));
    }
    let s = to_usize(rd_u64(b, 16), "subspace count")?;
    let n = to_usize(rd_u64(b, 24), "point count")?;
    let data_off = to_usize(rd_u64(b, 32), "data offset")?;
    let total_len = to_usize(rd_u64(b, 40), "total length")?;
    if total_len != b.len() {
        return Err(bad("recorded length does not match the payload"));
    }
    if s == 0 {
        return Err(bad("subspace count must be positive"));
    }
    region(data_off, mul(n, s)?, total_len, "data")?;
    Ok((s, n, data_off, rd_u32(b, 48), b[52]))
}

/// Opens a CODE v3 payload zero-copy: the code bytes stay in the mapping,
/// checksum-verified lazily on first mutating/diagnostic use
/// ([`EncodedPoints::ensure_verified`]) — the search path never reads them.
///
/// # Errors
///
/// Returns [`Error::Corrupted`] for framing/bounds violations.
pub fn map_codes_v3(bytes: MappedBytes) -> Result<EncodedPoints> {
    let (s, n, data_off, checksum, max_code) = parse_codes_v3(bytes.as_slice())?;
    let data = MappedBytes::new(bytes.map().clone(), bytes.offset() + data_off, n * s)?;
    Ok(EncodedPoints {
        codes: ByteStore::Mapped(data),
        num_subspaces: s,
        lazy: Some(LazyCodeMeta {
            checksum,
            max_code,
            verified: AtomicBool::new(false),
        }),
    })
}

/// Decodes a CODE v3 payload into owned, eagerly-verified codes (the copy
/// path).
///
/// # Errors
///
/// Returns [`Error::Corrupted`] for any validation failure.
pub fn decode_codes_v3(payload: &[u8]) -> Result<EncodedPoints> {
    let (s, n, data_off, checksum, max_code) = parse_codes_v3(payload)?;
    let data = &payload[data_off..data_off + n * s];
    if fnv1a_chain(&[data]) != checksum {
        return Err(Error::corrupted("mapped codes: checksum mismatch"));
    }
    if data.iter().any(|&c| c > max_code) {
        return Err(Error::corrupted(
            "mapped codes: code exceeds recorded maximum",
        ));
    }
    EncodedPoints::from_parts(data.to_vec(), s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::IvfListCodes;

    /// A layout with mixed nibble/byte clusters, mutation tails and
    /// tombstones — every v3 region populated.
    fn sample_layout() -> IvfListCodes {
        let n = 150usize;
        let s = 4usize;
        let labels: Vec<usize> = (0..n).map(|i| i % 5).collect();
        let bytes: Vec<u8> = (0..n * s)
            .map(|at| {
                let (i, j) = (at / s, at % s);
                if i % 5 == 0 {
                    ((i * 7 + j) % 16) as u8 // cluster 0 nibble-packs
                } else {
                    16 + ((i * 3 + j) % 100) as u8
                }
            })
            .collect();
        let enc = EncodedPoints::from_parts(bytes, s).unwrap();
        let mut g = IvfListCodes::build(&labels, &enc, 5).unwrap();
        for k in 0..7u8 {
            g.append((k as usize) % 5, &[k, 1, 2, 3]).unwrap();
        }
        assert!(g.remove(3));
        assert!(g.remove(60));
        assert!(g.remove(150)); // a tail record
        g
    }

    fn file_with(payload: &[u8], abs_off: usize) -> (Arc<Mmap>, usize, usize) {
        let mut file = vec![0u8; abs_off];
        file.extend_from_slice(payload);
        let len = payload.len();
        (Mmap::from_bytes(file), abs_off, len)
    }

    fn map_at(payload: &[u8], abs_off: usize, config: &ResidencyConfig) -> Result<IvfListCodes> {
        let (map, off, len) = file_with(payload, abs_off);
        map_layout_v3(MappedBytes::new(map, off, len)?, config)
    }

    #[test]
    fn layout_round_trips_through_map_and_copy_paths() {
        let g = sample_layout();
        // An awkward (non-aligned) payload base exercises the writer's
        // absolute-alignment padding.
        let payload = encode_layout_v3(&g, 24);
        let mapped = map_at(&payload, 24, &ResidencyConfig::default()).unwrap();
        assert!(mapped.is_mapped());
        mapped.ensure_resident_all().unwrap();
        assert_eq!(mapped, g);
        for c in 0..g.num_clusters() {
            assert_eq!(mapped.cluster_ids(c), g.cluster_ids(c));
            assert_eq!(mapped.cluster_codes(c), g.cluster_codes(c));
            assert_eq!(mapped.cluster_tail(c), g.cluster_tail(c));
            assert_eq!(
                mapped.cluster_blocks(c).data(),
                g.cluster_blocks(c).data(),
                "cluster {c} block view"
            );
        }
        assert_eq!(mapped.max_code(), g.max_code());

        let copied = decode_layout_v3(&payload).unwrap();
        assert!(!copied.is_mapped());
        assert_eq!(copied, g);
    }

    #[test]
    fn hot_arrays_are_file_aligned_for_any_payload_base() {
        let g = sample_layout();
        for abs_off in [0usize, 24, 63, 64, 100] {
            let payload = encode_layout_v3(&g, abs_off);
            let ids_off = rd_u64(&payload, 96) as usize;
            let codes_off = rd_u64(&payload, 104) as usize;
            let blocks_off = rd_u64(&payload, 112) as usize;
            assert_eq!((abs_off + ids_off) % ALIGN, 0);
            assert_eq!((abs_off + codes_off) % ALIGN, 0);
            assert_eq!((abs_off + blocks_off) % ALIGN, 0);
            map_at(&payload, abs_off, &ResidencyConfig::default())
                .unwrap()
                .ensure_resident_all()
                .unwrap();
        }
    }

    #[test]
    fn tight_budget_evicts_but_serves_identical_content() {
        let g = sample_layout();
        let payload = encode_layout_v3(&g, 0);
        let total: usize = (0..g.num_clusters())
            .map(|c| g.cluster_blocks(c).data_bytes() + g.cluster_ids(c).len() * 8)
            .sum();
        let config = ResidencyConfig {
            budget_bytes: total / 3,
            pin_bytes: 0,
        };
        let mapped = map_at(&payload, 0, &config).unwrap();
        for _round in 0..3 {
            for c in 0..g.num_clusters() {
                mapped.touch_cluster(c).unwrap();
                assert_eq!(mapped.cluster_ids(c), g.cluster_ids(c));
                assert_eq!(mapped.cluster_blocks(c).data(), g.cluster_blocks(c).data());
            }
        }
        let stats = mapped.residency_stats().unwrap();
        assert!(stats.evictions > 0, "a third-of-index budget must evict");
        assert!(stats.cold_faults >= g.num_clusters() as u64);
        assert_eq!(stats.budget_bytes, total / 3);
    }

    #[test]
    fn pinned_clusters_never_evict() {
        let g = sample_layout();
        let payload = encode_layout_v3(&g, 0);
        let config = ResidencyConfig {
            budget_bytes: 1,       // evict everything evictable immediately
            pin_bytes: usize::MAX, // ...but pin every cluster
        };
        let mapped = map_at(&payload, 0, &config).unwrap();
        for c in 0..g.num_clusters() {
            mapped.touch_cluster(c).unwrap();
        }
        let stats = mapped.residency_stats().unwrap();
        assert_eq!(stats.evictions, 0);
        assert!(stats.pinned_bytes > 0);
    }

    /// Every single-byte corruption either fails at map time, fails the
    /// first touch of some cluster, or (padding) leaves the served content
    /// bit-identical. Nothing panics.
    #[test]
    fn every_byte_flip_is_caught_or_harmless() {
        let g = sample_layout();
        let payload = encode_layout_v3(&g, 0);
        for at in 0..payload.len() {
            let mut bad = payload.clone();
            bad[at] ^= 0x40;
            let Ok(mapped) = map_at(&bad, 0, &ResidencyConfig::default()) else {
                continue; // rejected eagerly
            };
            match mapped.ensure_resident_all() {
                Err(_) => continue, // rejected on first touch
                Ok(()) => assert_eq!(
                    mapped, g,
                    "undetected flip at byte {at} changed served content"
                ),
            }
        }
    }

    #[test]
    fn corrupt_cluster_keeps_failing_and_never_serves() {
        let g = sample_layout();
        let payload = encode_layout_v3(&g, 0);
        let ids_off = rd_u64(&payload, 96) as usize;
        let mut bad = payload.clone();
        bad[ids_off] ^= 0xFF; // cluster 0's first base id
        let mapped = map_at(&bad, 0, &ResidencyConfig::default()).unwrap();
        assert!(mapped.touch_cluster(0).is_err());
        assert!(mapped.touch_cluster(0).is_err(), "corruption is sticky");
        // Other clusters are unaffected.
        for c in 1..g.num_clusters() {
            mapped.touch_cluster(c).unwrap();
            assert_eq!(mapped.cluster_ids(c), g.cluster_ids(c));
        }
        let stats = mapped.residency_stats().unwrap();
        assert!(stats.hits + stats.cold_faults >= 4);
    }

    #[test]
    fn truncations_and_garbage_never_panic() {
        let g = sample_layout();
        let payload = encode_layout_v3(&g, 0);
        for len in (0..payload.len()).step_by(7).chain([payload.len() - 1]) {
            let r = map_at(&payload[..len], 0, &ResidencyConfig::default());
            assert!(r.is_err(), "truncation to {len} bytes must be rejected");
        }
        assert!(map_at(&[0xAB; 300], 0, &ResidencyConfig::default()).is_err());
        assert!(decode_layout_v3(&[0xAB; 300]).is_err());
        assert!(decode_codes_v3(&[0xAB; 300]).is_err());
    }

    #[test]
    fn codes_round_trip_mapped_and_copied() {
        let flat: Vec<u8> = (0..600).map(|i| (i % 23) as u8).collect();
        let enc = EncodedPoints::from_parts(flat, 4).unwrap();
        for abs_off in [0usize, 24] {
            let payload = encode_codes_v3(&enc, abs_off);
            let data_off = rd_u64(&payload, 32) as usize;
            assert_eq!((abs_off + data_off) % ALIGN, 0);
            let (map, off, len) = file_with(&payload, abs_off);
            let mapped = map_codes_v3(MappedBytes::new(map, off, len).unwrap()).unwrap();
            assert!(mapped.is_mapped());
            assert_eq!(mapped, enc);
            assert_eq!(mapped.claimed_max_code(), Some(22));
            mapped.ensure_verified().unwrap();
            let copied = decode_codes_v3(&payload).unwrap();
            assert!(!copied.is_mapped());
            assert_eq!(copied, enc);
        }
    }

    #[test]
    fn mapped_codes_verify_on_first_use_and_copy_on_write() {
        let flat: Vec<u8> = (0..200).map(|i| (i % 11) as u8).collect();
        let enc = EncodedPoints::from_parts(flat, 4).unwrap();
        let payload = encode_codes_v3(&enc, 0);

        // Flip a data byte: mapping still succeeds (lazy), verification and
        // the eager copy path both reject.
        let data_off = rd_u64(&payload, 32) as usize;
        let mut bad = payload.clone();
        bad[data_off + 5] ^= 0x01;
        let (map, off, len) = file_with(&bad, 0);
        let mapped = map_codes_v3(MappedBytes::new(map, off, len).unwrap()).unwrap();
        assert!(mapped.ensure_verified().is_err());
        let mut writable = mapped.clone();
        assert!(
            writable.push(&[1, 2, 3, 4]).is_err(),
            "no mutation of corrupt codes"
        );
        assert!(decode_codes_v3(&bad).is_err());

        // An intact mapping verifies, then copies on first write.
        let (map, off, len) = file_with(&payload, 0);
        let mut ok = map_codes_v3(MappedBytes::new(map, off, len).unwrap()).unwrap();
        ok.push(&[9, 9, 9, 9]).unwrap();
        assert!(!ok.is_mapped());
        assert_eq!(ok.len(), enc.len() + 1);
        assert_eq!(ok.code(enc.len()), &[9, 9, 9, 9]);
    }
}
