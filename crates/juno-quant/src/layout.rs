//! IVF-list-contiguous PQ code layout for cache-friendly ADC scans.
//!
//! [`EncodedPoints`](crate::pq::EncodedPoints) stores codes in dataset order,
//! which is the natural output of encoding but the worst possible order for
//! the online path: a probe visits the members of *one* coarse cluster, and
//! in dataset order those members are scattered across the whole code array,
//! so every candidate is a cache miss.
//!
//! [`IvfListCodes`] reorders the codes so that each IVF list is one
//! contiguous block (CSR over clusters). Within a block the codes stay
//! point-major (all `D/M` subspace codes of a point adjacent — the
//! interleaving the per-candidate accumulation consumes left to right), so an
//! ADC scan over a probed cluster streams memory strictly sequentially.

use crate::pq::EncodedPoints;
use juno_common::error::{Error, Result};

/// PQ codes grouped contiguously by IVF cluster, with the original point ids
/// carried alongside.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IvfListCodes {
    /// `offsets[c]..offsets[c + 1]` indexes `point_ids` (and, scaled by the
    /// subspace count, `codes`) for cluster `c`. Length `clusters + 1`.
    offsets: Vec<u32>,
    /// Original (dataset-order) ids of the points, grouped by cluster.
    point_ids: Vec<u32>,
    /// Codes in cluster-grouped, point-major order:
    /// `codes[(offsets[c] + i) * S + s]` is the subspace-`s` code of the
    /// `i`-th member of cluster `c`.
    codes: Vec<u16>,
    num_subspaces: usize,
}

impl IvfListCodes {
    /// Reorders `codes` by IVF cluster label.
    ///
    /// `labels[p]` is the IVF cluster of point `p`, exactly as produced by
    /// `IvfIndex::labels()`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when shapes disagree and
    /// [`Error::IndexOutOfBounds`] for a label `≥ num_clusters`.
    pub fn build(labels: &[usize], codes: &EncodedPoints, num_clusters: usize) -> Result<Self> {
        if labels.len() != codes.len() {
            return Err(Error::invalid_config(format!(
                "{} labels but {} encoded points",
                labels.len(),
                codes.len()
            )));
        }
        if num_clusters == 0 {
            return Err(Error::invalid_config("cluster count must be positive"));
        }
        let s = codes.num_subspaces();

        let mut counts = vec![0u32; num_clusters + 1];
        for (p, &c) in labels.iter().enumerate() {
            if c >= num_clusters {
                return Err(Error::IndexOutOfBounds {
                    what: "cluster label".into(),
                    index: c,
                    len: num_clusters,
                });
            }
            let _ = p;
            counts[c + 1] += 1;
        }
        for c in 0..num_clusters {
            counts[c + 1] += counts[c];
        }

        let mut point_ids = vec![0u32; labels.len()];
        let mut grouped = vec![0u16; labels.len() * s];
        let mut cursors = counts.clone();
        for (p, &c) in labels.iter().enumerate() {
            let at = cursors[c] as usize;
            point_ids[at] = p as u32;
            grouped[at * s..(at + 1) * s].copy_from_slice(codes.code(p));
            cursors[c] += 1;
        }

        Ok(Self {
            offsets: counts,
            point_ids,
            codes: grouped,
            num_subspaces: s,
        })
    }

    /// Number of clusters covered.
    pub fn num_clusters(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of subspaces per code.
    pub fn num_subspaces(&self) -> usize {
        self.num_subspaces
    }

    /// Total number of points across all clusters.
    pub fn len(&self) -> usize {
        self.point_ids.len()
    }

    /// Returns `true` when no point is stored.
    pub fn is_empty(&self) -> bool {
        self.point_ids.is_empty()
    }

    /// The original ids of the members of `cluster`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of bounds (internal misuse — the engine
    /// only passes clusters returned by the filter stage).
    #[inline]
    pub fn cluster_ids(&self, cluster: usize) -> &[u32] {
        let (start, end) = self.bounds(cluster);
        &self.point_ids[start..end]
    }

    /// The contiguous point-major code block of `cluster`
    /// (`cluster_ids(c).len() × num_subspaces` values).
    #[inline]
    pub fn cluster_codes(&self, cluster: usize) -> &[u16] {
        let (start, end) = self.bounds(cluster);
        &self.codes[start * self.num_subspaces..end * self.num_subspaces]
    }

    #[inline]
    fn bounds(&self, cluster: usize) -> (usize, usize) {
        (
            self.offsets[cluster] as usize,
            self.offsets[cluster + 1] as usize,
        )
    }

    /// Memory footprint of the reordered codes in bytes (diagnostics).
    pub fn code_bytes(&self) -> usize {
        self.codes.len() * std::mem::size_of::<u16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pq::{PqTrainConfig, ProductQuantizer};
    use juno_common::rng::{normal, seeded};
    use juno_common::vector::VectorSet;

    fn trained(n: usize) -> (Vec<usize>, EncodedPoints) {
        let mut rng = seeded(17);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..8).map(|_| normal(&mut rng, 0.0, 1.0)).collect())
            .collect();
        let data = VectorSet::from_rows(rows).unwrap();
        let pq = ProductQuantizer::train(
            &data,
            &PqTrainConfig {
                num_subspaces: 4,
                entries_per_subspace: 8,
                kmeans_iters: 6,
                seed: 2,
                train_subsample: None,
            },
        )
        .unwrap();
        let codes = pq.encode(&data).unwrap();
        let labels: Vec<usize> = (0..n).map(|i| (i * 7) % 5).collect();
        (labels, codes)
    }

    #[test]
    fn every_point_lands_in_its_cluster_with_its_code() {
        let (labels, codes) = trained(200);
        let grouped = IvfListCodes::build(&labels, &codes, 5).unwrap();
        assert_eq!(grouped.num_clusters(), 5);
        assert_eq!(grouped.num_subspaces(), 4);
        assert_eq!(grouped.len(), 200);
        assert!(!grouped.is_empty());
        let mut seen = 0usize;
        for c in 0..5 {
            let ids = grouped.cluster_ids(c);
            let block = grouped.cluster_codes(c);
            assert_eq!(block.len(), ids.len() * 4);
            for (i, &pid) in ids.iter().enumerate() {
                assert_eq!(labels[pid as usize], c);
                assert_eq!(&block[i * 4..(i + 1) * 4], codes.code(pid as usize));
                seen += 1;
            }
        }
        assert_eq!(seen, 200);
    }

    #[test]
    fn members_keep_dataset_order_within_cluster() {
        let (labels, codes) = trained(120);
        let grouped = IvfListCodes::build(&labels, &codes, 5).unwrap();
        for c in 0..5 {
            let ids = grouped.cluster_ids(c);
            assert!(ids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (labels, codes) = trained(50);
        assert!(IvfListCodes::build(&labels[..10], &codes, 5).is_err());
        assert!(IvfListCodes::build(&labels, &codes, 0).is_err());
        // Label out of bounds for the declared cluster count.
        assert!(IvfListCodes::build(&labels, &codes, 3).is_err());
        let grouped = IvfListCodes::build(&labels, &codes, 5).unwrap();
        assert_eq!(grouped.code_bytes(), 50 * 4 * 2);
    }
}
