//! IVF-list-contiguous PQ code layout for cache-friendly ADC scans, with
//! dynamic mutation support.
//!
//! [`EncodedPoints`](crate::pq::EncodedPoints) stores codes in dataset order,
//! which is the natural output of encoding but the worst possible order for
//! the online path: a probe visits the members of *one* coarse cluster, and
//! in dataset order those members are scattered across the whole code array,
//! so every candidate is a cache miss.
//!
//! [`IvfListCodes`] reorders the codes so that each IVF list is one
//! contiguous block (CSR over clusters). Within a block the codes stay
//! point-major (all `D/M` subspace codes of a point adjacent — the
//! interleaving the per-candidate accumulation consumes left to right), so an
//! ADC scan over a probed cluster streams memory strictly sequentially.
//!
//! # Mutation model
//!
//! The CSR base is immutable between compactions; mutations are layered on
//! top of it so the hot scan stays almost entirely sequential:
//!
//! * [`IvfListCodes::append`] pushes new points into a small per-cluster
//!   *tail* (`extra_ids` / `extra_codes`). A probe scans the base block and
//!   then the tail — two contiguous runs instead of one.
//! * [`IvfListCodes::remove`] sets a *tombstone* bit for the point id.
//!   Tombstoned records stay in storage (removing from the middle of a CSR
//!   array would be O(N)) and are skipped by the scan via
//!   [`IvfListCodes::is_deleted`].
//! * [`IvfListCodes::compact`] rebuilds the CSR base: tails are merged in,
//!   tombstoned records are physically dropped, and every cluster block is
//!   restored to id-sorted point-major contiguous order.
//!
//! Point ids are monotonically increasing and never reused, so ids handed
//! out before a mutation stay valid afterwards.
//!
//! # Block-interleaved fast-scan layout
//!
//! Alongside the point-major base block, every cluster keeps a second,
//! derived view of the same codes: [`BlockCodes`], the base segment
//! transposed into blocks of [`BLOCK_LANES`](juno_common::kernel::BLOCK_LANES)
//! (32) points. Within a block the codes are subspace-major — one LUT entry
//! serves 32 contiguous lanes — which is the shape the quantised fast-scan
//! kernel (`juno_common::kernel`) consumes; when every code of the cluster
//! fits in 4 bits the rows are nibble-packed (two lanes per byte). The block
//! view is rebuilt by [`IvfListCodes::build`], [`IvfListCodes::compact`] and
//! [`IvfListCodes::from_parts`]; append tails are *not* block-interleaved
//! (they are scanned by the exact path until the next compaction).

use crate::pq::EncodedPoints;
use crate::residency::{ResidencySet, ResidencyStats};
use juno_common::error::{Error, Result};
use juno_common::kernel::{
    block_lane_code, prefetch_rows, row_bytes, scan_block_with_abandon, QuantizedLut, BLOCK_LANES,
    NEVER_PRUNE,
};
use juno_common::mmap::{ByteStore, MappedBytes, U32Store};
use std::sync::Arc;

/// PQ codes grouped contiguously by IVF cluster, with the original point ids
/// carried alongside, plus the append-tail / tombstone state described in the
/// [module docs](self).
///
/// The CSR base (`point_ids`, `codes`, the block views) is either owned
/// (RAM-resident path) or a set of zero-copy views into a mapped snapshot
/// (out-of-core path, [`crate::mapped::map_layout_v3`]); mutation state
/// (tails, tombstones) is always owned. Equality compares logical content,
/// so a mapped index equals its RAM-resident twin.
#[derive(Debug, Clone, Default)]
pub struct IvfListCodes {
    /// `offsets[c]..offsets[c + 1]` indexes `point_ids` (and, scaled by the
    /// subspace count, `codes`) for cluster `c`. Length `clusters + 1`.
    /// Always owned — it is tiny and consulted on every probe.
    pub(crate) offsets: Vec<u32>,
    /// Original (dataset-order) ids of the points, grouped by cluster.
    pub(crate) point_ids: U32Store,
    /// Codes in cluster-grouped, point-major order:
    /// `codes[(offsets[c] + i) * S + s]` is the subspace-`s` code of the
    /// `i`-th member of cluster `c`.
    pub(crate) codes: ByteStore,
    pub(crate) num_subspaces: usize,
    /// The block-interleaved view of every cluster's base segment, consumed
    /// by the fast-scan prune pass. Derived from `offsets`/`codes`, rebuilt
    /// on build / compaction / restore (or mapped in place).
    pub(crate) blocks: Vec<BlockCodes>,
    /// Per-cluster ids appended since the last compaction.
    pub(crate) extra_ids: Vec<Vec<u32>>,
    /// Per-cluster point-major codes appended since the last compaction.
    pub(crate) extra_codes: Vec<Vec<u8>>,
    /// `deleted[id]` — tombstone bit per point id. Monotone: ids of deleted
    /// points are never reused, so bits stay set across compactions.
    pub(crate) deleted: Vec<bool>,
    /// The next id [`IvfListCodes::append`] will hand out.
    pub(crate) next_id: u32,
    /// Number of live (stored and not tombstoned) points.
    pub(crate) live: usize,
    /// Tombstoned records still physically present in storage (reset to zero
    /// by compaction).
    pub(crate) stored_tombstones: usize,
    /// Per-cluster residency tracking for the mapped path (`None` when the
    /// base is owned). First touch of a cluster verifies its checksum and
    /// faults it in; a budget evicts cold clusters.
    pub(crate) residency: Option<Arc<ResidencySet>>,
    /// Writer-recorded maximum base code of a mapped layout, so the restore
    /// range check does not have to fault every code page in.
    pub(crate) mapped_max_code: Option<u8>,
}

impl PartialEq for IvfListCodes {
    fn eq(&self, other: &Self) -> bool {
        // Logical content only: residency bookkeeping (and whether the base
        // is mapped or owned) is serving state, not index state.
        self.offsets == other.offsets
            && self.point_ids == other.point_ids
            && self.codes == other.codes
            && self.num_subspaces == other.num_subspaces
            && self.blocks == other.blocks
            && self.extra_ids == other.extra_ids
            && self.extra_codes == other.extra_codes
            && self.deleted == other.deleted
            && self.next_id == other.next_id
            && self.live == other.live
            && self.stored_tombstones == other.stored_tombstones
    }
}

impl Eq for IvfListCodes {}

/// The complete serialisable state of an [`IvfListCodes`], used by the
/// snapshot persistence layer. Produced by [`IvfListCodes::to_parts`] and
/// validated back by [`IvfListCodes::from_parts`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IvfListCodesParts {
    /// CSR offsets (length `clusters + 1`).
    pub offsets: Vec<u32>,
    /// Base point ids, grouped by cluster.
    pub point_ids: Vec<u32>,
    /// Base codes, cluster-grouped point-major.
    pub codes: Vec<u8>,
    /// Subspaces per code.
    pub num_subspaces: usize,
    /// Per-cluster appended ids.
    pub extra_ids: Vec<Vec<u32>>,
    /// Per-cluster appended codes.
    pub extra_codes: Vec<Vec<u8>>,
    /// Tombstone bit per id (length `next_id`).
    pub deleted: Vec<bool>,
    /// Next id to assign.
    pub next_id: u32,
}

impl IvfListCodes {
    /// Reorders `codes` by IVF cluster label.
    ///
    /// `labels[p]` is the IVF cluster of point `p`, exactly as produced by
    /// `IvfIndex::labels()`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when shapes disagree and
    /// [`Error::IndexOutOfBounds`] for a label `≥ num_clusters`.
    pub fn build(labels: &[usize], codes: &EncodedPoints, num_clusters: usize) -> Result<Self> {
        if labels.len() != codes.len() {
            return Err(Error::invalid_config(format!(
                "{} labels but {} encoded points",
                labels.len(),
                codes.len()
            )));
        }
        if num_clusters == 0 {
            return Err(Error::invalid_config("cluster count must be positive"));
        }
        if labels.len() > u32::MAX as usize {
            return Err(Error::invalid_config("point count exceeds u32 id space"));
        }
        let s = codes.num_subspaces();

        let mut counts = vec![0u32; num_clusters + 1];
        for &c in labels.iter() {
            if c >= num_clusters {
                return Err(Error::IndexOutOfBounds {
                    what: "cluster label".into(),
                    index: c,
                    len: num_clusters,
                });
            }
            counts[c + 1] += 1;
        }
        for c in 0..num_clusters {
            counts[c + 1] += counts[c];
        }

        let mut point_ids = vec![0u32; labels.len()];
        let mut grouped = vec![0u8; labels.len() * s];
        let mut cursors = counts.clone();
        for (p, &c) in labels.iter().enumerate() {
            let at = cursors[c] as usize;
            point_ids[at] = p as u32;
            grouped[at * s..(at + 1) * s].copy_from_slice(codes.code(p));
            cursors[c] += 1;
        }

        let blocks = build_blocks(&counts, &grouped, s);
        Ok(Self {
            offsets: counts,
            point_ids: point_ids.into(),
            codes: grouped.into(),
            num_subspaces: s,
            blocks,
            extra_ids: vec![Vec::new(); num_clusters],
            extra_codes: vec![Vec::new(); num_clusters],
            deleted: vec![false; labels.len()],
            next_id: labels.len() as u32,
            live: labels.len(),
            stored_tombstones: 0,
            residency: None,
            mapped_max_code: None,
        })
    }

    /// Number of clusters covered.
    pub fn num_clusters(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of subspaces per code.
    pub fn num_subspaces(&self) -> usize {
        self.num_subspaces
    }

    /// Number of **live** points (stored and not tombstoned).
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` when no live point is stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The id the next [`IvfListCodes::append`] will assign. Also the length
    /// of the id space: every id ever assigned is `< next_id`.
    pub fn next_id(&self) -> u32 {
        self.next_id
    }

    /// Number of tombstoned records still occupying storage (zero right
    /// after a compaction).
    pub fn stored_tombstones(&self) -> usize {
        self.stored_tombstones
    }

    /// Returns `true` when `id` was assigned and later deleted.
    #[inline]
    pub fn is_deleted(&self, id: u32) -> bool {
        self.deleted.get(id as usize).copied().unwrap_or(false)
    }

    /// Appends one encoded point to `cluster`'s tail and returns its new id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] for an invalid cluster,
    /// [`Error::DimensionMismatch`] when `code` does not have
    /// [`IvfListCodes::num_subspaces`] entries and [`Error::InvalidConfig`]
    /// when the u32 id space is exhausted.
    pub fn append(&mut self, cluster: usize, code: &[u8]) -> Result<u32> {
        if cluster >= self.num_clusters() {
            return Err(Error::IndexOutOfBounds {
                what: "cluster".into(),
                index: cluster,
                len: self.num_clusters(),
            });
        }
        if code.len() != self.num_subspaces || self.num_subspaces == 0 {
            return Err(Error::DimensionMismatch {
                expected: self.num_subspaces,
                actual: code.len(),
            });
        }
        if self.next_id == u32::MAX {
            return Err(Error::invalid_config("point id space exhausted"));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.deleted.push(false);
        self.extra_ids[cluster].push(id);
        self.extra_codes[cluster].extend_from_slice(code);
        self.live += 1;
        Ok(id)
    }

    /// Tombstones the point with the given id.
    ///
    /// Returns `true` when the id was live and is now deleted, `false` when
    /// it was never assigned or already deleted (idempotent).
    pub fn remove(&mut self, id: u32) -> bool {
        match self.deleted.get_mut(id as usize) {
            Some(slot) if !*slot => {
                *slot = true;
                self.live -= 1;
                self.stored_tombstones += 1;
                true
            }
            _ => false,
        }
    }

    /// Rebuilds the CSR base: merges the per-cluster tails in, physically
    /// drops tombstoned records and restores every cluster block to
    /// id-sorted point-major contiguous order. Scan results are unchanged;
    /// only the storage layout (and therefore scan locality) improves.
    pub fn compact(&mut self) {
        let clusters = self.num_clusters();
        let s = self.num_subspaces;
        let mut new_offsets = Vec::with_capacity(clusters + 1);
        let mut new_ids = Vec::with_capacity(self.live);
        let mut new_codes: Vec<u8> = Vec::with_capacity(self.live * s);
        new_offsets.push(0u32);
        for c in 0..clusters {
            // Base members and tail members, both already id-sorted (the base
            // by construction, the tail because ids are handed out
            // monotonically), merged and filtered in one ordered pass.
            let (start, end) = self.bounds(c);
            let base_ids = &self.point_ids.as_slice()[start..end];
            let base_codes = &self.codes[start * s..end * s];
            let tail_ids = &self.extra_ids[c];
            let tail_codes = &self.extra_codes[c];
            let (mut i, mut j) = (0usize, 0usize);
            while i < base_ids.len() || j < tail_ids.len() {
                let take_base = match (base_ids.get(i), tail_ids.get(j)) {
                    (Some(&b), Some(&t)) => b < t,
                    (Some(_), None) => true,
                    _ => false,
                };
                let (id, code) = if take_base {
                    let rec = (base_ids[i], &base_codes[i * s..(i + 1) * s]);
                    i += 1;
                    rec
                } else {
                    let rec = (tail_ids[j], &tail_codes[j * s..(j + 1) * s]);
                    j += 1;
                    rec
                };
                if !self.deleted[id as usize] {
                    new_ids.push(id);
                    new_codes.extend_from_slice(code);
                }
            }
            new_offsets.push(new_ids.len() as u32);
        }
        self.blocks = build_blocks(&new_offsets, &new_codes, s);
        self.offsets = new_offsets;
        self.point_ids = new_ids.into();
        self.codes = new_codes.into();
        for c in 0..clusters {
            self.extra_ids[c].clear();
            self.extra_codes[c].clear();
        }
        self.stored_tombstones = 0;
        // Compaction rebuilds the base in RAM, so the index is no longer
        // serving out of the snapshot file.
        self.residency = None;
        self.mapped_max_code = None;
    }

    /// The original ids of the **base-block** members of `cluster`, in
    /// id-sorted order (appended points live in the tail segment; use
    /// [`IvfListCodes::cluster_segments`] to scan everything).
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of bounds (internal misuse — the engine
    /// only passes clusters returned by the filter stage).
    #[inline]
    pub fn cluster_ids(&self, cluster: usize) -> &[u32] {
        let (start, end) = self.bounds(cluster);
        &self.point_ids.as_slice()[start..end]
    }

    /// The contiguous point-major code block of `cluster`'s base segment
    /// (`cluster_ids(c).len() × num_subspaces` values).
    #[inline]
    pub fn cluster_codes(&self, cluster: usize) -> &[u8] {
        let (start, end) = self.bounds(cluster);
        &self.codes[start * self.num_subspaces..end * self.num_subspaces]
    }

    /// The stored records of `cluster` as up to two contiguous
    /// `(ids, point-major codes)` runs: the CSR base block followed by the
    /// append tail. Tombstoned records are still present — the scan filters
    /// them with [`IvfListCodes::is_deleted`].
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of bounds.
    #[inline]
    pub fn cluster_segments(&self, cluster: usize) -> impl Iterator<Item = (&[u32], &[u8])> {
        let base = (self.cluster_ids(cluster), self.cluster_codes(cluster));
        let tail = (
            self.extra_ids[cluster].as_slice(),
            self.extra_codes[cluster].as_slice(),
        );
        [base, tail].into_iter().filter(|(ids, _)| !ids.is_empty())
    }

    /// The append-tail records of `cluster` (ids and point-major codes) —
    /// empty unless points were inserted since the last compaction. Tail
    /// records are scanned by the exact path; only the base segment has a
    /// block-interleaved view.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of bounds.
    #[inline]
    pub fn cluster_tail(&self, cluster: usize) -> (&[u32], &[u8]) {
        (
            self.extra_ids[cluster].as_slice(),
            self.extra_codes[cluster].as_slice(),
        )
    }

    #[inline]
    fn bounds(&self, cluster: usize) -> (usize, usize) {
        (
            self.offsets[cluster] as usize,
            self.offsets[cluster + 1] as usize,
        )
    }

    /// The largest code value stored (base + tails), or `None` when no code
    /// is stored. Restore paths cross-check this against the codebook's
    /// entry count so corrupt snapshots cannot drive out-of-range LUT
    /// lookups.
    ///
    /// On the mapped path the base contribution is the writer-recorded
    /// maximum (itself covered by the per-cluster checksums verified on
    /// first touch) rather than a scan — scanning would fault the entire
    /// code region in and defeat the out-of-core restore.
    pub fn max_code(&self) -> Option<u8> {
        let base = match self.mapped_max_code {
            Some(max) => (!self.codes.is_empty()).then_some(max),
            None => self.codes.iter().copied().max(),
        };
        let tails = self
            .extra_codes
            .iter()
            .filter_map(|c| c.iter().copied().max())
            .max();
        base.into_iter().chain(tails).max()
    }

    /// Memory footprint of the stored codes (base + tails) in bytes
    /// (diagnostics).
    pub fn code_bytes(&self) -> usize {
        let tail: usize = self.extra_codes.iter().map(Vec::len).sum();
        let blocks: usize = self.blocks.iter().map(BlockCodes::data_bytes).sum();
        self.codes.len() + tail + blocks
    }

    /// Clones the full state into a serialisable [`IvfListCodesParts`]
    /// (copying the base out of the mapping on the out-of-core path).
    pub fn to_parts(&self) -> IvfListCodesParts {
        IvfListCodesParts {
            offsets: self.offsets.clone(),
            point_ids: self.point_ids.as_slice().to_vec(),
            codes: self.codes.to_vec(),
            num_subspaces: self.num_subspaces,
            extra_ids: self.extra_ids.clone(),
            extra_codes: self.extra_codes.clone(),
            deleted: self.deleted.clone(),
            next_id: self.next_id,
        }
    }

    /// Rebuilds an [`IvfListCodes`] from persisted parts, re-validating every
    /// structural invariant (shapes, monotone offsets, id uniqueness and
    /// range) so corrupted snapshots are rejected instead of causing panics
    /// later.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] when any invariant is violated.
    pub fn from_parts(parts: IvfListCodesParts) -> Result<Self> {
        let IvfListCodesParts {
            offsets,
            point_ids,
            codes,
            num_subspaces,
            extra_ids,
            extra_codes,
            deleted,
            next_id,
        } = parts;
        let bad = |msg: &str| Error::corrupted(format!("IvfListCodes: {msg}"));
        if offsets.len() < 2 {
            return Err(bad("offsets must cover at least one cluster"));
        }
        let clusters = offsets.len() - 1;
        if num_subspaces == 0 {
            return Err(bad("subspace count must be positive"));
        }
        if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(bad("offsets are not monotonically non-decreasing from 0"));
        }
        if *offsets.last().expect("len checked") as usize != point_ids.len() {
            return Err(bad("final offset does not match base id count"));
        }
        // num_subspaces is untrusted (it may come from a corrupted snapshot):
        // multiply checked so neither debug overflow panics nor release
        // wrap-around can defeat the shape checks.
        let code_len = |n: usize| -> Result<usize> {
            n.checked_mul(num_subspaces)
                .ok_or_else(|| bad("code buffer size overflows"))
        };
        if codes.len() != code_len(point_ids.len())? {
            return Err(bad("base code buffer does not match id count"));
        }
        if extra_ids.len() != clusters || extra_codes.len() != clusters {
            return Err(bad("tail vectors do not match cluster count"));
        }
        for (ids, cs) in extra_ids.iter().zip(&extra_codes) {
            if cs.len() != code_len(ids.len())? {
                return Err(bad("tail code buffer does not match tail id count"));
            }
        }
        if deleted.len() != next_id as usize {
            return Err(bad("tombstone bitmap does not match id space"));
        }
        // Ids must be unique, in range, and id-sorted within each segment.
        let mut seen = vec![false; next_id as usize];
        let mut live = 0usize;
        let mut stored_tombstones = 0usize;
        {
            let all_segments = (0..clusters).flat_map(|c| {
                let (start, end) = (offsets[c] as usize, offsets[c + 1] as usize);
                [&point_ids[start..end], extra_ids[c].as_slice()]
            });
            for segment in all_segments {
                if segment.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(bad("segment ids are not strictly increasing"));
                }
                for &id in segment {
                    let slot = seen
                        .get_mut(id as usize)
                        .ok_or_else(|| bad("stored id exceeds id space"))?;
                    if *slot {
                        return Err(bad("duplicate stored id"));
                    }
                    *slot = true;
                    if deleted[id as usize] {
                        stored_tombstones += 1;
                    } else {
                        live += 1;
                    }
                }
            }
        }
        let blocks = build_blocks(&offsets, &codes, num_subspaces);
        Ok(Self {
            offsets,
            point_ids: point_ids.into(),
            codes: codes.into(),
            num_subspaces,
            blocks,
            extra_ids,
            extra_codes,
            deleted,
            next_id,
            live,
            stored_tombstones,
            residency: None,
            mapped_max_code: None,
        })
    }

    /// Ensures `cluster`'s base segment is resident and verified before a
    /// probe reads it. A no-op on the owned (RAM-resident) path; on the
    /// mapped path the first touch checks the cluster's checksum and
    /// structural invariants, faults its pages in, and may evict cold
    /// clusters to stay inside the residency budget.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] when the mapped cluster fails
    /// verification — the caller surfaces it instead of serving garbage.
    #[inline]
    pub fn touch_cluster(&self, cluster: usize) -> Result<()> {
        match &self.residency {
            Some(residency) => residency.touch(cluster),
            None => Ok(()),
        }
    }

    /// Touches (verifies + faults in) every cluster — the gate mutating
    /// operations use before reading the whole mapped base, and the
    /// warm-every-page tool of the parity tests.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] when any cluster fails verification.
    pub fn ensure_resident_all(&self) -> Result<()> {
        for c in 0..self.num_clusters() {
            self.touch_cluster(c)?;
        }
        Ok(())
    }

    /// `true` when the base is served zero-copy from a mapped snapshot.
    pub fn is_mapped(&self) -> bool {
        self.residency.is_some()
    }

    /// Residency counters of the mapped path (`None` when owned).
    pub fn residency_stats(&self) -> Option<ResidencyStats> {
        self.residency.as_ref().map(|r| r.stats())
    }

    /// The block-interleaved view of `cluster`'s base segment, consumed by
    /// the fast-scan prune pass. Tail (appended) records are not covered —
    /// scan them through [`IvfListCodes::cluster_segments`].
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of bounds.
    #[inline]
    pub fn cluster_blocks(&self, cluster: usize) -> &BlockCodes {
        &self.blocks[cluster]
    }
}

/// One cluster's base-segment codes transposed into 32-point blocks for the
/// fast-scan kernel.
///
/// Block `b` covers base points `b * 32 .. min((b + 1) * 32, n)`. Within a
/// block the data is subspace-major: row `s` holds the subspace-`s` codes of
/// all 32 lanes, so one quantised LUT row is reused across 32 contiguous
/// candidates. Rows are 32 bytes — or 16 when every code of the cluster
/// fits in a nibble (`< 16`), in which case lane `l < 16` lives in the low
/// nibble of byte `l` and lane `l ≥ 16` in the high nibble of byte
/// `l − 16` (the shape one AVX2 `vpshufb` consumes directly).
///
/// Tail blocks shorter than 32 points are zero-padded; the padded lanes
/// produce garbage sums that callers ignore (`block_len` bounds the loop)
/// and that only ever make early-abandon checks more conservative.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockCodes {
    /// `num_blocks × num_subspaces` rows of `row_bytes` each — owned when
    /// built in RAM, or a zero-copy view into a mapped snapshot.
    data: ByteStore,
    num_points: usize,
    num_subspaces: usize,
    nibble: bool,
}

impl BlockCodes {
    /// Transposes `num_points` point-major codes into block-interleaved
    /// rows, nibble-packing when every code is `< 16`.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != num_points * num_subspaces` (internal
    /// misuse — callers pass exact base-segment slices).
    pub fn build(codes: &[u8], num_points: usize, num_subspaces: usize) -> Self {
        assert_eq!(codes.len(), num_points * num_subspaces);
        let nibble = codes.iter().all(|&c| c < 16);
        let rb = row_bytes(nibble);
        let num_blocks = num_points.div_ceil(BLOCK_LANES);
        let mut data = vec![0u8; num_blocks * num_subspaces * rb];
        for i in 0..num_points {
            let (b, lane) = (i / BLOCK_LANES, i % BLOCK_LANES);
            for s in 0..num_subspaces {
                let c = codes[i * num_subspaces + s];
                let at = (b * num_subspaces + s) * rb;
                if nibble {
                    data[at + (lane & 15)] |= if lane < 16 { c } else { c << 4 };
                } else {
                    data[at + lane] = c;
                }
            }
        }
        Self {
            data: data.into(),
            num_points,
            num_subspaces,
            nibble,
        }
    }

    /// The exact interleaved-data length `build` produces for this shape —
    /// what a mapped snapshot's claimed block region is validated against.
    pub(crate) fn expected_data_len(
        num_points: usize,
        num_subspaces: usize,
        nibble: bool,
    ) -> usize {
        num_points.div_ceil(BLOCK_LANES) * num_subspaces * row_bytes(nibble)
    }

    /// Wraps a mapped region as the block view of a cluster (zero-copy).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] when the region length does not match
    /// the shape — the kernels index rows by shape, so a mismatch would be
    /// out-of-bounds later.
    pub(crate) fn from_mapped(
        data: MappedBytes,
        num_points: usize,
        num_subspaces: usize,
        nibble: bool,
    ) -> Result<Self> {
        let want = Self::expected_data_len(num_points, num_subspaces, nibble);
        if data.len() != want {
            return Err(Error::corrupted(format!(
                "block view of {} bytes does not match its shape ({num_points} pts × {num_subspaces} subspaces, want {want})",
                data.len()
            )));
        }
        Ok(Self {
            data: ByteStore::Mapped(data),
            num_points,
            num_subspaces,
            nibble,
        })
    }

    /// Number of points covered (the cluster's base-segment length).
    #[inline]
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Number of 32-lane blocks (`⌈num_points / 32⌉`).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.num_points.div_ceil(BLOCK_LANES)
    }

    /// Number of subspaces per code.
    #[inline]
    pub fn num_subspaces(&self) -> usize {
        self.num_subspaces
    }

    /// `true` when rows are nibble-packed (every code `< 16`).
    #[inline]
    pub fn nibble_packed(&self) -> bool {
        self.nibble
    }

    /// Number of valid lanes in block `b` (32 except for the tail block).
    #[inline]
    pub fn block_len(&self, b: usize) -> usize {
        (self.num_points - b * BLOCK_LANES).min(BLOCK_LANES)
    }

    /// The `num_subspaces` interleaved rows of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= num_blocks()`.
    #[inline]
    pub fn block_rows(&self, b: usize) -> &[u8] {
        let rb = row_bytes(self.nibble);
        let stride = self.num_subspaces * rb;
        &self.data[b * stride..(b + 1) * stride]
    }

    /// Deinterleaves the subspace-`s` code of base point `i` (tests and
    /// diagnostics; the hot path hands whole rows to the kernel).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_points()` or `s >= num_subspaces()`.
    #[inline]
    pub fn code_at(&self, i: usize, s: usize) -> u8 {
        assert!(i < self.num_points && s < self.num_subspaces);
        let (b, lane) = (i / BLOCK_LANES, i % BLOCK_LANES);
        let rb = row_bytes(self.nibble);
        let row = &self.block_rows(b)[s * rb..(s + 1) * rb];
        block_lane_code(row, self.nibble, lane)
    }

    /// Memory footprint of the interleaved data in bytes.
    #[inline]
    pub fn data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Raw interleaved bytes — what the v3 snapshot writer persists and
    /// what residency verification compares against a fresh rebuild.
    #[inline]
    pub(crate) fn data(&self) -> &[u8] {
        &self.data
    }

    /// Drives the two-phase prune scan over every block of this view: the
    /// quantised kernel pass (with early abandon), then the per-lane bound
    /// check, invoking `survivor` with the base-segment index of every lane
    /// that cannot be pruned. `survivor` returns the caller's updated top-k
    /// worst score, so the prune threshold tightens block by block; pass the
    /// current worst as `worst` to seed it. Returns
    /// `(pruned_points, pruned_blocks)`.
    ///
    /// This is the single-query form of [`BlockCodes::prune_scan_group`] (a
    /// one-lane group) — the JUNO engine's and the IVFPQ baseline's
    /// per-query paths both call it, so cross-engine comparisons measure the
    /// same pruning behaviour.
    pub fn prune_scan(
        &self,
        qlut: &QuantizedLut,
        lane_sums: &mut [u16; BLOCK_LANES],
        worst: Option<f32>,
        mut survivor: impl FnMut(usize) -> Option<f32>,
    ) -> (usize, usize) {
        let mut lanes = [GroupLane::new(qlut, worst)];
        self.prune_scan_group(&mut lanes, |_, i| survivor(i));
        *lane_sums = lanes[0].sums;
        (lanes[0].pruned_points, lanes[0].pruned_blocks)
    }

    /// The **multi-query** (cluster-major) prune scan: holds one quantised
    /// LUT per lane — a small register-tile of queries probing this cluster —
    /// against each 32-point block before moving on, so the block's code rows
    /// are streamed through the cache **once per query group** instead of
    /// once per query. The next block is software-prefetched while the
    /// current one is accumulated.
    ///
    /// Per lane the semantics are *exactly* those of
    /// [`BlockCodes::prune_scan`]: the prune threshold is re-derived from the
    /// lane's evolving `worst` before every block, whole blocks abandon via
    /// the suffix-min check, surviving candidates are handed to
    /// `survivor(lane_index, point_index)` (which returns the lane's updated
    /// top-k worst), and a lane whose threshold is [`NEVER_PRUNE`] skips the
    /// kernel and passes every candidate through — so each query's results
    /// and per-lane prune counters are bit-identical to scanning the cluster
    /// for that query alone with the same entry `worst`.
    pub fn prune_scan_group(
        &self,
        lanes: &mut [GroupLane<'_>],
        mut survivor: impl FnMut(usize, usize) -> Option<f32>,
    ) {
        for b in 0..self.num_blocks() {
            let rows = self.block_rows(b);
            if b + 1 < self.num_blocks() {
                prefetch_rows(self.block_rows(b + 1));
            }
            let len = self.block_len(b);
            for (li, lane) in lanes.iter_mut().enumerate() {
                let threshold = lane.qlut.prune_threshold(lane.worst);
                if threshold != NEVER_PRUNE
                    && scan_block_with_abandon(
                        lane.qlut,
                        rows,
                        self.nibble,
                        threshold,
                        &mut lane.sums,
                    )
                {
                    lane.pruned_blocks += 1;
                    lane.pruned_points += len;
                    continue;
                }
                // With no threshold the kernel did not run and the lane sums
                // are stale; the guard below keeps them unread in that case.
                for (l, &sum) in lane.sums.iter().enumerate().take(len) {
                    if threshold != NEVER_PRUNE && sum as u32 >= threshold {
                        lane.pruned_points += 1;
                        continue;
                    }
                    lane.worst = survivor(li, b * BLOCK_LANES + l);
                }
            }
        }
    }
}

/// One query's lane in a multi-query prune scan
/// ([`BlockCodes::prune_scan_group`]): its quantised LUT for this cluster's
/// slot, its evolving top-k worst score, the kernel lane sums of the current
/// block, and the pruning work observed on the query's behalf.
#[derive(Debug, Clone, Copy)]
pub struct GroupLane<'a> {
    /// The query's quantised prune LUT for this cluster.
    pub qlut: &'a QuantizedLut,
    /// The query's current top-k worst score (`None` = top-k not full, no
    /// pruning possible yet); updated from the `survivor` callback.
    pub worst: Option<f32>,
    /// Lane sums of the most recent non-abandoned block (scratch).
    pub sums: [u16; BLOCK_LANES],
    /// Candidates settled by the quantised bound without an exact evaluation.
    pub pruned_points: usize,
    /// Whole blocks abandoned mid-accumulation by the suffix-min check.
    pub pruned_blocks: usize,
}

impl<'a> GroupLane<'a> {
    /// Creates a lane seeded with the query's current top-k worst score.
    pub fn new(qlut: &'a QuantizedLut, worst: Option<f32>) -> Self {
        Self {
            qlut,
            worst,
            sums: [0; BLOCK_LANES],
            pruned_points: 0,
            pruned_blocks: 0,
        }
    }
}

/// Builds the per-cluster block views of a CSR base (`offsets` over
/// point-major `codes` with `s` subspaces).
fn build_blocks(offsets: &[u32], codes: &[u8], s: usize) -> Vec<BlockCodes> {
    (0..offsets.len().saturating_sub(1))
        .map(|c| {
            let (a, b) = (offsets[c] as usize, offsets[c + 1] as usize);
            BlockCodes::build(&codes[a * s..b * s], b - a, s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pq::{PqTrainConfig, ProductQuantizer};
    use juno_common::rng::{normal, seeded};
    use juno_common::vector::VectorSet;

    fn trained(n: usize) -> (Vec<usize>, EncodedPoints) {
        let mut rng = seeded(17);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..8).map(|_| normal(&mut rng, 0.0, 1.0)).collect())
            .collect();
        let data = VectorSet::from_rows(rows).unwrap();
        let pq = ProductQuantizer::train(
            &data,
            &PqTrainConfig {
                num_subspaces: 4,
                entries_per_subspace: 8,
                kmeans_iters: 6,
                seed: 2,
                train_subsample: None,
            },
        )
        .unwrap();
        let codes = pq.encode(&data).unwrap();
        let labels: Vec<usize> = (0..n).map(|i| (i * 7) % 5).collect();
        (labels, codes)
    }

    /// Collects the live records of one cluster through the segment API.
    fn live_members(grouped: &IvfListCodes, cluster: usize) -> Vec<(u32, Vec<u8>)> {
        let s = grouped.num_subspaces();
        let mut out = Vec::new();
        for (ids, codes) in grouped.cluster_segments(cluster) {
            for (i, &id) in ids.iter().enumerate() {
                if !grouped.is_deleted(id) {
                    out.push((id, codes[i * s..(i + 1) * s].to_vec()));
                }
            }
        }
        out
    }

    #[test]
    fn every_point_lands_in_its_cluster_with_its_code() {
        let (labels, codes) = trained(200);
        let grouped = IvfListCodes::build(&labels, &codes, 5).unwrap();
        assert_eq!(grouped.num_clusters(), 5);
        assert_eq!(grouped.num_subspaces(), 4);
        assert_eq!(grouped.len(), 200);
        assert!(!grouped.is_empty());
        let mut seen = 0usize;
        for c in 0..5 {
            let ids = grouped.cluster_ids(c);
            let block = grouped.cluster_codes(c);
            assert_eq!(block.len(), ids.len() * 4);
            for (i, &pid) in ids.iter().enumerate() {
                assert_eq!(labels[pid as usize], c);
                assert_eq!(&block[i * 4..(i + 1) * 4], codes.code(pid as usize));
                seen += 1;
            }
        }
        assert_eq!(seen, 200);
    }

    #[test]
    fn members_keep_dataset_order_within_cluster() {
        let (labels, codes) = trained(120);
        let grouped = IvfListCodes::build(&labels, &codes, 5).unwrap();
        for c in 0..5 {
            let ids = grouped.cluster_ids(c);
            assert!(ids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (labels, codes) = trained(50);
        assert!(IvfListCodes::build(&labels[..10], &codes, 5).is_err());
        assert!(IvfListCodes::build(&labels, &codes, 0).is_err());
        // Label out of bounds for the declared cluster count.
        assert!(IvfListCodes::build(&labels, &codes, 3).is_err());
        let grouped = IvfListCodes::build(&labels, &codes, 5).unwrap();
        // Point-major base bytes plus the derived block view.
        assert!(grouped.code_bytes() >= 50 * 4);
    }

    #[test]
    fn append_assigns_fresh_ids_and_scans_through_segments() {
        let (labels, codes) = trained(60);
        let mut grouped = IvfListCodes::build(&labels, &codes, 5).unwrap();
        assert_eq!(grouped.next_id(), 60);
        let id_a = grouped.append(2, &[1, 2, 3, 4]).unwrap();
        let id_b = grouped.append(2, &[5, 6, 7, 8]).unwrap();
        assert_eq!((id_a, id_b), (60, 61));
        assert_eq!(grouped.len(), 62);
        let members = live_members(&grouped, 2);
        assert!(members.contains(&(60, vec![1, 2, 3, 4])));
        assert!(members.contains(&(61, vec![5, 6, 7, 8])));
        // The tail shows up as a second contiguous segment.
        assert_eq!(grouped.cluster_segments(2).count(), 2);
        // Invalid appends are rejected.
        assert!(grouped.append(9, &[0; 4]).is_err());
        assert!(grouped.append(0, &[0; 3]).is_err());
    }

    #[test]
    fn remove_is_idempotent_and_skippable() {
        let (labels, codes) = trained(40);
        let mut grouped = IvfListCodes::build(&labels, &codes, 5).unwrap();
        assert!(grouped.remove(7));
        assert!(!grouped.remove(7), "second removal must be a no-op");
        assert!(!grouped.remove(999), "unknown ids are not removable");
        assert_eq!(grouped.len(), 39);
        assert_eq!(grouped.stored_tombstones(), 1);
        assert!(grouped.is_deleted(7));
        assert!(!grouped.is_deleted(8));
        let c = labels[7];
        assert!(live_members(&grouped, c).iter().all(|(id, _)| *id != 7));
    }

    #[test]
    fn compaction_restores_contiguous_sorted_layout() {
        let (labels, codes) = trained(100);
        let mut grouped = IvfListCodes::build(&labels, &codes, 5).unwrap();
        // Mix of deletions and appends.
        for id in [3u32, 17, 44, 90] {
            assert!(grouped.remove(id));
        }
        let mut appended = Vec::new();
        for c in 0..5 {
            appended.push((c, grouped.append(c, &[c as u8; 4]).unwrap()));
        }
        assert!(grouped.remove(appended[1].1), "tail records are removable");
        let before: Vec<Vec<(u32, Vec<u8>)>> = (0..5).map(|c| live_members(&grouped, c)).collect();
        let live_before = grouped.len();

        grouped.compact();

        assert_eq!(grouped.len(), live_before);
        assert_eq!(grouped.stored_tombstones(), 0);
        for (c, want) in before.iter().enumerate() {
            // Everything is back in the base block, id-sorted, one segment.
            assert_eq!(grouped.cluster_segments(c).count(), 1);
            let ids = grouped.cluster_ids(c);
            assert!(ids.windows(2).all(|w| w[0] < w[1]));
            let mut want = want.clone();
            want.sort_by_key(|(id, _)| *id);
            assert_eq!(live_members(&grouped, c), want, "cluster {c}");
        }
        // Ids are still never reused after compaction.
        let next = grouped.next_id();
        assert_eq!(grouped.append(0, &[9; 4]).unwrap(), next);
        assert!(!grouped.remove(appended[1].1), "dead ids stay dead");
    }

    #[test]
    fn block_view_matches_point_major_codes_and_survives_compaction() {
        let (labels, codes) = trained(173);
        let mut grouped = IvfListCodes::build(&labels, &codes, 5).unwrap();
        let check = |g: &IvfListCodes| {
            for c in 0..5 {
                let blocks = g.cluster_blocks(c);
                let base = g.cluster_codes(c);
                let n = g.cluster_ids(c).len();
                assert_eq!(blocks.num_points(), n, "cluster {c}");
                assert_eq!(blocks.num_blocks(), n.div_ceil(32));
                for i in 0..n {
                    for s in 0..4 {
                        assert_eq!(blocks.code_at(i, s), base[i * 4 + s], "cluster {c} pt {i}");
                    }
                }
                // E = 8 here, so every cluster nibble-packs.
                assert!(blocks.nibble_packed());
                if blocks.num_blocks() > 0 {
                    let tail = blocks.num_blocks() - 1;
                    assert_eq!(blocks.block_len(tail), n - tail * 32);
                    assert_eq!(blocks.block_rows(tail).len(), 4 * 16);
                }
            }
        };
        check(&grouped);
        // Mutate + compact: the block view must track the new base.
        for id in [1u32, 40, 99] {
            assert!(grouped.remove(id));
        }
        grouped.append(3, &[7, 7, 7, 7]).unwrap();
        grouped.compact();
        check(&grouped);
    }

    #[test]
    fn wide_codes_use_plain_u8_rows() {
        // A cluster containing a code ≥ 16 must not nibble-pack.
        let codes: Vec<u8> = (0..40u8).map(|i| i % 20).collect();
        let blocks = BlockCodes::build(&codes, 10, 4);
        assert!(!blocks.nibble_packed());
        assert_eq!(blocks.block_rows(0).len(), 4 * 32);
        for i in 0..10 {
            for s in 0..4 {
                assert_eq!(blocks.code_at(i, s), codes[i * 4 + s]);
            }
        }
    }

    #[test]
    fn group_scan_matches_per_query_scan_bit_exactly() {
        use juno_common::rng::Rng;
        let mut rng = seeded(0x6709);
        for case in 0..12u64 {
            let subspaces = rng.gen_range(2..10usize);
            let entries = [8usize, 16, 40][case as usize % 3];
            let n = rng.gen_range(1..140usize);
            let codes: Vec<u8> = (0..n * subspaces)
                .map(|_| rng.gen_range(0..entries as u32) as u8)
                .collect();
            let blocks = BlockCodes::build(&codes, n, subspaces);

            // A few queries with distinct quantised LUTs and distinct
            // (sometimes absent) prune bars.
            let tile = rng.gen_range(1..6usize);
            let qluts: Vec<QuantizedLut> = (0..tile)
                .map(|_| {
                    let svals: Vec<f32> = (0..subspaces * entries)
                        .map(|_| rng.gen_range(0.0f32..8.0))
                        .collect();
                    let mut q = QuantizedLut::new();
                    q.build(&svals, subspaces, entries, 0.0);
                    q
                })
                .collect();
            let worsts: Vec<Option<f32>> = (0..tile)
                .map(|qi| {
                    if qi % 3 == 2 {
                        None
                    } else {
                        Some(rng.gen_range(0.0f32..8.0) * subspaces as f32)
                    }
                })
                .collect();
            // The survivor callback tightens the worst deterministically as
            // a function of the call count, so both drivers see identical
            // threshold evolution per query.
            let evolve =
                |worst: Option<f32>, seen: usize| worst.map(|w| w - 0.01 * seen.min(40) as f32);

            // Reference: each query scanned alone.
            let mut want: Vec<(Vec<usize>, usize, usize)> = Vec::new();
            for qi in 0..tile {
                let mut sums = [0u16; BLOCK_LANES];
                let mut survivors = Vec::new();
                let (pp, pb) = blocks.prune_scan(&qluts[qi], &mut sums, worsts[qi], |i| {
                    survivors.push(i);
                    evolve(worsts[qi], survivors.len())
                });
                want.push((survivors, pp, pb));
            }

            // The multi-query group scan over the same cluster.
            let mut lanes: Vec<GroupLane> = (0..tile)
                .map(|qi| GroupLane::new(&qluts[qi], worsts[qi]))
                .collect();
            let mut got: Vec<Vec<usize>> = vec![Vec::new(); tile];
            blocks.prune_scan_group(&mut lanes, |li, i| {
                got[li].push(i);
                evolve(worsts[li], got[li].len())
            });
            for qi in 0..tile {
                assert_eq!(got[qi], want[qi].0, "case {case} query {qi} survivors");
                assert_eq!(
                    (lanes[qi].pruned_points, lanes[qi].pruned_blocks),
                    (want[qi].1, want[qi].2),
                    "case {case} query {qi} prune counters"
                );
            }
        }
    }

    #[test]
    fn parts_round_trip_preserves_everything() {
        let (labels, codes) = trained(80);
        let mut grouped = IvfListCodes::build(&labels, &codes, 5).unwrap();
        grouped.remove(5);
        grouped.append(1, &[4, 3, 2, 1]).unwrap();
        let parts = grouped.to_parts();
        let rebuilt = IvfListCodes::from_parts(parts).unwrap();
        assert_eq!(rebuilt, grouped);
    }

    #[test]
    fn corrupted_parts_are_rejected() {
        let (labels, codes) = trained(30);
        let grouped = IvfListCodes::build(&labels, &codes, 5).unwrap();
        let good = grouped.to_parts();

        let mut p = good.clone();
        p.offsets[1] = 99; // non-monotone / out of range
        assert!(IvfListCodes::from_parts(p).is_err());

        let mut p = good.clone();
        p.codes.pop(); // shape mismatch
        assert!(IvfListCodes::from_parts(p).is_err());

        let mut p = good.clone();
        p.deleted.pop(); // bitmap mismatch
        assert!(IvfListCodes::from_parts(p).is_err());

        let mut p = good.clone();
        p.point_ids[0] = p.point_ids[1]; // duplicate id
        assert!(IvfListCodes::from_parts(p).is_err());

        let mut p = good.clone();
        p.extra_ids.pop(); // cluster count mismatch
        assert!(IvfListCodes::from_parts(p).is_err());

        let mut p = good.clone();
        p.num_subspaces = 0;
        assert!(IvfListCodes::from_parts(p).is_err());

        // An absurd subspace count must fail cleanly (no multiply overflow).
        let mut p = good;
        p.num_subspaces = usize::MAX / 2;
        assert!(IvfListCodes::from_parts(p).is_err());
    }
}
