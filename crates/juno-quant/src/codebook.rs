//! Per-subspace codebooks.
//!
//! A [`Codebook`] is the set of `E` codebook entries (second-level cluster
//! centroids) of one `M`-dimensional subspace. The product quantiser owns one
//! codebook per subspace; the JUNO engine additionally turns each codebook
//! into a set of spheres in the RT scene.

use juno_common::error::{Error, Result};
use juno_common::metric::l2_squared;
use juno_common::vector::VectorSet;

/// The codebook of a single PQ subspace.
#[derive(Debug, Clone, PartialEq)]
pub struct Codebook {
    /// Which subspace this codebook belongs to (0-based).
    subspace: usize,
    /// Entry centroids: `E` rows of dimension `M`.
    entries: VectorSet,
}

impl Codebook {
    /// Creates a codebook from trained entry centroids.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyInput`] when `entries` is empty.
    pub fn new(subspace: usize, entries: VectorSet) -> Result<Self> {
        if entries.is_empty() {
            return Err(Error::empty_input("codebook requires at least one entry"));
        }
        Ok(Self { subspace, entries })
    }

    /// The subspace index this codebook encodes.
    pub fn subspace(&self) -> usize {
        self.subspace
    }

    /// Number of entries (`E`).
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Dimension of each entry (`M`).
    pub fn sub_dim(&self) -> usize {
        self.entries.dim()
    }

    /// Borrow of the entry centroids.
    pub fn entries(&self) -> &VectorSet {
        &self.entries
    }

    /// Borrow of one entry centroid.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] for an invalid entry id.
    pub fn entry(&self, e: usize) -> Result<&[f32]> {
        self.entries.get(e).ok_or_else(|| Error::IndexOutOfBounds {
            what: "codebook entry".into(),
            index: e,
            len: self.entries.len(),
        })
    }

    /// Encodes one residual projection: the id of the nearest entry.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the projection dimension is
    /// not `M`.
    pub fn encode(&self, projection: &[f32]) -> Result<u32> {
        if projection.len() != self.sub_dim() {
            return Err(Error::DimensionMismatch {
                expected: self.sub_dim(),
                actual: projection.len(),
            });
        }
        let mut best = 0u32;
        let mut best_d = f32::INFINITY;
        for (e, row) in self.entries.iter().enumerate() {
            let d = l2_squared(projection, row);
            if d < best_d {
                best_d = d;
                best = e as u32;
            }
        }
        Ok(best)
    }

    /// Squared distance of a query projection to every entry — one row of the
    /// dense L2-LUT (the computation JUNO's selective construction avoids).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the projection dimension is
    /// not `M`.
    pub fn dense_lut_row(&self, projection: &[f32]) -> Result<Vec<f32>> {
        if projection.len() != self.sub_dim() {
            return Err(Error::DimensionMismatch {
                expected: self.sub_dim(),
                actual: projection.len(),
            });
        }
        Ok(self
            .entries
            .iter()
            .map(|row| l2_squared(projection, row))
            .collect())
    }

    /// [`Codebook::dense_lut_row`] into a caller-provided buffer of exactly
    /// `len()` slots — the same values (same arithmetic, bit-identical), no
    /// allocation. Used by the grouped batch scan's reusable LUT arena.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the projection dimension is
    /// not `M` or `out` does not hold exactly one slot per entry.
    pub fn dense_lut_row_into(&self, projection: &[f32], out: &mut [f32]) -> Result<()> {
        if projection.len() != self.sub_dim() {
            return Err(Error::DimensionMismatch {
                expected: self.sub_dim(),
                actual: projection.len(),
            });
        }
        if out.len() != self.num_entries() {
            return Err(Error::DimensionMismatch {
                expected: self.num_entries(),
                actual: out.len(),
            });
        }
        for (o, row) in out.iter_mut().zip(self.entries.iter()) {
            *o = l2_squared(projection, row);
        }
        Ok(())
    }

    /// Entry ids sorted by distance to a query projection (closest first).
    ///
    /// Used by the sparsity / locality analysis (Figs. 3(b), 4, 5): the paper
    /// sorts entries by their distance to the query projection before
    /// plotting usage heat-maps and coverage CDFs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the projection dimension is
    /// not `M`.
    pub fn entries_by_distance(&self, projection: &[f32]) -> Result<Vec<(u32, f32)>> {
        let lut = self.dense_lut_row(projection)?;
        let mut order: Vec<(u32, f32)> = lut
            .into_iter()
            .enumerate()
            .map(|(e, d)| (e as u32, d))
            .collect();
        order.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_codebook() -> Codebook {
        let entries = VectorSet::from_rows(vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
        ])
        .unwrap();
        Codebook::new(3, entries).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let cb = toy_codebook();
        assert_eq!(cb.subspace(), 3);
        assert_eq!(cb.num_entries(), 4);
        assert_eq!(cb.sub_dim(), 2);
        assert_eq!(cb.entry(3).unwrap(), &[5.0, 5.0]);
        assert!(cb.entry(4).is_err());
    }

    #[test]
    fn encode_picks_nearest_entry() {
        let cb = toy_codebook();
        assert_eq!(cb.encode(&[0.1, 0.1]).unwrap(), 0);
        assert_eq!(cb.encode(&[0.9, 0.1]).unwrap(), 1);
        assert_eq!(cb.encode(&[4.0, 4.5]).unwrap(), 3);
        assert!(cb.encode(&[1.0]).is_err());
    }

    #[test]
    fn dense_lut_matches_scalar_distances() {
        let cb = toy_codebook();
        let q = [0.5, 0.5];
        let lut = cb.dense_lut_row(&q).unwrap();
        assert_eq!(lut.len(), 4);
        assert!((lut[0] - 0.5).abs() < 1e-6);
        assert!((lut[3] - (4.5 * 4.5 * 2.0)).abs() < 1e-4);
    }

    #[test]
    fn entries_by_distance_is_sorted() {
        let cb = toy_codebook();
        let order = cb.entries_by_distance(&[0.9, 0.0]).unwrap();
        assert_eq!(order[0].0, 1);
        for w in order.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn empty_codebook_rejected() {
        let empty = VectorSet::new(2).unwrap();
        assert!(Codebook::new(0, empty).is_err());
    }
}
