//! Quantisation substrate for the JUNO reproduction.
//!
//! This crate implements the offline machinery behind the IVFPQ pipeline the
//! paper analyses (Section 2.1) and builds upon (Sections 4–5):
//!
//! * [`kmeans`] — Lloyd's algorithm with k-means++ initialisation and empty
//!   cluster repair. Used for both the coarse (IVF) quantiser and the
//!   per-subspace "second" clusters that form the PQ codebook.
//! * [`codebook`] — the per-subspace entry sets (`E` entries of dimension `M`).
//! * [`pq`] — the [`ProductQuantizer`](pq::ProductQuantizer): training on
//!   residuals, encoding search points, decoding, and the *dense* L2-LUT
//!   construction used by the FAISS-style baseline.
//! * [`ivf`] — the inverted file index: coarse centroids, inverted lists, and
//!   the filtering stage (choose the `nprobs` closest clusters).
//! * [`layout`] — [`IvfListCodes`](layout::IvfListCodes), the PQ codes
//!   reordered IVF-list-contiguously so the online ADC scan streams memory
//!   sequentially.
//!
//! The JUNO engine (`juno-core`) replaces the dense L2-LUT construction with a
//! selective, RT-core mapped one, but shares everything else in this crate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codebook;
pub mod ivf;
pub mod kmeans;
pub mod layout;
pub mod mapped;
pub mod pq;
pub mod residency;

pub use codebook::Codebook;
pub use ivf::{IvfIndex, IvfTrainConfig};
pub use kmeans::{KMeans, KMeansConfig};
pub use layout::{BlockCodes, IvfListCodes};
pub use pq::{EncodedPoints, PqTrainConfig, ProductQuantizer};
pub use residency::ResidencyStats;
