//! Per-cluster residency tracking for mapped (out-of-core) indexes.
//!
//! A mapped [`IvfListCodes`](crate::layout::IvfListCodes) serves its CSR
//! base zero-copy from a snapshot file. [`ResidencySet`] tracks, per
//! cluster, whether that cluster's bytes have been **verified** (checksum +
//! structural invariants, once per mapping) and whether they are **resident**
//! (recently touched / prefaulted). A configurable budget bounds how many
//! unpinned cluster bytes stay resident: when exceeded, a clock (second
//! chance) sweep advises the kernel to drop the pages of cold clusters.
//!
//! Eviction is *advisory* (`madvise(MADV_DONTNEED)` through
//! [`Mmap::advise`]): an evicted cluster's bytes remain readable and simply
//! fault back in from the file on the next access. That makes the
//! following idiom correct even with concurrent workers: the scheduler
//! touches every cluster of a batch up front (verification + accounting,
//! the only fallible part), then hands the scan to parallel workers that
//! read mapped slices infallibly — a worker can never observe unmapped
//! memory, at worst a page fault.
//!
//! Verification is sticky: once a cluster's checksum has been verified it
//! is never re-verified, even across eviction. The snapshot file is
//! immutable while mapped (atomic-rename publication never rewrites in
//! place), so the bytes a page fault re-reads are the bytes that were
//! verified. Truncating a snapshot file that is being served is outside
//! the durability contract.

use crate::layout::BlockCodes;
use crate::mapped::fnv1a_chain;
use juno_common::error::{Error, Result};
use juno_common::mmap::{Advice, Mmap, ResidencyConfig};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Cluster flag bits (one `AtomicU8` per cluster).
const RESIDENT: u8 = 1;
/// Second-chance bit: set on every touch, cleared by the clock hand.
const REFERENCED: u8 = 2;
/// Checksum + invariants verified (sticky for the mapping's lifetime).
const VERIFIED: u8 = 4;
/// Pinned at restore time: prefaulted, never evicted, outside the budget.
const PINNED: u8 = 8;

/// Everything the verifier needs to know about one cluster's mapped bytes.
#[derive(Debug, Clone)]
pub(crate) struct ClusterMeta {
    /// Absolute `(offset, length)` of the cluster's base ids (LE u32s).
    pub ids: (usize, usize),
    /// Absolute `(offset, length)` of the cluster's point-major base codes.
    pub codes: (usize, usize),
    /// Absolute `(offset, length)` of the cluster's block-interleaved view.
    pub blocks: (usize, usize),
    /// Writer checksum over `ids ‖ codes ‖ [nibble, max_code]`.
    pub checksum: u32,
    /// Whether the block view is nibble-packed.
    pub nibble: bool,
    /// Writer-recorded maximum base code of this cluster.
    pub max_code: u8,
}

impl ClusterMeta {
    fn bytes(&self) -> usize {
        self.ids.1 + self.codes.1 + self.blocks.1
    }
}

#[derive(Debug)]
struct Clock {
    hand: usize,
    resident_bytes: usize,
}

/// A point-in-time copy of the residency counters (diagnostics / benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResidencyStats {
    /// Touches that found the cluster already resident (lock-free path).
    pub hits: u64,
    /// Touches that had to fault the cluster in (first touch or re-fault
    /// after eviction).
    pub cold_faults: u64,
    /// Clusters evicted by the clock sweep.
    pub evictions: u64,
    /// Unpinned cluster bytes currently accounted resident.
    pub resident_bytes: usize,
    /// Bytes pinned at restore time (never evicted).
    pub pinned_bytes: usize,
    /// The configured budget (`0` = unlimited).
    pub budget_bytes: usize,
}

/// Shared residency state of one mapped index (see the [module docs](self)).
#[derive(Debug)]
pub struct ResidencySet {
    map: Arc<Mmap>,
    budget_bytes: usize,
    pinned_bytes: usize,
    num_subspaces: usize,
    next_id: u32,
    clusters: Vec<ClusterMeta>,
    flags: Vec<AtomicU8>,
    clock: Mutex<Clock>,
    hits: AtomicU64,
    cold_faults: AtomicU64,
    evictions: AtomicU64,
}

impl ResidencySet {
    /// Builds the residency state for `clusters` of a mapped layout and
    /// applies the pinning policy: largest clusters first until
    /// `config.pin_bytes` is covered, prefaulted via [`Advice::WillNeed`].
    pub(crate) fn new(
        map: Arc<Mmap>,
        num_subspaces: usize,
        next_id: u32,
        clusters: Vec<ClusterMeta>,
        config: &ResidencyConfig,
    ) -> Self {
        let flags: Vec<AtomicU8> = (0..clusters.len()).map(|_| AtomicU8::new(0)).collect();
        let mut pinned_bytes = 0usize;
        if config.pin_bytes > 0 {
            let mut by_size: Vec<usize> = (0..clusters.len()).collect();
            by_size.sort_by_key(|&c| std::cmp::Reverse(clusters[c].bytes()));
            for c in by_size {
                let bytes = clusters[c].bytes();
                if bytes == 0 {
                    break; // sorted descending: everything after is empty too
                }
                if pinned_bytes + bytes > config.pin_bytes && pinned_bytes > 0 {
                    continue; // try to fill the pin budget with smaller ones
                }
                flags[c].fetch_or(PINNED, Ordering::Relaxed);
                for (off, len) in [clusters[c].ids, clusters[c].codes, clusters[c].blocks] {
                    map.advise(off, len, Advice::WillNeed);
                }
                pinned_bytes += bytes;
                if pinned_bytes >= config.pin_bytes {
                    break;
                }
            }
        }
        Self {
            map,
            budget_bytes: config.budget_bytes,
            pinned_bytes,
            num_subspaces,
            next_id,
            clusters,
            flags,
            clock: Mutex::new(Clock {
                hand: 0,
                resident_bytes: 0,
            }),
            hits: AtomicU64::new(0),
            cold_faults: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Number of clusters tracked.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Ensures `cluster` is verified and resident. Lock-free when it
    /// already is; otherwise verifies on first touch, prefaults, and
    /// evicts cold clusters while the budget is exceeded.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] when the cluster's mapped bytes fail
    /// checksum or structural verification. A failed cluster is **not**
    /// marked resident — every subsequent touch fails the same way, so a
    /// corrupt snapshot can never serve partial garbage.
    pub fn touch(&self, cluster: usize) -> Result<()> {
        let flags = &self.flags[cluster];
        let f = flags.load(Ordering::Acquire);
        if f & VERIFIED != 0 && f & (RESIDENT | PINNED) != 0 {
            if f & REFERENCED == 0 {
                flags.fetch_or(REFERENCED, Ordering::Relaxed);
            }
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        self.fault(cluster)
    }

    /// The slow path: verify (once), account, prefault, evict to budget.
    fn fault(&self, cluster: usize) -> Result<()> {
        let mut clock = self.clock.lock().unwrap_or_else(|e| e.into_inner());
        let flags = &self.flags[cluster];
        let f = flags.load(Ordering::Acquire);
        if f & VERIFIED != 0 && f & (RESIDENT | PINNED) != 0 {
            // Raced with another faulting thread that brought it in.
            flags.fetch_or(REFERENCED, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        if f & VERIFIED == 0 {
            self.verify(cluster)?;
        }
        let meta = &self.clusters[cluster];
        for (off, len) in [meta.ids, meta.codes, meta.blocks] {
            self.map.advise(off, len, Advice::WillNeed);
        }
        self.cold_faults.fetch_add(1, Ordering::Relaxed);
        if f & PINNED != 0 {
            flags.fetch_or(VERIFIED, Ordering::Release);
            return Ok(());
        }
        flags.fetch_or(VERIFIED | RESIDENT | REFERENCED, Ordering::Release);
        clock.resident_bytes += meta.bytes();
        self.evict_to_budget(&mut clock, cluster);
        Ok(())
    }

    /// Clock (second chance) sweep: clears reference bits, evicts resident
    /// unreferenced unpinned clusters until the budget is met. `keep` (the
    /// cluster just faulted in) is never evicted, so a single cluster
    /// larger than the whole budget still gets served.
    fn evict_to_budget(&self, clock: &mut Clock, keep: usize) {
        if self.budget_bytes == 0 {
            return;
        }
        let n = self.clusters.len();
        // Two full revolutions bound the sweep: the first clears reference
        // bits, the second finds victims.
        let mut steps = 2 * n;
        while clock.resident_bytes > self.budget_bytes && steps > 0 {
            steps -= 1;
            let c = clock.hand;
            clock.hand = (clock.hand + 1) % n;
            if c == keep {
                continue;
            }
            let flags = &self.flags[c];
            let f = flags.load(Ordering::Acquire);
            if f & RESIDENT == 0 || f & PINNED != 0 {
                continue;
            }
            if f & REFERENCED != 0 {
                flags.fetch_and(!REFERENCED, Ordering::Relaxed);
                continue;
            }
            flags.fetch_and(!RESIDENT, Ordering::Release);
            let meta = &self.clusters[c];
            for (off, len) in [meta.ids, meta.codes, meta.blocks] {
                self.map.advise(off, len, Advice::DontNeed);
            }
            clock.resident_bytes = clock.resident_bytes.saturating_sub(meta.bytes());
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// First-touch verification of one cluster's mapped bytes: the writer
    /// checksum over `ids ‖ codes ‖ [nibble, max_code]`, ids strictly
    /// increasing and inside the id space, codes bounded by the recorded
    /// maximum (what the restore-time LUT range check relied on), and the
    /// block view bit-identical to rebuilding it from the codes — so the
    /// fast-scan kernel only ever consumes writer-derived rows.
    fn verify(&self, cluster: usize) -> Result<()> {
        let meta = &self.clusters[cluster];
        let file = self.map.as_slice();
        let ids_bytes = &file[meta.ids.0..meta.ids.0 + meta.ids.1];
        let codes = &file[meta.codes.0..meta.codes.0 + meta.codes.1];
        let blocks = &file[meta.blocks.0..meta.blocks.0 + meta.blocks.1];
        let bad = |msg: String| Error::corrupted(format!("mapped cluster {cluster}: {msg}"));
        let sum = fnv1a_chain(&[ids_bytes, codes, &[meta.nibble as u8, meta.max_code]]);
        if sum != meta.checksum {
            return Err(bad(format!(
                "checksum mismatch (stored {:#010x}, computed {sum:#010x})",
                meta.checksum
            )));
        }
        let mut prev: Option<u32> = None;
        for chunk in ids_bytes.chunks_exact(4) {
            let id = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            if prev.is_some_and(|p| p >= id) {
                return Err(bad("base ids are not strictly increasing".into()));
            }
            if id >= self.next_id {
                return Err(bad(format!(
                    "base id {id} exceeds id space {}",
                    self.next_id
                )));
            }
            prev = Some(id);
        }
        if let Some(&worst) = codes.iter().max() {
            if worst > meta.max_code {
                return Err(bad(format!(
                    "code {worst} exceeds recorded maximum {}",
                    meta.max_code
                )));
            }
        }
        let rebuilt = BlockCodes::build(codes, meta.ids.1 / 4, self.num_subspaces);
        if rebuilt.nibble_packed() != meta.nibble || rebuilt.data() != blocks {
            return Err(bad("block-interleaved view does not match its codes".into()));
        }
        Ok(())
    }

    /// A point-in-time copy of the counters.
    pub fn stats(&self) -> ResidencyStats {
        let clock = self.clock.lock().unwrap_or_else(|e| e.into_inner());
        ResidencyStats {
            hits: self.hits.load(Ordering::Relaxed),
            cold_faults: self.cold_faults.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: clock.resident_bytes,
            pinned_bytes: self.pinned_bytes,
            budget_bytes: self.budget_bytes,
        }
    }
}
