//! Lloyd's k-means with k-means++ initialisation.
//!
//! Used twice by the IVFPQ pipeline:
//!
//! 1. the "first" clustering over all `N` search points of full dimension `D`
//!    (the IVF coarse quantiser, `C` clusters), and
//! 2. one "second" clustering per subspace over residual projections of
//!    dimension `M` (the PQ codebook, `E` entries per subspace).
//!
//! Determinism: all randomness flows through the seed in [`KMeansConfig`], so
//! repeated builds of an index produce identical centroids.

use juno_common::error::{Error, Result};
use juno_common::metric::l2_squared;
use juno_common::rng::Rng;
use juno_common::rng::{sample_indices, seeded};
use juno_common::vector::VectorSet;

/// Configuration for a k-means run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters (`C` for the coarse quantiser, `E` per subspace).
    pub n_clusters: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the relative decrease of the objective.
    pub tolerance: f64,
    /// Seed driving the k-means++ initialisation and empty-cluster repair.
    pub seed: u64,
    /// Optional cap on the number of points used for training; when the input
    /// is larger, a random subsample of this size is used (FAISS does the same
    /// for large datasets). `None` trains on everything.
    pub train_subsample: Option<usize>,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            n_clusters: 8,
            max_iters: 25,
            tolerance: 1e-4,
            seed: 0x5EED,
            train_subsample: None,
        }
    }
}

impl KMeansConfig {
    /// Convenience constructor with the given cluster count and seed.
    pub fn new(n_clusters: usize, seed: u64) -> Self {
        Self {
            n_clusters,
            seed,
            ..Self::default()
        }
    }
}

/// A trained k-means model: centroids plus the training assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    centroids: VectorSet,
    /// Assignment of the training points to centroids (same order as input).
    labels: Vec<usize>,
    /// Final value of the (mean squared) quantisation objective.
    inertia: f64,
    /// Number of Lloyd iterations executed.
    iterations: usize,
}

impl KMeans {
    /// Trains k-means on `points` according to `config`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyInput`] when `points` is empty and
    /// [`Error::InvalidConfig`] when `n_clusters` is zero or exceeds the
    /// number of points.
    pub fn train(points: &VectorSet, config: &KMeansConfig) -> Result<Self> {
        if points.is_empty() {
            return Err(Error::empty_input("k-means requires at least one point"));
        }
        if config.n_clusters == 0 {
            return Err(Error::invalid_config("n_clusters must be positive"));
        }
        if config.n_clusters > points.len() {
            return Err(Error::invalid_config(format!(
                "n_clusters {} exceeds number of points {}",
                config.n_clusters,
                points.len()
            )));
        }

        let mut rng = seeded(config.seed);

        // Optional subsampling for training; the final assignment below is
        // always computed over the full point set.
        let training: VectorSet = match config.train_subsample {
            Some(cap) if cap < points.len() && cap >= config.n_clusters => {
                let ids = sample_indices(&mut rng, points.len(), cap);
                points.select(&ids)?
            }
            _ => points.clone(),
        };

        let mut centroids = plus_plus_init(&training, config.n_clusters, &mut rng);
        let mut labels = vec![0usize; training.len()];
        let mut inertia = f64::INFINITY;
        let mut iterations = 0usize;

        for iter in 0..config.max_iters.max(1) {
            iterations = iter + 1;
            // Assignment step.
            let new_inertia = assign(&training, &centroids, &mut labels);
            // Update step.
            update_centroids(&training, &labels, &mut centroids, &mut rng);
            let improved = inertia.is_infinite()
                || (inertia - new_inertia) > config.tolerance * inertia.abs().max(1e-12);
            inertia = new_inertia;
            if !improved {
                break;
            }
        }

        // Final assignment over the full input (also covers the subsampled
        // case where `training` differs from `points`).
        let mut full_labels = vec![0usize; points.len()];
        let final_inertia = assign(points, &centroids, &mut full_labels);

        Ok(Self {
            centroids,
            labels: full_labels,
            inertia: final_inertia,
            iterations,
        })
    }

    /// The trained centroids (one row per cluster).
    pub fn centroids(&self) -> &VectorSet {
        &self.centroids
    }

    /// Consumes the model and returns its centroids.
    pub fn into_centroids(self) -> VectorSet {
        self.centroids
    }

    /// Assignment of the training points (cluster id per point).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Mean squared distance of points to their assigned centroid.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Number of Lloyd iterations performed before convergence / cut-off.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.centroids.len()
    }

    /// Assigns a single vector to its nearest centroid, returning
    /// `(cluster id, squared distance)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the vector has the wrong
    /// dimension.
    pub fn assign_one(&self, v: &[f32]) -> Result<(usize, f32)> {
        if v.len() != self.centroids.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.centroids.dim(),
                actual: v.len(),
            });
        }
        Ok(nearest_centroid(v, &self.centroids))
    }
}

/// k-means++ seeding: the first centroid is uniform, each further centroid is
/// sampled proportionally to its squared distance from the nearest chosen one.
fn plus_plus_init<R: Rng>(points: &VectorSet, k: usize, rng: &mut R) -> VectorSet {
    let n = points.len();
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    let first = rng.gen_range(0..n);
    chosen.push(first);

    // Squared distance of each point to the nearest chosen centroid.
    let mut dist: Vec<f32> = points
        .iter()
        .map(|p| l2_squared(p, points.row(first)))
        .collect();

    while chosen.len() < k {
        let total: f64 = dist.iter().map(|&d| d as f64).sum();
        let next = if total <= f64::EPSILON {
            // All remaining points coincide with chosen centroids; pick any
            // unchosen index to keep the centroid count correct.
            (0..n).find(|i| !chosen.contains(i)).unwrap_or(0)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &d) in dist.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        chosen.push(next);
        let new_c = points.row(next);
        for (i, p) in points.iter().enumerate() {
            let d = l2_squared(p, new_c);
            if d < dist[i] {
                dist[i] = d;
            }
        }
    }

    points
        .select(&chosen)
        .expect("chosen indices are in bounds by construction")
}

/// Finds the nearest centroid of `v`, returning `(index, squared distance)`.
fn nearest_centroid(v: &[f32], centroids: &VectorSet) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (c, row) in centroids.iter().enumerate() {
        let d = l2_squared(v, row);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Assignment step. Returns the mean squared distance (the objective).
/// Parallelised over points with scoped threads.
fn assign(points: &VectorSet, centroids: &VectorSet, labels: &mut [usize]) -> f64 {
    let n = points.len();
    if n == 0 {
        return 0.0;
    }
    let n_threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
        .min(n)
        .max(1);
    let chunk = n.div_ceil(n_threads);
    let mut partial = vec![0.0f64; n_threads];
    std::thread::scope(|scope| {
        let mut rest: &mut [usize] = labels;
        let mut handles = Vec::new();
        let mut start = 0usize;
        for slot in partial.iter_mut() {
            if start >= n {
                break;
            }
            let take = chunk.min(n - start);
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let begin = start;
            handles.push(scope.spawn(move || {
                let mut local = 0.0f64;
                for (i, lab) in head.iter_mut().enumerate() {
                    let (c, d) = nearest_centroid(points.row(begin + i), centroids);
                    *lab = c;
                    local += d as f64;
                }
                *slot = local;
            }));
            start += take;
        }
        for h in handles {
            h.join().expect("k-means assignment worker panicked");
        }
    });
    partial.iter().sum::<f64>() / n as f64
}

/// Update step: recompute each centroid as the mean of its assigned points.
/// Empty clusters are re-seeded with a random point (empty-cluster repair).
fn update_centroids<R: Rng>(
    points: &VectorSet,
    labels: &[usize],
    centroids: &mut VectorSet,
    rng: &mut R,
) {
    let dim = points.dim();
    let k = centroids.len();
    let mut sums = vec![0.0f64; k * dim];
    let mut counts = vec![0usize; k];
    for (i, p) in points.iter().enumerate() {
        let c = labels[i];
        counts[c] += 1;
        let sum = &mut sums[c * dim..(c + 1) * dim];
        for (s, &x) in sum.iter_mut().zip(p.iter()) {
            *s += x as f64;
        }
    }
    for c in 0..k {
        let row = centroids.row_mut(c);
        if counts[c] == 0 {
            // Empty-cluster repair: move the centroid onto a random point so
            // it can attract members in the next iteration.
            let idx = rng.gen_range(0..points.len());
            row.copy_from_slice(points.row(idx));
        } else {
            let inv = 1.0 / counts[c] as f64;
            let sum = &sums[c * dim..(c + 1) * dim];
            for (r, &s) in row.iter_mut().zip(sum.iter()) {
                *r = (s * inv) as f32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juno_common::rng::normal;

    /// Three well-separated Gaussian blobs in 2-D.
    fn blobs(n_per: usize, seed: u64) -> VectorSet {
        let mut rng = seeded(seed);
        let centers = [[0.0f32, 0.0], [10.0, 10.0], [-10.0, 8.0]];
        let mut rows = Vec::new();
        for c in centers {
            for _ in 0..n_per {
                rows.push(vec![
                    normal(&mut rng, c[0], 0.5),
                    normal(&mut rng, c[1], 0.5),
                ]);
            }
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn recovers_separated_blobs() {
        let points = blobs(60, 7);
        let km = KMeans::train(&points, &KMeansConfig::new(3, 42)).unwrap();
        assert_eq!(km.n_clusters(), 3);
        // Every blob should be internally consistent: points of the same blob
        // share a label.
        for blob in 0..3 {
            let base = km.labels()[blob * 60];
            for i in 0..60 {
                assert_eq!(km.labels()[blob * 60 + i], base, "blob {blob} split");
            }
        }
        // With well separated blobs the mean quantisation error is tiny
        // relative to the inter-blob distance.
        assert!(km.inertia() < 2.0, "inertia {} too high", km.inertia());
    }

    #[test]
    fn labels_are_nearest_centroids() {
        let points = blobs(30, 3);
        let km = KMeans::train(&points, &KMeansConfig::new(4, 9)).unwrap();
        for (i, p) in points.iter().enumerate() {
            let (nearest, _) = km.assign_one(p).unwrap();
            assert_eq!(km.labels()[i], nearest);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let points = blobs(40, 11);
        let a = KMeans::train(&points, &KMeansConfig::new(5, 1234)).unwrap();
        let b = KMeans::train(&points, &KMeansConfig::new(5, 1234)).unwrap();
        assert_eq!(a.centroids(), b.centroids());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn subsampled_training_still_covers_all_points() {
        let points = blobs(100, 21);
        let cfg = KMeansConfig {
            n_clusters: 3,
            train_subsample: Some(60),
            ..KMeansConfig::new(3, 5)
        };
        let km = KMeans::train(&points, &cfg).unwrap();
        assert_eq!(km.labels().len(), points.len());
        assert!(km.labels().iter().all(|&l| l < 3));
    }

    #[test]
    fn handles_k_equal_n() {
        let points =
            VectorSet::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        let km = KMeans::train(&points, &KMeansConfig::new(3, 77)).unwrap();
        assert_eq!(km.n_clusters(), 3);
        // Each point should become (close to) its own centroid.
        assert!(km.inertia() < 1e-9);
    }

    #[test]
    fn duplicate_points_do_not_break_init() {
        let points = VectorSet::from_rows(vec![vec![1.0, 1.0]; 10]).unwrap();
        let km = KMeans::train(&points, &KMeansConfig::new(3, 5)).unwrap();
        assert_eq!(km.n_clusters(), 3);
        assert!(km.inertia() < 1e-12);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let points = blobs(5, 1);
        assert!(KMeans::train(&points, &KMeansConfig::new(0, 1)).is_err());
        assert!(KMeans::train(&points, &KMeansConfig::new(100, 1)).is_err());
        let empty = VectorSet::new(2).unwrap();
        assert!(KMeans::train(&empty, &KMeansConfig::new(1, 1)).is_err());
    }

    #[test]
    fn assign_one_checks_dimension() {
        let points = blobs(10, 2);
        let km = KMeans::train(&points, &KMeansConfig::new(2, 3)).unwrap();
        assert!(km.assign_one(&[1.0]).is_err());
        assert!(km.assign_one(&[1.0, 2.0]).is_ok());
    }
}
