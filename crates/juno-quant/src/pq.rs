//! Product quantisation (PQ).
//!
//! PQ (paper Section 2.1, steps 2–4) splits the `D`-dimensional space into
//! `D/M` subspaces of dimension `M`, trains `E` clusters in every subspace
//! over residual projections, and replaces every search point by the `D/M`
//! entry ids of its projections. A query is compared to encoded points with
//! the *asymmetric distance computation* (ADC): per-subspace distances between
//! the query projection and all entries are tabulated into an L2 look-up
//! table, and the distance to an encoded point is the sum of `D/M` table
//! lookups.

use crate::codebook::Codebook;
use crate::kmeans::{KMeans, KMeansConfig};
use juno_common::error::{Error, Result};
use juno_common::mmap::ByteStore;
use juno_common::rng::derive_seed;
use juno_common::vector::VectorSet;
use std::sync::atomic::{AtomicBool, Ordering};

/// Training configuration for a [`ProductQuantizer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PqTrainConfig {
    /// Number of subspaces (`D/M`); the paper's `PQ48` means 48 subspaces.
    pub num_subspaces: usize,
    /// Number of codebook entries per subspace (`E`), typically 256.
    pub entries_per_subspace: usize,
    /// k-means iterations for each subspace clustering.
    pub kmeans_iters: usize,
    /// Seed for the per-subspace k-means runs.
    pub seed: u64,
    /// Optional training subsample per subspace clustering.
    pub train_subsample: Option<usize>,
}

impl Default for PqTrainConfig {
    fn default() -> Self {
        Self {
            num_subspaces: 8,
            entries_per_subspace: 256,
            kmeans_iters: 20,
            seed: 0xC0DE,
            train_subsample: Some(50_000),
        }
    }
}

impl PqTrainConfig {
    /// Convenience constructor.
    pub fn new(num_subspaces: usize, entries_per_subspace: usize) -> Self {
        Self {
            num_subspaces,
            entries_per_subspace,
            ..Self::default()
        }
    }
}

/// Deferred integrity metadata of mapped (zero-copy) codes: the search
/// path never reads dataset-order codes, so their checksum is only
/// verified when something actually consumes them (mutation, diagnostics,
/// re-snapshot) — see [`EncodedPoints::ensure_verified`].
#[derive(Debug)]
pub(crate) struct LazyCodeMeta {
    /// FNV-1a over the flat code bytes, from the v3 section header.
    pub(crate) checksum: u32,
    /// Claimed maximum code value, from the v3 section header.
    pub(crate) max_code: u8,
    /// Set once the bytes have been checked against the metadata above.
    pub(crate) verified: AtomicBool,
}

impl Clone for LazyCodeMeta {
    fn clone(&self) -> Self {
        Self {
            checksum: self.checksum,
            max_code: self.max_code,
            verified: AtomicBool::new(self.verified.load(Ordering::Acquire)),
        }
    }
}

/// Encoded search points: one `u8` entry id per subspace per point.
///
/// Codebooks are capped at 256 entries per subspace (the PQ default and the
/// paper's configuration), so codes pack into one byte each — half the
/// memory traffic of the previous `u16` representation on every ADC scan.
///
/// The code bytes live in a [`ByteStore`]: owned when built by
/// [`ProductQuantizer::encode`], and a zero-copy view into a mapped
/// snapshot on the out-of-core restore path (with checksum verification
/// deferred to first use, since searches never touch dataset-order codes).
#[derive(Debug, Clone, Default)]
pub struct EncodedPoints {
    pub(crate) codes: ByteStore,
    pub(crate) num_subspaces: usize,
    pub(crate) lazy: Option<LazyCodeMeta>,
}

impl PartialEq for EncodedPoints {
    fn eq(&self, other: &Self) -> bool {
        // Logical content only — where the bytes live (and whether their
        // checksum has been verified yet) is not part of the value.
        self.num_subspaces == other.num_subspaces && self.codes == other.codes
    }
}

impl Eq for EncodedPoints {}

impl EncodedPoints {
    /// Rebuilds encoded points from a flat code buffer (persistence path).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `num_subspaces` is zero or the
    /// buffer length is not a multiple of it.
    pub fn from_parts(codes: Vec<u8>, num_subspaces: usize) -> Result<Self> {
        if num_subspaces == 0 {
            return Err(Error::invalid_config("num_subspaces must be positive"));
        }
        if !codes.len().is_multiple_of(num_subspaces) {
            return Err(Error::invalid_config(format!(
                "code buffer of length {} is not a multiple of {num_subspaces} subspaces",
                codes.len()
            )));
        }
        Ok(Self {
            codes: codes.into(),
            num_subspaces,
            lazy: None,
        })
    }

    /// Appends the code of one newly encoded point (dynamic insertion path).
    ///
    /// Mapped codes are checksum-verified (and copied out of the mapping)
    /// before the first mutation, so a corrupt snapshot can never be
    /// extended in place.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `code` does not have one
    /// entry per subspace, and [`Error::Corrupted`] when mapped codes fail
    /// their deferred verification.
    pub fn push(&mut self, code: &[u8]) -> Result<()> {
        if code.len() != self.num_subspaces || self.num_subspaces == 0 {
            return Err(Error::DimensionMismatch {
                expected: self.num_subspaces,
                actual: code.len(),
            });
        }
        self.ensure_verified()?;
        // The stored checksum describes the pre-mutation bytes only.
        self.lazy = None;
        self.codes.make_mut().extend_from_slice(code);
        Ok(())
    }

    /// Verifies mapped codes against their snapshot metadata (checksum and
    /// claimed maximum code), once; owned codes are trivially verified.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] on a mismatch.
    pub fn ensure_verified(&self) -> Result<()> {
        let Some(lazy) = &self.lazy else {
            return Ok(());
        };
        if lazy.verified.load(Ordering::Acquire) {
            return Ok(());
        }
        if crate::mapped::fnv1a_chain(&[&self.codes]) != lazy.checksum {
            return Err(Error::corrupted("mapped codes: checksum mismatch"));
        }
        if self.codes.iter().any(|&c| c > lazy.max_code) {
            return Err(Error::corrupted(
                "mapped codes: code exceeds recorded maximum",
            ));
        }
        lazy.verified.store(true, Ordering::Release);
        Ok(())
    }

    /// The maximum code value, without forcing verification: mapped codes
    /// answer from their (checksummed-section) header claim, owned codes by
    /// scanning. `None` when empty.
    pub fn claimed_max_code(&self) -> Option<u8> {
        if self.codes.is_empty() {
            return None;
        }
        match &self.lazy {
            Some(lazy) => Some(lazy.max_code),
            None => self.codes.iter().copied().max(),
        }
    }

    /// Returns `true` when the code bytes are served zero-copy from a
    /// mapped snapshot.
    pub fn is_mapped(&self) -> bool {
        self.codes.is_mapped()
    }

    /// Number of encoded points.
    pub fn len(&self) -> usize {
        self.codes
            .len()
            .checked_div(self.num_subspaces)
            .unwrap_or(0)
    }

    /// Returns `true` when no point is encoded.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of subspaces per code.
    pub fn num_subspaces(&self) -> usize {
        self.num_subspaces
    }

    /// The code (one entry id per subspace) of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn code(&self, i: usize) -> &[u8] {
        &self.codes[i * self.num_subspaces..(i + 1) * self.num_subspaces]
    }

    /// Flat borrow of all codes (row-major, `len × num_subspaces`).
    pub fn as_flat(&self) -> &[u8] {
        &self.codes
    }

    /// Memory footprint of the codes in bytes.
    pub fn code_bytes(&self) -> usize {
        self.codes.len()
    }
}

/// A trained product quantiser: one [`Codebook`] per subspace.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductQuantizer {
    codebooks: Vec<Codebook>,
    dim: usize,
    sub_dim: usize,
}

impl ProductQuantizer {
    /// Trains a product quantiser on (residual) vectors of dimension `D`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `D` is not divisible by the
    /// number of subspaces, when a subspace would be empty, or when `E`
    /// exceeds 256 (codes must fit in a `u8`); k-means errors are
    /// propagated.
    pub fn train(vectors: &VectorSet, config: &PqTrainConfig) -> Result<Self> {
        if config.num_subspaces == 0 {
            return Err(Error::invalid_config("num_subspaces must be positive"));
        }
        if config.entries_per_subspace == 0 {
            return Err(Error::invalid_config(
                "entries_per_subspace must be positive",
            ));
        }
        if config.entries_per_subspace > 256 {
            return Err(Error::invalid_config(
                "entries_per_subspace must fit in a u8 code (at most 256)",
            ));
        }
        let dim = vectors.dim();
        if !dim.is_multiple_of(config.num_subspaces) {
            return Err(Error::invalid_config(format!(
                "dimension {dim} is not divisible by num_subspaces {}",
                config.num_subspaces
            )));
        }
        if vectors.len() < config.entries_per_subspace {
            return Err(Error::invalid_config(format!(
                "training requires at least E={} vectors, got {}",
                config.entries_per_subspace,
                vectors.len()
            )));
        }
        let sub_dim = dim / config.num_subspaces;
        let mut codebooks = Vec::with_capacity(config.num_subspaces);
        for s in 0..config.num_subspaces {
            let projections = vectors.subspace(s * sub_dim, sub_dim)?;
            let km_cfg = KMeansConfig {
                n_clusters: config.entries_per_subspace,
                max_iters: config.kmeans_iters,
                tolerance: 1e-4,
                seed: derive_seed(config.seed, s as u64),
                train_subsample: config.train_subsample,
            };
            let km = KMeans::train(&projections, &km_cfg)?;
            codebooks.push(Codebook::new(s, km.into_centroids())?);
        }
        Ok(Self {
            codebooks,
            dim,
            sub_dim,
        })
    }

    /// Rebuilds a product quantiser from persisted per-subspace codebooks.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when no codebooks are given or the
    /// codebooks disagree on entry count / subspace dimension.
    pub fn from_parts(codebooks: Vec<Codebook>) -> Result<Self> {
        let first = codebooks
            .first()
            .ok_or_else(|| Error::empty_input("product quantiser requires codebooks"))?;
        let sub_dim = first.sub_dim();
        let entries = first.num_entries();
        for (s, cb) in codebooks.iter().enumerate() {
            if cb.sub_dim() != sub_dim || cb.num_entries() != entries {
                return Err(Error::invalid_config(format!(
                    "codebook {s} shape ({} entries × {}-d) disagrees with subspace 0 \
                     ({entries} × {sub_dim}-d)",
                    cb.num_entries(),
                    cb.sub_dim()
                )));
            }
        }
        let dim = codebooks.len() * sub_dim;
        Ok(Self {
            codebooks,
            dim,
            sub_dim,
        })
    }

    /// Encodes a single (residual) vector — the dynamic-insertion sibling of
    /// [`ProductQuantizer::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the vector dimension is not
    /// `D`.
    pub fn encode_one(&self, residual: &[f32]) -> Result<Vec<u8>> {
        if residual.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: residual.len(),
            });
        }
        let mut code = Vec::with_capacity(self.num_subspaces());
        for (s, cb) in self.codebooks.iter().enumerate() {
            let proj = &residual[s * self.sub_dim..(s + 1) * self.sub_dim];
            code.push(cb.encode(proj)? as u8);
        }
        Ok(code)
    }

    /// Full vector dimension `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Subspace dimension `M`.
    pub fn sub_dim(&self) -> usize {
        self.sub_dim
    }

    /// Number of subspaces `D/M`.
    pub fn num_subspaces(&self) -> usize {
        self.codebooks.len()
    }

    /// Number of entries per subspace `E`.
    pub fn entries_per_subspace(&self) -> usize {
        self.codebooks.first().map_or(0, Codebook::num_entries)
    }

    /// Borrow of all per-subspace codebooks.
    pub fn codebooks(&self) -> &[Codebook] {
        &self.codebooks
    }

    /// Borrow of one subspace codebook.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] for an invalid subspace.
    pub fn codebook(&self, s: usize) -> Result<&Codebook> {
        self.codebooks
            .get(s)
            .ok_or_else(|| Error::IndexOutOfBounds {
                what: "subspace".into(),
                index: s,
                len: self.codebooks.len(),
            })
    }

    /// Encodes a set of (residual) vectors.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the vector dimension is not
    /// `D`.
    pub fn encode(&self, vectors: &VectorSet) -> Result<EncodedPoints> {
        if vectors.dim() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: vectors.dim(),
            });
        }
        let m = self.num_subspaces();
        // Work-stealing over point *ranges* (one allocation per task, not per
        // point), concatenated in range order at the end.
        let threads = juno_common::parallel::default_threads();
        let n = vectors.len();
        let chunk = n.div_ceil((threads * 4).max(1)).max(1);
        let num_chunks = n.div_ceil(chunk);
        let per_chunk: Vec<Vec<u8>> = juno_common::parallel::map(num_chunks, threads, |c| {
            let start = c * chunk;
            let end = (start + chunk).min(n);
            let mut out = Vec::with_capacity((end - start) * m);
            for i in start..end {
                let row = vectors.row(i);
                for (s, cb) in self.codebooks.iter().enumerate() {
                    let proj = &row[s * self.sub_dim..(s + 1) * self.sub_dim];
                    // encode() cannot fail here: proj length == sub_dim.
                    out.push(cb.encode(proj).expect("projection has subspace dimension") as u8);
                }
            }
            out
        })?;
        let mut codes = Vec::with_capacity(n * m);
        for block in per_chunk {
            codes.extend_from_slice(&block);
        }
        Ok(EncodedPoints {
            codes: codes.into(),
            num_subspaces: m,
            lazy: None,
        })
    }

    /// Reconstructs (decodes) an encoded point back into a `D`-dimensional
    /// vector by concatenating its entry centroids.
    ///
    /// # Errors
    ///
    /// Returns an error when the code length or any entry id is invalid.
    pub fn decode(&self, code: &[u8]) -> Result<Vec<f32>> {
        if code.len() != self.num_subspaces() {
            return Err(Error::DimensionMismatch {
                expected: self.num_subspaces(),
                actual: code.len(),
            });
        }
        let mut out = Vec::with_capacity(self.dim);
        for (s, &e) in code.iter().enumerate() {
            let entry = self.codebooks[s].entry(e as usize)?;
            out.extend_from_slice(entry);
        }
        Ok(out)
    }

    /// Builds the dense L2-LUT of one query residual: `lut[s][e]` is the
    /// squared distance between the query's projection on subspace `s` and
    /// entry `e`. This is the baseline (FAISS-style) LUT construction whose
    /// cost the paper's Fig. 3(a) attributes ~90 % of query time to.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the residual dimension is not
    /// `D`.
    pub fn dense_lut(&self, residual: &[f32]) -> Result<Vec<Vec<f32>>> {
        if residual.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: residual.len(),
            });
        }
        let mut lut = Vec::with_capacity(self.num_subspaces());
        for (s, cb) in self.codebooks.iter().enumerate() {
            let proj = &residual[s * self.sub_dim..(s + 1) * self.sub_dim];
            lut.push(cb.dense_lut_row(proj)?);
        }
        Ok(lut)
    }

    /// Asymmetric distance of one encoded point given a dense LUT: the sum of
    /// `lut[s][code[s]]` over subspaces.
    ///
    /// # Panics
    ///
    /// Panics if `code` or `lut` have inconsistent shapes (internal misuse).
    pub fn adc_distance(lut: &[Vec<f32>], code: &[u8]) -> f32 {
        debug_assert_eq!(lut.len(), code.len());
        code.iter()
            .enumerate()
            .map(|(s, &e)| lut[s][e as usize])
            .sum()
    }

    /// [`ProductQuantizer::dense_lut`] into a caller-provided flat
    /// `subspaces × E` buffer (`out[s * E + e]`, resized in place) — the
    /// identical values with no per-query allocation, which is what the
    /// cluster-major grouped batch scan rebuilds once per (query, probe)
    /// from its reusable LUT arena.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the residual dimension is
    /// not `D`.
    pub fn dense_lut_into(&self, residual: &[f32], out: &mut Vec<f32>) -> Result<()> {
        if residual.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: residual.len(),
            });
        }
        let entries = self.entries_per_subspace();
        out.clear();
        out.resize(self.num_subspaces() * entries, 0.0);
        for (s, cb) in self.codebooks.iter().enumerate() {
            let proj = &residual[s * self.sub_dim..(s + 1) * self.sub_dim];
            cb.dense_lut_row_into(proj, &mut out[s * entries..(s + 1) * entries])?;
        }
        Ok(())
    }

    /// [`ProductQuantizer::adc_distance`] over a flat `subspaces × E` LUT
    /// buffer (the [`ProductQuantizer::dense_lut_into`] layout). The
    /// summation order matches the nested form exactly, so given equal LUT
    /// values the two are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is too short for `code` (internal misuse).
    #[inline]
    pub fn adc_distance_flat(flat: &[f32], entries: usize, code: &[u8]) -> f32 {
        code.iter()
            .enumerate()
            .map(|(s, &e)| flat[s * entries + e as usize])
            .sum()
    }

    /// Mean squared reconstruction error of an encoding — a quality measure of
    /// the trained codebooks.
    ///
    /// # Errors
    ///
    /// Propagates decoding errors and dimension mismatches.
    pub fn reconstruction_error(&self, vectors: &VectorSet, codes: &EncodedPoints) -> Result<f64> {
        if vectors.len() != codes.len() {
            return Err(Error::invalid_config(format!(
                "vector count {} does not match code count {}",
                vectors.len(),
                codes.len()
            )));
        }
        if vectors.is_empty() {
            return Ok(0.0);
        }
        let mut total = 0.0f64;
        for i in 0..vectors.len() {
            let rec = self.decode(codes.code(i))?;
            total += juno_common::metric::l2_squared(vectors.row(i), &rec) as f64;
        }
        Ok(total / vectors.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juno_common::metric::l2_squared;
    use juno_common::rng::{normal, seeded};

    fn random_vectors(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = seeded(seed);
        let rows = (0..n)
            .map(|_| (0..dim).map(|_| normal(&mut rng, 0.0, 1.0)).collect())
            .collect();
        VectorSet::from_rows(rows).unwrap()
    }

    fn small_config() -> PqTrainConfig {
        PqTrainConfig {
            num_subspaces: 4,
            entries_per_subspace: 16,
            kmeans_iters: 10,
            seed: 7,
            train_subsample: None,
        }
    }

    #[test]
    fn flat_dense_lut_and_adc_match_the_nested_form_bit_exactly() {
        let data = random_vectors(400, 8, 9);
        let pq = ProductQuantizer::train(&data, &small_config()).unwrap();
        let codes = pq.encode(&data).unwrap();
        let entries = pq.entries_per_subspace();
        let mut flat = Vec::new();
        for qi in 0..8 {
            let residual = data.row(qi * 17);
            let nested = pq.dense_lut(residual).unwrap();
            pq.dense_lut_into(residual, &mut flat).unwrap();
            assert_eq!(flat.len(), pq.num_subspaces() * entries);
            for (s, row) in nested.iter().enumerate() {
                for (e, &v) in row.iter().enumerate() {
                    assert_eq!(v.to_bits(), flat[s * entries + e].to_bits());
                }
            }
            for i in (0..data.len()).step_by(31) {
                let a = ProductQuantizer::adc_distance(&nested, codes.code(i));
                let b = ProductQuantizer::adc_distance_flat(&flat, entries, codes.code(i));
                assert_eq!(a.to_bits(), b.to_bits(), "query {qi} point {i}");
            }
        }
        assert!(pq.dense_lut_into(&[0.0; 3], &mut flat).is_err());
    }

    #[test]
    fn shapes_after_training() {
        let data = random_vectors(400, 8, 1);
        let pq = ProductQuantizer::train(&data, &small_config()).unwrap();
        assert_eq!(pq.dim(), 8);
        assert_eq!(pq.sub_dim(), 2);
        assert_eq!(pq.num_subspaces(), 4);
        assert_eq!(pq.entries_per_subspace(), 16);
        assert_eq!(pq.codebooks().len(), 4);
        assert!(pq.codebook(4).is_err());
    }

    #[test]
    fn encode_decode_reduces_error_with_more_entries() {
        let data = random_vectors(600, 8, 2);
        let small = ProductQuantizer::train(
            &data,
            &PqTrainConfig {
                entries_per_subspace: 4,
                ..small_config()
            },
        )
        .unwrap();
        let large = ProductQuantizer::train(
            &data,
            &PqTrainConfig {
                entries_per_subspace: 64,
                ..small_config()
            },
        )
        .unwrap();
        let err_small = small
            .reconstruction_error(&data, &small.encode(&data).unwrap())
            .unwrap();
        let err_large = large
            .reconstruction_error(&data, &large.encode(&data).unwrap())
            .unwrap();
        assert!(
            err_large < err_small,
            "more entries should quantise better: {err_large} vs {err_small}"
        );
    }

    #[test]
    fn adc_matches_decoded_distance() {
        let data = random_vectors(300, 8, 3);
        let pq = ProductQuantizer::train(&data, &small_config()).unwrap();
        let codes = pq.encode(&data).unwrap();
        let query = data.row(0);
        let lut = pq.dense_lut(query).unwrap();
        for i in (0..data.len()).step_by(37) {
            let adc = ProductQuantizer::adc_distance(&lut, codes.code(i));
            let decoded = pq.decode(codes.code(i)).unwrap();
            let exact = l2_squared(query, &decoded);
            assert!(
                (adc - exact).abs() < 1e-3,
                "ADC {adc} != decoded distance {exact} for point {i}"
            );
        }
    }

    #[test]
    fn encoded_points_accessors() {
        let data = random_vectors(50, 8, 4);
        let pq = ProductQuantizer::train(&data, &small_config()).unwrap();
        let codes = pq.encode(&data).unwrap();
        assert_eq!(codes.len(), 50);
        assert_eq!(codes.num_subspaces(), 4);
        assert_eq!(codes.code(0).len(), 4);
        assert_eq!(codes.as_flat().len(), 200);
        assert_eq!(codes.code_bytes(), 200);
        assert!(!codes.is_empty());
        // Codes address valid entries.
        assert!(codes
            .as_flat()
            .iter()
            .all(|&c| (c as usize) < pq.entries_per_subspace()));
    }

    #[test]
    fn storage_is_compressed_relative_to_float() {
        let data = random_vectors(200, 8, 5);
        let pq = ProductQuantizer::train(&data, &small_config()).unwrap();
        let codes = pq.encode(&data).unwrap();
        let raw_bytes = data.len() * data.dim() * std::mem::size_of::<f32>();
        assert!(codes.code_bytes() * 4 < raw_bytes);
    }

    #[test]
    fn invalid_configs_rejected() {
        let data = random_vectors(100, 10, 6);
        // 10 not divisible by 4 subspaces.
        assert!(ProductQuantizer::train(&data, &PqTrainConfig::new(4, 8)).is_err());
        // Zero subspaces / entries.
        assert!(ProductQuantizer::train(&data, &PqTrainConfig::new(0, 8)).is_err());
        let mut cfg = PqTrainConfig::new(2, 0);
        assert!(ProductQuantizer::train(&data, &cfg).is_err());
        // More entries than training vectors.
        cfg = PqTrainConfig::new(2, 512);
        assert!(ProductQuantizer::train(&data, &cfg).is_err());
    }

    #[test]
    fn encode_one_matches_batch_encoding_and_push_extends() {
        let data = random_vectors(200, 8, 9);
        let pq = ProductQuantizer::train(&data, &small_config()).unwrap();
        let mut codes = pq.encode(&data).unwrap();
        for i in (0..data.len()).step_by(29) {
            let one = pq.encode_one(data.row(i)).unwrap();
            assert_eq!(one.as_slice(), codes.code(i), "point {i}");
        }
        let extra = pq.encode_one(data.row(0)).unwrap();
        codes.push(&extra).unwrap();
        assert_eq!(codes.len(), 201);
        assert_eq!(codes.code(200), extra.as_slice());
        assert!(codes.push(&[0u8; 3]).is_err());
        assert!(pq.encode_one(&[0.0; 5]).is_err());
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let data = random_vectors(150, 8, 10);
        let pq = ProductQuantizer::train(&data, &small_config()).unwrap();
        let rebuilt = ProductQuantizer::from_parts(pq.codebooks().to_vec()).unwrap();
        assert_eq!(rebuilt, pq);
        assert!(ProductQuantizer::from_parts(vec![]).is_err());
        // Mismatched codebooks (different subspace dims) are rejected.
        let other = ProductQuantizer::train(
            &random_vectors(100, 6, 11),
            &PqTrainConfig {
                num_subspaces: 2,
                ..small_config()
            },
        )
        .unwrap();
        let mixed = vec![pq.codebooks()[0].clone(), other.codebooks()[0].clone()];
        assert!(ProductQuantizer::from_parts(mixed).is_err());

        let codes = pq.encode(&data).unwrap();
        let flat = codes.as_flat().to_vec();
        let back = EncodedPoints::from_parts(flat, 4).unwrap();
        assert_eq!(back, codes);
        assert!(EncodedPoints::from_parts(vec![1, 2, 3], 2).is_err());
        assert!(EncodedPoints::from_parts(vec![1, 2], 0).is_err());
    }

    #[test]
    fn encode_and_lut_check_dimensions() {
        let data = random_vectors(100, 8, 7);
        let pq = ProductQuantizer::train(&data, &small_config()).unwrap();
        let wrong = random_vectors(5, 6, 8);
        assert!(pq.encode(&wrong).is_err());
        assert!(pq.dense_lut(&[0.0; 6]).is_err());
        assert!(pq.decode(&[0, 1]).is_err());
        assert!(pq.decode(&[99, 0, 0, 0]).is_err());
    }
}
