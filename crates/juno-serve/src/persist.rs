//! Whole-fleet persistence: the `SHRD` snapshot container.
//!
//! A fleet snapshot reuses the PR 2 container format (`juno-data`'s
//! `snapshot` module) with engine kind [`KIND_SHARD`]:
//!
//! * a `MANI` manifest section — format version, ownership mode (global-id
//!   vs mapped), the [`ShardRouter`], the shard count and the per-shard live
//!   counts (validated on restore);
//! * for mapped fleets, an `IMAP` section with the per-shard local→global
//!   id maps;
//! * one `S000`, `S001`, … section per shard, each holding that shard
//!   engine's **own** snapshot bytes verbatim (so every engine keeps its
//!   established format, checksums and back-compat story — the fleet layer
//!   only frames them).
//!
//! Restore accepts a second shape: bytes whose container kind is *not*
//! `SHRD` are treated as a legacy unsharded engine snapshot and restore
//! into a single-shard fleet — old single-index deployments upgrade to the
//! serving layer without a migration step.

use crate::router::{ShardRouter, MAX_SHARDS};
use crate::shard::{shard_state, state_id_map, FleetReader, ShardState};
use juno_common::error::{Error, Result};
use juno_common::index::AnnIndex;
use juno_data::snapshot::{kind, SectionWriter, Snapshot, SnapshotWriter};
use std::sync::Arc;

/// The engine-kind word of fleet snapshots.
pub const KIND_SHARD: u32 = kind(*b"SHRD");

/// The manifest layout version written inside `MANI`.
const MANIFEST_VERSION: u32 = 1;

/// The per-shard section tag: `S` followed by three decimal digits.
fn shard_tag(s: usize) -> [u8; 4] {
    debug_assert!(s < MAX_SHARDS);
    [
        b'S',
        b'0' + (s / 100) as u8,
        b'0' + ((s / 10) % 10) as u8,
        b'0' + (s % 10) as u8,
    ]
}

/// Serialises a pinned fleet view into `SHRD` container bytes.
pub(crate) fn encode_fleet<I: AnnIndex>(
    reader: &FleetReader<I>,
    router: ShardRouter,
) -> Result<Vec<u8>> {
    let num_shards = reader.num_shards();
    let mapped = state_id_map(reader.shard(0)).is_some();
    let mut writer = SnapshotWriter::new(KIND_SHARD);

    let mut mani = SectionWriter::new();
    mani.put_u32(MANIFEST_VERSION);
    mani.put_u8(mapped as u8);
    router.encode(&mut mani);
    mani.put_u64(num_shards as u64);
    let lens: Vec<u64> = (0..num_shards)
        .map(|s| reader.shard(s).index().len() as u64)
        .collect();
    mani.put_u64s(&lens);
    writer.add_section(*b"MANI", mani);

    if mapped {
        let mut imap = SectionWriter::new();
        imap.put_u64(num_shards as u64);
        for s in 0..num_shards {
            let map = state_id_map(reader.shard(s))
                .ok_or_else(|| Error::invalid_config("fleet mixes mapped and global-id shards"))?;
            imap.put_u64s(map);
        }
        writer.add_section(*b"IMAP", imap);
    }

    for s in 0..num_shards {
        let sub = reader.shard(s).index().snapshot()?;
        let mut section = SectionWriter::new();
        section.put_u8s(&sub);
        writer.add_section(shard_tag(s), section);
    }
    Ok(writer.finish())
}

/// The outcome of decoding fleet bytes: the shard states to publish and the
/// router recorded in the manifest (`None` for legacy unsharded snapshots,
/// where the caller keeps its current router).
pub(crate) struct DecodedFleet<I> {
    pub states: Vec<ShardState<I>>,
    pub router: Option<ShardRouter>,
}

fn corrupted(msg: impl std::fmt::Display) -> Error {
    Error::corrupted(format!("sharded snapshot: {msg}"))
}

/// Decodes `SHRD` container bytes (or a legacy unsharded engine snapshot)
/// into shard states, restoring each shard into a clone of `prototype`.
/// Fully validates before returning, so a caller can swap its state
/// atomically: on error nothing has been published.
pub(crate) fn decode_fleet<I: AnnIndex + Clone>(
    bytes: &[u8],
    prototype: &I,
    base_epoch: u64,
) -> Result<DecodedFleet<I>> {
    let snap = Snapshot::parse(bytes)?;
    if snap.kind() != KIND_SHARD {
        // Legacy unsharded engine snapshot → a single-shard fleet. The
        // engine's own restore validates the kind word and payload.
        let mut engine = prototype.clone();
        engine.restore(bytes)?;
        return Ok(DecodedFleet {
            states: vec![shard_state(engine, base_epoch, None)],
            router: None,
        });
    }

    let mut mani = snap.section(*b"MANI")?;
    let version = mani.get_u32()?;
    if version != MANIFEST_VERSION {
        return Err(corrupted(format!(
            "unknown manifest version {version} (reader supports {MANIFEST_VERSION})"
        )));
    }
    let mapped = match mani.get_u8()? {
        0 => false,
        1 => true,
        other => return Err(corrupted(format!("invalid ownership-mode byte {other}"))),
    };
    let router = ShardRouter::decode(&mut mani)?;
    let num_shards = mani.get_usize()?;
    if num_shards == 0 || num_shards > MAX_SHARDS {
        return Err(corrupted(format!("invalid shard count {num_shards}")));
    }
    let lens = mani.get_u64s()?;
    if lens.len() != num_shards {
        return Err(corrupted(
            "per-shard length table does not match shard count",
        ));
    }
    mani.expect_end()?;

    let id_maps: Option<Vec<Arc<Vec<u64>>>> = if mapped {
        let mut imap = snap.section(*b"IMAP")?;
        let count = imap.get_usize()?;
        if count != num_shards {
            return Err(corrupted("id-map table does not match shard count"));
        }
        let maps = (0..num_shards)
            .map(|_| imap.get_u64s().map(Arc::new))
            .collect::<Result<Vec<_>>>()?;
        imap.expect_end()?;
        // The same invariant `from_prebuilt` enforces: a global id may be
        // owned by at most one shard, or merged result sets would contain
        // duplicates.
        let mut all_ids: Vec<u64> = maps.iter().flat_map(|m| m.iter().copied()).collect();
        all_ids.sort_unstable();
        if all_ids.windows(2).any(|w| w[0] == w[1]) {
            return Err(corrupted("global ids collide across shard id maps"));
        }
        Some(maps)
    } else {
        None
    };

    let mut states = Vec::with_capacity(num_shards);
    for s in 0..num_shards {
        let mut section = snap.section(shard_tag(s))?;
        let sub = section.get_u8s()?;
        section.expect_end()?;
        let mut engine = prototype.clone();
        engine.restore(&sub)?;
        if engine.len() as u64 != lens[s] {
            return Err(corrupted(format!(
                "shard {s} restored {} live vectors, manifest recorded {}",
                engine.len(),
                lens[s]
            )));
        }
        let id_map = id_maps.as_ref().map(|maps| maps[s].clone());
        if let Some(map) = &id_map {
            if map.len() != engine.len() {
                return Err(corrupted(format!(
                    "shard {s} id map covers {} ids for {} vectors",
                    map.len(),
                    engine.len()
                )));
            }
        } else {
            // Global-id fleets maintain the invariant that every live id is
            // owned by the shard the router assigns it to (construction and
            // every insert/remove preserve it). A checksum-valid snapshot
            // violating it — e.g. one shard's payload duplicated into
            // another's section — would serve duplicate results and ids
            // that `remove` can never reach, so reject it here. This also
            // guarantees cross-shard live-id disjointness.
            for id in engine.ids() {
                let owner = router.route(id, num_shards);
                if owner != s {
                    return Err(corrupted(format!(
                        "shard {s} holds live id {id}, which the router assigns to \
                         shard {owner}"
                    )));
                }
            }
        }
        states.push(shard_state(engine, base_epoch, id_map));
    }
    Ok(DecodedFleet {
        states,
        router: Some(router),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_tags_are_unique_three_digit_ascii() {
        assert_eq!(&shard_tag(0), b"S000");
        assert_eq!(&shard_tag(7), b"S007");
        assert_eq!(&shard_tag(42), b"S042");
        assert_eq!(&shard_tag(998), b"S998");
        let mut seen = std::collections::HashSet::new();
        for s in 0..MAX_SHARDS {
            assert!(seen.insert(shard_tag(s)), "duplicate tag for shard {s}");
        }
    }
}
