//! Whole-fleet persistence: the `SHRD` snapshot container.
//!
//! A fleet snapshot reuses the PR 2 container format (`juno-data`'s
//! `snapshot` module) with engine kind [`KIND_SHARD`]:
//!
//! * a `MANI` manifest section — format version, ownership mode (global-id
//!   vs mapped), the [`ShardRouter`], the shard count and the per-shard live
//!   counts (validated on restore);
//! * for mapped fleets, an `IMAP` section with the per-shard local→global
//!   id maps;
//! * one `S000`, `S001`, … section per shard, each holding that shard
//!   engine's **own** snapshot bytes verbatim (so every engine keeps its
//!   established format, checksums and back-compat story — the fleet layer
//!   only frames them).
//!
//! Shard sections are framed (framing v2) as a `u64::MAX` sentinel, a
//! `u32` framing version and a `u32` pad length followed by that many zero
//! bytes, placing the engine bytes at a 64-byte-aligned absolute file
//! offset — the alignment the engines' own mapped (v3) hot sections assume,
//! so a fleet snapshot can be served zero-copy from an mmap'd file
//! ([`decode_fleet_mapped`]). Legacy length-prefixed shard sections are
//! still decoded.
//!
//! Restore accepts a second shape: bytes whose container kind is *not*
//! `SHRD` are treated as a legacy unsharded engine snapshot and restore
//! into a single-shard fleet — old single-index deployments upgrade to the
//! serving layer without a migration step.

use crate::router::{ShardRouter, MAX_SHARDS};
use crate::shard::{shard_state, state_id_map, FleetReader, ShardState};
use juno_common::error::{Error, Result};
use juno_common::index::AnnIndex;
use juno_common::mmap::{Mmap, ResidencyConfig};
use juno_data::snapshot::{
    kind, MappedSnapshot, SectionReader, SectionWriter, Snapshot, SnapshotWriter,
    CONTAINER_HEADER_LEN, SECTION_PREFIX_LEN,
};
use std::borrow::Cow;
use std::sync::Arc;

/// The engine-kind word of fleet snapshots.
pub const KIND_SHARD: u32 = kind(*b"SHRD");

/// The manifest layout version written inside `MANI`.
const MANIFEST_VERSION: u32 = 1;

/// Sentinel leading framed (v2) shard sections; the legacy framing starts
/// with a `u64` length prefix, which can never be `u64::MAX`.
const SHARD_SECTION_SENTINEL: u64 = u64::MAX;

/// Version of the aligned shard-section framing.
const SHARD_SECTION_VERSION: u32 = 2;

/// Bytes of the v2 framing header (sentinel + version + pad length).
const SHARD_FRAME_HEADER: usize = 16;

/// Alignment of the embedded engine bytes within the fleet file — matches
/// the alignment the engines' mapped hot sections are encoded against.
const SHARD_ALIGN: usize = 64;

/// The per-shard section tag: `S` followed by three decimal digits.
fn shard_tag(s: usize) -> [u8; 4] {
    debug_assert!(s < MAX_SHARDS);
    [
        b'S',
        b'0' + (s / 100) as u8,
        b'0' + ((s / 10) % 10) as u8,
        b'0' + (s % 10) as u8,
    ]
}

/// Serialises a pinned fleet view into `SHRD` container bytes.
pub(crate) fn encode_fleet<I: AnnIndex>(
    reader: &FleetReader<I>,
    router: ShardRouter,
) -> Result<Vec<u8>> {
    let num_shards = reader.num_shards();
    let mapped = state_id_map(reader.shard(0)).is_some();
    let mut writer = SnapshotWriter::new(KIND_SHARD);
    // The shard-section padding depends on each payload's absolute file
    // offset, so the running offset is tracked section by section.
    let mut abs = CONTAINER_HEADER_LEN;

    let mut mani = SectionWriter::new();
    mani.put_u32(MANIFEST_VERSION);
    mani.put_u8(mapped as u8);
    router.encode(&mut mani);
    mani.put_u64(num_shards as u64);
    let lens: Vec<u64> = (0..num_shards)
        .map(|s| reader.shard(s).index().len() as u64)
        .collect();
    mani.put_u64s(&lens);
    abs += SECTION_PREFIX_LEN + mani.len();
    writer.add_section(*b"MANI", mani);

    if mapped {
        let mut imap = SectionWriter::new();
        imap.put_u64(num_shards as u64);
        for s in 0..num_shards {
            let map = state_id_map(reader.shard(s))
                .ok_or_else(|| Error::invalid_config("fleet mixes mapped and global-id shards"))?;
            imap.put_u64s(map);
        }
        abs += SECTION_PREFIX_LEN + imap.len();
        writer.add_section(*b"IMAP", imap);
    }

    for s in 0..num_shards {
        let sub = reader.shard(s).index().snapshot()?;
        let mut section = SectionWriter::new();
        // Pad so the engine bytes land 64-byte-aligned in the fleet file,
        // preserving the alignment their own mapped sections were encoded
        // against (an engine snapshot always starts at offset 0 of its own
        // file, which is aligned by definition).
        let payload_abs = abs + SECTION_PREFIX_LEN;
        let pad = (SHARD_ALIGN - (payload_abs + SHARD_FRAME_HEADER) % SHARD_ALIGN) % SHARD_ALIGN;
        section.put_u64(SHARD_SECTION_SENTINEL);
        section.put_u32(SHARD_SECTION_VERSION);
        section.put_u32(pad as u32);
        section.put_raw(&vec![0u8; pad]);
        section.put_raw(&sub);
        abs += SECTION_PREFIX_LEN + section.len();
        writer.add_section(shard_tag(s), section);
    }
    Ok(writer.finish())
}

/// Extracts the embedded engine snapshot bytes from one shard section,
/// accepting both the aligned sentinel framing (v2) and the legacy `u64`
/// length prefix.
fn shard_engine_bytes<'a>(s: usize, r: &mut SectionReader<'a>) -> Result<Cow<'a, [u8]>> {
    let mut probe = r.clone();
    if probe.get_u64()? == SHARD_SECTION_SENTINEL {
        let fmt = probe.get_u32()?;
        if fmt != SHARD_SECTION_VERSION {
            return Err(corrupted(format!(
                "unknown shard section framing {fmt} \
                 (reader supports {SHARD_SECTION_VERSION} and legacy)"
            )));
        }
        let pad = probe.get_u32()? as usize;
        let rest = probe.take_rest();
        if pad > rest.len() {
            return Err(corrupted(format!(
                "shard {s} section padding overruns the payload"
            )));
        }
        *r = probe;
        return Ok(Cow::Borrowed(&rest[pad..]));
    }
    let sub = r.get_u8s()?;
    r.expect_end()?;
    Ok(Cow::Owned(sub))
}

/// The outcome of decoding fleet bytes: the shard states to publish and the
/// router recorded in the manifest (`None` for legacy unsharded snapshots,
/// where the caller keeps its current router).
pub(crate) struct DecodedFleet<I> {
    pub states: Vec<ShardState<I>>,
    pub router: Option<ShardRouter>,
}

fn corrupted(msg: impl std::fmt::Display) -> Error {
    Error::corrupted(format!("sharded snapshot: {msg}"))
}

/// Decodes `SHRD` container bytes (or a legacy unsharded engine snapshot)
/// into shard states, restoring each shard into a clone of `prototype`.
/// Fully validates before returning, so a caller can swap its state
/// atomically: on error nothing has been published.
pub(crate) fn decode_fleet<I: AnnIndex + Clone>(
    bytes: &[u8],
    prototype: &I,
    base_epoch: u64,
) -> Result<DecodedFleet<I>> {
    let snap = Snapshot::parse(bytes)?;
    if snap.kind() != KIND_SHARD {
        // Legacy unsharded engine snapshot → a single-shard fleet. The
        // engine's own restore validates the kind word and payload.
        let mut engine = prototype.clone();
        engine.restore(bytes)?;
        return Ok(DecodedFleet {
            states: vec![shard_state(engine, base_epoch, None)],
            router: None,
        });
    }

    let mut mani = snap.section(*b"MANI")?;
    let manifest = parse_manifest(&mut mani)?;
    let id_maps: Option<Vec<Arc<Vec<u64>>>> = if manifest.mapped {
        let mut imap = snap.section(*b"IMAP")?;
        Some(parse_id_maps(&mut imap, manifest.num_shards)?)
    } else {
        None
    };

    let mut states = Vec::with_capacity(manifest.num_shards);
    for s in 0..manifest.num_shards {
        let mut section = snap.section(shard_tag(s))?;
        let sub = shard_engine_bytes(s, &mut section)?;
        let mut engine = prototype.clone();
        engine.restore(&sub)?;
        let id_map = id_maps.as_ref().map(|maps| maps[s].clone());
        validate_shard(s, &engine, &manifest, id_map.as_deref())?;
        states.push(shard_state(engine, base_epoch, id_map));
    }
    Ok(DecodedFleet {
        states,
        router: Some(manifest.router),
    })
}

/// Decodes a fleet snapshot **in place** from an mmap'd file: the manifest
/// and id maps are parsed and checksum-verified eagerly, while the shard
/// sections stay lazy — each shard engine restores zero-copy from its
/// aligned region of the map via [`AnnIndex::restore_mapped`] (engines
/// without mapped support transparently copy). Bytes whose container kind
/// is not `SHRD` restore as a legacy unsharded engine snapshot into a
/// single-shard fleet, also mapped.
///
/// Fully validates before returning, exactly like [`decode_fleet`]: on
/// error nothing has been published.
pub(crate) fn decode_fleet_mapped<I: AnnIndex + Clone>(
    map: &Arc<Mmap>,
    prototype: &I,
    base_epoch: u64,
    residency: &ResidencyConfig,
) -> Result<DecodedFleet<I>> {
    let bytes = map.as_slice();
    // Peek the container kind before parsing: a legacy unsharded engine
    // snapshot must be handed to the engine whole, with the engine's own
    // notion of which sections stay lazy.
    let file_kind = (bytes.len() >= CONTAINER_HEADER_LEN
        && bytes[..8] == juno_data::snapshot::MAGIC)
        .then(|| u32::from_le_bytes(bytes[12..16].try_into().expect("4-byte slice")));
    if file_kind != Some(KIND_SHARD) {
        let mut engine = prototype.clone();
        engine.restore_mapped(map, 0, map.len(), residency)?;
        return Ok(DecodedFleet {
            states: vec![shard_state(engine, base_epoch, None)],
            router: None,
        });
    }

    let is_shard_section =
        |tag: &[u8; 4]| tag[0] == b'S' && tag[1..].iter().all(u8::is_ascii_digit);
    let snap = MappedSnapshot::parse(map.clone(), 0, map.len(), is_shard_section)?;
    let mut mani = snap.section_reader(*b"MANI")?;
    let manifest = parse_manifest(&mut mani)?;
    let id_maps: Option<Vec<Arc<Vec<u64>>>> = if manifest.mapped {
        let mut imap = snap.section_reader(*b"IMAP")?;
        Some(parse_id_maps(&mut imap, manifest.num_shards)?)
    } else {
        None
    };

    let mut states = Vec::with_capacity(manifest.num_shards);
    for s in 0..manifest.num_shards {
        let tag = shard_tag(s);
        let (off, len) = snap.section_range(tag)?;
        let slice = &map.as_slice()[off..off + len];
        let (engine_off, engine_len) = if slice.len() >= SHARD_FRAME_HEADER
            && slice[..8] == SHARD_SECTION_SENTINEL.to_le_bytes()
        {
            let fmt = u32::from_le_bytes(slice[8..12].try_into().expect("4-byte slice"));
            if fmt != SHARD_SECTION_VERSION {
                return Err(corrupted(format!(
                    "unknown shard section framing {fmt} \
                     (reader supports {SHARD_SECTION_VERSION} and legacy)"
                )));
            }
            let pad = u32::from_le_bytes(slice[12..16].try_into().expect("4-byte slice")) as usize;
            if pad > slice.len() - SHARD_FRAME_HEADER {
                return Err(corrupted(format!(
                    "shard {s} section padding overruns the payload"
                )));
            }
            (
                off + SHARD_FRAME_HEADER + pad,
                len - SHARD_FRAME_HEADER - pad,
            )
        } else {
            // Legacy length-prefixed framing predates the mapped engine
            // sections, so there is nothing lazily verifiable inside;
            // checksum the section like the copy path would.
            snap.verify_section(tag)?;
            if slice.len() < 8 {
                return Err(corrupted(format!("shard {s} section too short")));
            }
            let n = u64::from_le_bytes(slice[..8].try_into().expect("8-byte slice"));
            if n != (slice.len() - 8) as u64 {
                return Err(corrupted(format!(
                    "shard {s} section length prefix does not match the payload"
                )));
            }
            (off + 8, len - 8)
        };
        let mut engine = prototype.clone();
        engine.restore_mapped(map, engine_off, engine_len, residency)?;
        let id_map = id_maps.as_ref().map(|maps| maps[s].clone());
        validate_shard(s, &engine, &manifest, id_map.as_deref())?;
        states.push(shard_state(engine, base_epoch, id_map));
    }
    Ok(DecodedFleet {
        states,
        router: Some(manifest.router),
    })
}

/// The decoded `MANI` section.
struct Manifest {
    mapped: bool,
    router: ShardRouter,
    num_shards: usize,
    lens: Vec<u64>,
}

fn parse_manifest(mani: &mut SectionReader<'_>) -> Result<Manifest> {
    let version = mani.get_u32()?;
    if version != MANIFEST_VERSION {
        return Err(corrupted(format!(
            "unknown manifest version {version} (reader supports {MANIFEST_VERSION})"
        )));
    }
    let mapped = match mani.get_u8()? {
        0 => false,
        1 => true,
        other => return Err(corrupted(format!("invalid ownership-mode byte {other}"))),
    };
    let router = ShardRouter::decode(mani)?;
    let num_shards = mani.get_usize()?;
    if num_shards == 0 || num_shards > MAX_SHARDS {
        return Err(corrupted(format!("invalid shard count {num_shards}")));
    }
    let lens = mani.get_u64s()?;
    if lens.len() != num_shards {
        return Err(corrupted(
            "per-shard length table does not match shard count",
        ));
    }
    mani.expect_end()?;
    Ok(Manifest {
        mapped,
        router,
        num_shards,
        lens,
    })
}

fn parse_id_maps(imap: &mut SectionReader<'_>, num_shards: usize) -> Result<Vec<Arc<Vec<u64>>>> {
    let count = imap.get_usize()?;
    if count != num_shards {
        return Err(corrupted("id-map table does not match shard count"));
    }
    let maps = (0..num_shards)
        .map(|_| imap.get_u64s().map(Arc::new))
        .collect::<Result<Vec<_>>>()?;
    imap.expect_end()?;
    // The same invariant `from_prebuilt` enforces: a global id may be
    // owned by at most one shard, or merged result sets would contain
    // duplicates.
    let mut all_ids: Vec<u64> = maps.iter().flat_map(|m| m.iter().copied()).collect();
    all_ids.sort_unstable();
    if all_ids.windows(2).any(|w| w[0] == w[1]) {
        return Err(corrupted("global ids collide across shard id maps"));
    }
    Ok(maps)
}

/// Cross-checks one restored shard engine against the manifest.
fn validate_shard<I: AnnIndex>(
    s: usize,
    engine: &I,
    manifest: &Manifest,
    id_map: Option<&Vec<u64>>,
) -> Result<()> {
    if engine.len() as u64 != manifest.lens[s] {
        return Err(corrupted(format!(
            "shard {s} restored {} live vectors, manifest recorded {}",
            engine.len(),
            manifest.lens[s]
        )));
    }
    if let Some(map) = id_map {
        if map.len() != engine.len() {
            return Err(corrupted(format!(
                "shard {s} id map covers {} ids for {} vectors",
                map.len(),
                engine.len()
            )));
        }
    } else {
        // Global-id fleets maintain the invariant that every live id is
        // owned by the shard the router assigns it to (construction and
        // every insert/remove preserve it). A checksum-valid snapshot
        // violating it — e.g. one shard's payload duplicated into
        // another's section — would serve duplicate results and ids
        // that `remove` can never reach, so reject it here. This also
        // guarantees cross-shard live-id disjointness.
        for id in engine.ids() {
            let owner = manifest.router.route(id, manifest.num_shards);
            if owner != s {
                return Err(corrupted(format!(
                    "shard {s} holds live id {id}, which the router assigns to \
                     shard {owner}"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_tags_are_unique_three_digit_ascii() {
        assert_eq!(&shard_tag(0), b"S000");
        assert_eq!(&shard_tag(7), b"S007");
        assert_eq!(&shard_tag(42), b"S042");
        assert_eq!(&shard_tag(998), b"S998");
        let mut seen = std::collections::HashSet::new();
        for s in 0..MAX_SHARDS {
            assert!(seen.insert(shard_tag(s)), "duplicate tag for shard {s}");
        }
    }
}
