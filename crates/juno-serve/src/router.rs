//! Deterministic id → shard routing.
//!
//! The router decides which shard *owns* each point id. Ownership is a pure
//! function of the id (never of the vector's position in a scan), so the
//! same router always reproduces the same partition — the property the
//! shard-parity differential suite and snapshot restore both rely on.

use juno_common::error::{Error, Result};
use juno_data::snapshot::{SectionReader, SectionWriter};

/// The largest shard count the serving layer supports (bounded by the
/// three-digit per-shard snapshot section tags `S000`..`S998`).
pub const MAX_SHARDS: usize = 999;

/// Deterministic assignment of point ids to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRouter {
    /// Mixes the id through splitmix64 before reducing modulo the shard
    /// count — spreads adjacent ids (the common allocation pattern) evenly.
    Hash {
        /// Salt XOR-ed into the id before mixing, so two fleets over the
        /// same data can be partitioned differently.
        seed: u64,
    },
    /// Plain `id % shards` — interleaves consecutive ids round-robin.
    Modulo,
}

/// Finalizer of splitmix64: a full-avalanche 64-bit mix.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ShardRouter {
    /// The shard owning `id` in a fleet of `num_shards`.
    #[inline]
    pub fn route(&self, id: u64, num_shards: usize) -> usize {
        if num_shards <= 1 {
            return 0;
        }
        match self {
            ShardRouter::Hash { seed } => (splitmix64(id ^ seed) % num_shards as u64) as usize,
            ShardRouter::Modulo => (id % num_shards as u64) as usize,
        }
    }

    /// Serialises the router into a snapshot section (tag byte + seed).
    pub(crate) fn encode(&self, w: &mut SectionWriter) {
        match self {
            ShardRouter::Hash { seed } => {
                w.put_u8(0);
                w.put_u64(*seed);
            }
            ShardRouter::Modulo => {
                w.put_u8(1);
                w.put_u64(0);
            }
        }
    }

    /// Inverse of [`ShardRouter::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] for an unknown router tag.
    pub(crate) fn decode(r: &mut SectionReader<'_>) -> Result<Self> {
        let tag = r.get_u8()?;
        let seed = r.get_u64()?;
        match tag {
            0 => Ok(ShardRouter::Hash { seed }),
            1 => Ok(ShardRouter::Modulo),
            other => Err(Error::corrupted(format!(
                "sharded snapshot: unknown router tag {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for router in [ShardRouter::Hash { seed: 42 }, ShardRouter::Modulo] {
            for shards in [1usize, 2, 4, 7] {
                for id in 0..500u64 {
                    let s = router.route(id, shards);
                    assert!(s < shards);
                    assert_eq!(s, router.route(id, shards), "stable");
                }
            }
        }
    }

    #[test]
    fn hash_routing_is_roughly_balanced() {
        let router = ShardRouter::Hash { seed: 7 };
        let shards = 4;
        let mut counts = [0usize; 4];
        for id in 0..4_000u64 {
            counts[router.route(id, shards)] += 1;
        }
        for &c in &counts {
            assert!((700..=1_300).contains(&c), "skewed partition: {counts:?}");
        }
    }

    #[test]
    fn modulo_routing_interleaves() {
        let router = ShardRouter::Modulo;
        assert_eq!(router.route(0, 3), 0);
        assert_eq!(router.route(1, 3), 1);
        assert_eq!(router.route(5, 3), 2);
        assert_eq!(router.route(5, 1), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        for router in [ShardRouter::Hash { seed: 0xDEAD }, ShardRouter::Modulo] {
            let mut w = SectionWriter::new();
            router.encode(&mut w);
            let bytes = w.finish();
            let mut snap = juno_data::snapshot::SnapshotWriter::new(0);
            let mut s = SectionWriter::new();
            s.put_raw(&bytes);
            snap.add_section(*b"RTST", s);
            let all = snap.finish();
            let parsed = juno_data::snapshot::Snapshot::parse(&all).unwrap();
            let mut r = parsed.section(*b"RTST").unwrap();
            assert_eq!(ShardRouter::decode(&mut r).unwrap(), router);
        }
        // Unknown tags are rejected, not misparsed.
        let mut w = SectionWriter::new();
        w.put_u8(9);
        w.put_u64(0);
        let mut snap = juno_data::snapshot::SnapshotWriter::new(0);
        snap.add_section(*b"RTST", w);
        let all = snap.finish();
        let parsed = juno_data::snapshot::Snapshot::parse(&all).unwrap();
        let mut r = parsed.section(*b"RTST").unwrap();
        assert!(ShardRouter::decode(&mut r).is_err());
    }
}
