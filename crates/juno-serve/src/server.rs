//! The online serving front-end: single-query ingress, dynamic batching,
//! deadline-aware scatter-gather execution, per-request QoS accounting.
//!
//! ```text
//!  client threads                 dispatcher threads          shard fleet
//!  ─────────────                  ──────────────────          ───────────
//!  query() ──┐                      ┌─ next_batch() ─┐
//!  query() ──┼─▶ Batcher (bounded, ─┤                ├─▶ FleetReader::
//!  query() ──┘   size-or-deadline)  └─ next_batch() ─┘   search_batch_deadline
//!      ▲                                   │                    │
//!      └────────── per-request reply ◀─────┴─ truncate to k ◀───┘
//! ```
//!
//! A [`Server`] owns a sharded fleet and a pool of dispatcher threads. Client
//! threads call [`Server::query`] concurrently; each call is admitted into
//! the bounded [`Batcher`] (or rejected with [`Error::Overloaded`]), coalesced
//! into a batch by the size-or-deadline trigger, executed through the
//! degraded read path (so a stalled shard costs coverage, not the deadline),
//! and answered with the merged result plus per-request [`ServeStats`].
//!
//! Mixed-`k` batches execute at the largest requested `k` and truncate per
//! request: the fleet's merge is a total order over (score, id), so the
//! top-`k` list is a prefix of the top-`k_max` list and truncation is exact —
//! a request batched with strangers gets bit-identical neighbours to one
//! served alone.
//!
//! QoS is observable two ways: per-request ([`ServeStats`]: queue wait,
//! batch size, coverage, shard statuses) and aggregate
//! ([`Server::metrics_snapshot`]: latency/queue-wait/batch-size histograms
//! with p50/p99/p999, queue depth, admission rejections, breaker state
//! flips).

use crate::batcher::{Batcher, BatcherConfig};
use crate::health::BreakerState;
use crate::shard::{ShardStatus, ShardedIndex};
use juno_common::error::{Error, Result};
use juno_common::index::{AnnIndex, SearchResult};
use juno_common::metrics::{Registry, RegistrySnapshot};
use juno_common::vector::VectorSet;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Tuning for a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Dispatch a batch as soon as this many requests are pending.
    pub max_batch: usize,
    /// Dispatch once the oldest pending request has waited this long.
    pub max_delay: Duration,
    /// Ingress bound: requests beyond this many pending are rejected with
    /// [`Error::Overloaded`].
    pub queue_depth: usize,
    /// Latency budget handed to
    /// [`FleetReader::search_batch_deadline`](crate::FleetReader::search_batch_deadline)
    /// for each batch; shards that miss it cost coverage, not time.
    pub search_budget: Duration,
    /// Dispatcher threads pulling batches off the ingress queue. One is
    /// enough unless batch execution should overlap with batch formation.
    pub dispatchers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay: Duration::from_millis(1),
            queue_depth: 1024,
            search_budget: Duration::from_millis(50),
            dispatchers: 1,
        }
    }
}

/// Per-request QoS accounting, returned alongside every result.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Time between admission and the dispatcher picking the batch up.
    pub queue_wait: Duration,
    /// Number of requests in the batch this request rode in.
    pub batch_size: usize,
    /// Fraction of shards that contributed (1.0 = exact result).
    pub coverage: f64,
    /// Outcome per shard for this request's batch, indexed by shard id.
    pub shards: Vec<ShardStatus>,
}

/// A completed request: the merged search result plus its QoS stats.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// Merged top-k (already truncated to the request's own `k`).
    pub result: SearchResult,
    /// How the request was served.
    pub stats: ServeStats,
}

/// One queued request: the query, its `k`, and the reply channel its client
/// blocks on.
#[derive(Debug)]
struct Request {
    query: Vec<f32>,
    k: usize,
    reply: mpsc::Sender<Result<ServeResponse>>,
}

/// The online serving front-end. See the [module docs](self).
///
/// Dropping the server closes ingress (new [`Server::query`] calls fail
/// with [`Error::Unavailable`]), flushes every admitted request through a
/// final batch, and joins the dispatcher threads — admitted work is never
/// silently dropped.
#[derive(Debug)]
pub struct Server<I: AnnIndex + 'static> {
    fleet: Arc<ShardedIndex<I>>,
    batcher: Arc<Batcher<Request>>,
    metrics: Arc<Registry>,
    dim: usize,
    dispatchers: Vec<std::thread::JoinHandle<()>>,
}

impl<I: AnnIndex + 'static> Server<I> {
    /// Spawns the dispatcher threads and opens ingress.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when `max_batch`, `queue_depth` or
    /// `dispatchers` is zero.
    pub fn spawn(fleet: Arc<ShardedIndex<I>>, config: ServerConfig) -> Result<Self> {
        if config.dispatchers == 0 {
            return Err(Error::invalid_config("server needs ≥ 1 dispatcher"));
        }
        let batcher = Arc::new(Batcher::new(BatcherConfig {
            max_batch: config.max_batch,
            max_delay: config.max_delay,
            queue_depth: config.queue_depth,
        })?);
        let metrics = Arc::new(Registry::new());
        let dim = fleet.reader().shard(0).index().dim();
        let dispatchers = (0..config.dispatchers)
            .map(|d| {
                let fleet = fleet.clone();
                let batcher = batcher.clone();
                let metrics = metrics.clone();
                std::thread::Builder::new()
                    .name(format!("juno-serve-dispatch-{d}"))
                    .spawn(move || dispatch_loop(&fleet, &batcher, &metrics, config.search_budget))
                    .expect("spawn dispatcher")
            })
            .collect();
        Ok(Self {
            fleet,
            batcher,
            metrics,
            dim,
            dispatchers,
        })
    }

    /// Serves one query: admits it, waits for its batch to execute, returns
    /// the merged top-`k` plus [`ServeStats`].
    ///
    /// Safe to call from any number of threads concurrently; the calling
    /// thread blocks until the reply (bounded by roughly
    /// `max_delay + search_budget` plus queueing).
    ///
    /// # Errors
    ///
    /// * [`Error::Overloaded`] — ingress queue at `queue_depth`; shed or
    ///   back off.
    /// * [`Error::DimensionMismatch`] / [`Error::InvalidConfig`] — malformed
    ///   request (checked before admission; a bad request never occupies a
    ///   queue slot).
    /// * [`Error::Unavailable`] — server shutting down.
    pub fn query(&self, query: &[f32], k: usize) -> Result<ServeResponse> {
        if query.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                actual: query.len(),
            });
        }
        if k == 0 {
            return Err(Error::invalid_config("k must be ≥ 1"));
        }
        let started = Instant::now();
        let (reply, response) = mpsc::channel();
        let admit = self.batcher.push(Request {
            query: query.to_vec(),
            k,
            reply,
        });
        if let Err(err) = admit {
            if matches!(err, Error::Overloaded(_)) {
                self.metrics.counter("serve.rejected").inc();
            }
            return Err(err);
        }
        self.metrics.counter("serve.admitted").inc();
        self.metrics
            .histogram("serve.ingress_depth")
            .record(self.batcher.len() as u64);
        let out = response
            .recv()
            .map_err(|_| Error::unavailable("server shut down before replying"))?;
        if out.is_ok() {
            self.metrics
                .histogram("serve.latency_ns")
                .record_duration(started.elapsed());
        }
        out
    }

    /// Point-in-time aggregate QoS metrics: `serve.latency_ns`,
    /// `serve.queue_wait_ns` and `serve.batch_size` histograms (p50/p99/p999
    /// via [`juno_common::metrics::HistogramSnapshot`]), admission counters
    /// (`serve.admitted` / `serve.rejected`), dispatch counters, the current
    /// `serve.queue_depth` gauge and cumulative `serve.breaker_transitions`.
    /// When the fleet has a WAL attached, the durability plane's `wal.*`
    /// counters and histograms are folded into the same snapshot.
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.metrics
            .gauge("serve.queue_depth")
            .set(self.batcher.len() as i64);
        self.metrics
            .gauge("serve.breaker_transitions")
            .set(self.fleet.health().total_transitions() as i64);
        let mut snap = self.metrics.snapshot();
        snap.merge(&self.fleet.wal_metrics());
        snap
    }

    /// Every shard breaker's current state (for dashboards and tests).
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.fleet.breaker_states()
    }

    /// The fleet this server fronts.
    pub fn fleet(&self) -> &Arc<ShardedIndex<I>> {
        &self.fleet
    }

    /// Current ingress queue depth.
    pub fn queue_depth(&self) -> usize {
        self.batcher.len()
    }

    /// Closes ingress: subsequent [`Server::query`] calls fail with
    /// [`Error::Unavailable`], while already-admitted requests are flushed
    /// through a final batch and answered. Idempotent. [`Drop`] calls this
    /// too and then joins the dispatcher threads, so an explicit call is
    /// only needed to stop admitting before the last handle goes away
    /// (e.g. while other threads still hold clones of the server's `Arc`).
    pub fn shutdown(&self) {
        self.batcher.close();
    }
}

/// Mutation passthroughs, available when the fleet's engine supports the
/// clone-and-publish write path. When the fleet has a WAL attached (see
/// [`ShardedIndex::enable_wal`]), each acknowledged call here is durable per
/// the configured [`FsyncPolicy`](juno_common::wal::FsyncPolicy) — the record
/// is on the log *before* concurrent queries can observe the new state.
impl<I: AnnIndex + Clone + 'static> Server<I> {
    /// Inserts one vector through the fleet write path; returns its global
    /// id. Concurrent queries keep serving their pinned epoch.
    pub fn insert(&self, vector: &[f32]) -> Result<u64> {
        self.fleet.insert_shared(vector)
    }

    /// Removes `id`; `Ok(false)` when it was not live.
    pub fn remove(&self, id: u64) -> Result<bool> {
        self.fleet.remove_shared(id)
    }

    /// Checkpoints the fleet's durability plane (see
    /// [`ShardedIndex::checkpoint`]): snapshots the fleet, stamps the WAL,
    /// prunes covered segments. Errors with
    /// [`Error::InvalidConfig`] when no WAL is attached.
    pub fn checkpoint(&self) -> Result<crate::durability::CheckpointReport> {
        self.fleet.checkpoint()
    }
}

impl<I: AnnIndex + 'static> Drop for Server<I> {
    fn drop(&mut self) {
        self.batcher.close();
        for handle in self.dispatchers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One dispatcher: pull batches until ingress is closed and drained, execute
/// each through the degraded read path, reply per request.
fn dispatch_loop<I: AnnIndex + 'static>(
    fleet: &ShardedIndex<I>,
    batcher: &Batcher<Request>,
    metrics: &Registry,
    search_budget: Duration,
) {
    let queue_wait = metrics.histogram("serve.queue_wait_ns");
    let batch_sizes = metrics.histogram("serve.batch_size");
    let coverage_pct = metrics.histogram("serve.coverage_pct");
    let batches = metrics.counter("serve.dispatched_batches");
    let degraded = metrics.counter("serve.degraded_batches");
    let failed = metrics.counter("serve.failed_batches");
    while let Some(mut batch) = batcher.next_batch() {
        let picked_at = Instant::now();
        let batch_size = batch.len();
        batches.inc();
        batch_sizes.record(batch_size as u64);
        for pending in &batch {
            queue_wait.record_duration(picked_at.duration_since(pending.enqueued));
        }
        // Execute at the largest requested k; per-request truncation below
        // is exact because the merged list is totally ordered by (score, id)
        // — top-k is a prefix of top-k_max.
        let k_max = batch.iter().map(|p| p.item.k).max().unwrap_or(1);
        let rows: Vec<Vec<f32>> = batch
            .iter_mut()
            .map(|p| std::mem::take(&mut p.item.query))
            .collect();
        let executed = VectorSet::from_rows(rows).and_then(|queries| {
            fleet
                .reader()
                .search_batch_deadline(&queries, k_max, search_budget)
        });
        match executed {
            Ok(degraded_batch) => {
                coverage_pct.record((degraded_batch.coverage * 100.0).round() as u64);
                if degraded_batch.coverage < 1.0 {
                    degraded.inc();
                }
                let shards = degraded_batch.shards;
                let coverage = degraded_batch.coverage;
                for (pending, mut result) in batch.into_iter().zip(degraded_batch.results) {
                    result.neighbors.truncate(pending.item.k);
                    let response = ServeResponse {
                        result,
                        stats: ServeStats {
                            queue_wait: picked_at.duration_since(pending.enqueued),
                            batch_size,
                            coverage,
                            shards: shards.clone(),
                        },
                    };
                    // A client that gave up (dropped the receiver) is fine.
                    let _ = pending.item.reply.send(Ok(response));
                }
            }
            Err(err) => {
                failed.inc();
                for pending in batch {
                    let _ = pending.item.reply.send(Err(err.clone()));
                }
            }
        }
    }
}

// Compile-time proof that a server can be shared across client threads for
// any engine: `AnnIndex: Send + Sync` must propagate through every field
// (the reply senders live inside the batcher mutex, which restores `Sync`).
const _: () = {
    #[allow(dead_code)]
    fn assert_send_sync<T: Send + Sync>() {}
    #[allow(dead_code)]
    fn check<I: AnnIndex + 'static>() {
        assert_send_sync::<Server<I>>();
        assert_send_sync::<Batcher<Request>>();
    }
};
