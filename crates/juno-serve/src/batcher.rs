//! Bounded ingress queue with admission control and size-or-deadline batch
//! formation.
//!
//! The online front-end ([`crate::server::Server`]) accepts one query per
//! client call but executes whole batches — the fast-scan engine amortises
//! LUT builds and cache traffic across queries, so a batch of 32 costs far
//! less than 32 singles. The [`Batcher`] sits between the two:
//!
//! * **Admission control** — the queue is bounded
//!   ([`BatcherConfig::queue_depth`]); a push beyond the bound is rejected
//!   with [`Error::Overloaded`] immediately instead of building an unbounded
//!   backlog whose every entry would miss its deadline anyway. Rejecting at
//!   ingress keeps the latency of *admitted* requests predictable.
//! * **Size-or-deadline trigger** — a batch is dispatched as soon as
//!   [`BatcherConfig::max_batch`] requests are pending (size trigger) *or*
//!   the oldest pending request has waited [`BatcherConfig::max_delay`]
//!   (deadline trigger), whichever comes first. Low load degenerates to
//!   at-most-`max_delay` added latency; high load degenerates to full
//!   batches with no artificial delay.
//!
//! The queue itself is a `Mutex<VecDeque>` plus one condvar: pushes wake a
//! dispatcher, and the deadline trigger is a timed wait until the oldest
//! request's dispatch deadline. Every handoff is O(1) per request; there is
//! no per-item allocation beyond the queue slot.

use juno_common::error::{Error, Result};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning for a [`Batcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Dispatch as soon as this many requests are pending (size trigger).
    pub max_batch: usize,
    /// Dispatch once the oldest pending request has waited this long
    /// (deadline trigger), even if the batch is not full.
    pub max_delay: Duration,
    /// Admission bound: a push while this many requests are already queued
    /// is rejected with [`Error::Overloaded`].
    pub queue_depth: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay: Duration::from_millis(1),
            queue_depth: 1024,
        }
    }
}

impl BatcherConfig {
    fn validate(&self) -> Result<()> {
        if self.max_batch == 0 {
            return Err(Error::invalid_config("batcher max_batch must be ≥ 1"));
        }
        if self.queue_depth == 0 {
            return Err(Error::invalid_config("batcher queue_depth must be ≥ 1"));
        }
        Ok(())
    }
}

/// A queued item plus its admission timestamp (the batch former's deadline
/// trigger keys off the *oldest* stamp; the server derives queue-wait from
/// it too).
#[derive(Debug)]
pub struct Pending<T> {
    /// When the item was admitted.
    pub enqueued: Instant,
    /// The item itself.
    pub item: T,
}

#[derive(Debug)]
struct QueueInner<T> {
    queue: VecDeque<Pending<T>>,
    closed: bool,
}

/// The bounded, batch-forming ingress queue. See the [module docs](self).
///
/// All methods take `&self`; producers ([`Batcher::push`]) and consumers
/// ([`Batcher::next_batch`]) run from any number of threads.
#[derive(Debug)]
pub struct Batcher<T> {
    config: BatcherConfig,
    inner: Mutex<QueueInner<T>>,
    /// Wakes dispatchers blocked in [`Batcher::next_batch`] (new work or
    /// close).
    available: Condvar,
}

impl<T> Batcher<T> {
    /// An empty open queue.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when `max_batch` or `queue_depth` is zero.
    pub fn new(config: BatcherConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            inner: Mutex::new(QueueInner {
                queue: VecDeque::with_capacity(config.queue_depth.min(4096)),
                closed: false,
            }),
            available: Condvar::new(),
        })
    }

    /// The batcher's configuration.
    pub fn config(&self) -> BatcherConfig {
        self.config
    }

    /// Admits `item`, or rejects it.
    ///
    /// # Errors
    ///
    /// * [`Error::Overloaded`] — the queue is at `queue_depth`; the caller
    ///   should shed the request (retrying immediately only deepens the
    ///   overload).
    /// * [`Error::Unavailable`] — the queue was closed (server shutting
    ///   down).
    pub fn push(&self, item: T) -> Result<()> {
        let mut inner = self.inner.lock().expect("batcher lock");
        if inner.closed {
            return Err(Error::unavailable("ingress queue closed"));
        }
        if inner.queue.len() >= self.config.queue_depth {
            return Err(Error::overloaded(format!(
                "ingress queue full ({} pending)",
                inner.queue.len()
            )));
        }
        inner.queue.push_back(Pending {
            enqueued: Instant::now(),
            item,
        });
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until a batch is ready and returns it (oldest first, at most
    /// `max_batch` items), or `None` once the queue is closed *and* drained.
    ///
    /// A batch is ready when `max_batch` items are pending, when the oldest
    /// item has waited `max_delay`, or when the queue is closing (pending
    /// items are flushed promptly rather than waiting out their delay).
    pub fn next_batch(&self) -> Option<Vec<Pending<T>>> {
        let mut inner = self.inner.lock().expect("batcher lock");
        loop {
            if inner.queue.len() >= self.config.max_batch || inner.closed {
                break;
            }
            match inner.queue.front() {
                None => {
                    inner = self.available.wait(inner).expect("batcher lock");
                }
                Some(oldest) => {
                    let deadline = oldest.enqueued + self.config.max_delay;
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, _timeout) = self
                        .available
                        .wait_timeout(inner, deadline - now)
                        .expect("batcher lock");
                    inner = guard;
                }
            }
        }
        if inner.queue.is_empty() {
            debug_assert!(inner.closed);
            return None;
        }
        let take = inner.queue.len().min(self.config.max_batch);
        let batch: Vec<Pending<T>> = inner.queue.drain(..take).collect();
        let more = !inner.queue.is_empty();
        drop(inner);
        if more {
            // Leftovers (len > max_batch) may already satisfy a trigger:
            // hand them to another dispatcher instead of letting it sleep
            // a full max_delay.
            self.available.notify_one();
        }
        Some(batch)
    }

    /// Current queue depth (pending, not yet dispatched).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("batcher lock").queue.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: future pushes fail with [`Error::Unavailable`],
    /// blocked dispatchers flush what is pending and then receive `None`.
    pub fn close(&self) {
        self.inner.lock().expect("batcher lock").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn cfg(max_batch: usize, max_delay: Duration, queue_depth: usize) -> BatcherConfig {
        BatcherConfig {
            max_batch,
            max_delay,
            queue_depth,
        }
    }

    #[test]
    fn zero_sizes_are_rejected_at_construction() {
        assert!(matches!(
            Batcher::<u32>::new(cfg(0, Duration::from_millis(1), 8)),
            Err(Error::InvalidConfig(_))
        ));
        assert!(matches!(
            Batcher::<u32>::new(cfg(4, Duration::from_millis(1), 0)),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn size_trigger_dispatches_a_full_batch_without_waiting() {
        // Huge delay: only the size trigger can fire.
        let b = Batcher::new(cfg(4, Duration::from_secs(60), 64)).unwrap();
        for i in 0..4u32 {
            b.push(i).unwrap();
        }
        let started = Instant::now();
        let batch = b.next_batch().expect("batch");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "waited on delay"
        );
        assert_eq!(
            batch.iter().map(|p| p.item).collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "oldest first"
        );
        assert!(b.is_empty());
    }

    #[test]
    fn deadline_trigger_dispatches_a_partial_batch() {
        let b = Batcher::new(cfg(64, Duration::from_millis(5), 64)).unwrap();
        b.push(7u32).unwrap();
        let started = Instant::now();
        let batch = b.next_batch().expect("batch");
        let waited = started.elapsed();
        assert_eq!(batch.len(), 1);
        assert!(
            waited >= Duration::from_millis(4),
            "fired early: {waited:?}"
        );
        assert!(
            waited < Duration::from_secs(5),
            "deadline trigger stalled: {waited:?}"
        );
    }

    #[test]
    fn admission_control_rejects_beyond_queue_depth() {
        // max_batch == queue_depth so the drain below hits the size trigger
        // instead of waiting out the (long) deadline trigger.
        let b = Batcher::new(cfg(3, Duration::from_secs(60), 3)).unwrap();
        for i in 0..3u32 {
            b.push(i).unwrap();
        }
        assert!(matches!(b.push(99), Err(Error::Overloaded(_))));
        // Draining makes room again.
        let batch = b.next_batch().expect("batch");
        assert_eq!(batch.len(), 3);
        b.push(100).unwrap();
    }

    #[test]
    fn close_flushes_pending_then_signals_exhaustion() {
        let b = Batcher::new(cfg(64, Duration::from_secs(60), 64)).unwrap();
        b.push(1u32).unwrap();
        b.push(2u32).unwrap();
        b.close();
        assert!(matches!(b.push(3), Err(Error::Unavailable(_))));
        // Pending items flush immediately (not after the 60s delay).
        let started = Instant::now();
        let batch = b.next_batch().expect("flush");
        assert_eq!(batch.len(), 2);
        assert!(started.elapsed() < Duration::from_secs(5));
        assert!(b.next_batch().is_none(), "drained + closed → None");
    }

    #[test]
    fn close_wakes_a_blocked_dispatcher() {
        let b = Arc::new(Batcher::<u32>::new(cfg(4, Duration::from_secs(60), 8)).unwrap());
        let waiter = {
            let b = b.clone();
            std::thread::spawn(move || b.next_batch())
        };
        std::thread::sleep(Duration::from_millis(20));
        b.close();
        assert!(waiter.join().unwrap().is_none());
    }

    #[test]
    fn oversized_backlog_is_split_into_max_batch_chunks() {
        let b = Batcher::new(cfg(4, Duration::ZERO, 64)).unwrap();
        for i in 0..10u32 {
            b.push(i).unwrap();
        }
        let sizes: Vec<usize> = (0..3).map(|_| b.next_batch().unwrap().len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        assert!(b.is_empty());
    }
}
