//! The sharded, concurrently readable serving index.
//!
//! [`ShardedIndex`] wraps `S` replicas of an [`AnnIndex`] behind per-shard
//! **epoch pointers**: each shard publishes its current state as an
//! `Arc<ShardState<I>>` guarded by an `RwLock` that is only ever held for
//! the duration of a pointer clone or swap. Readers pin a whole-fleet
//! snapshot ([`FleetReader`]) in O(S) pointer clones and then search without
//! taking any lock at all; writers mutate a **clone** of a shard's state and
//! publish it with a pointer swap (clone-and-publish), so readers never
//! block on insert / remove / compaction, and a pinned reader keeps
//! observing its epoch bit-identically for as long as it lives.
//!
//! # Ownership and bit-parity
//!
//! The fleet has two construction modes with different guarantees:
//!
//! * **Global-id mode** ([`ShardedIndex::from_monolith`]) — every shard is a
//!   full replica of the monolithic index in which the points *not* owned by
//!   the shard (per the [`ShardRouter`]) are tombstoned. All replicas share
//!   the monolith's trained state (coarse centroids, PQ codebooks, threshold
//!   density maps), and every insert is applied to **every** replica — then
//!   tombstoned on the non-owners within the same atomic publish — so the
//!   id allocators and the density calibration stay in lockstep with a
//!   monolith receiving the same operations. Because each live point is
//!   scored by exactly one shard with exactly the monolith's arithmetic, the
//!   deterministic tie-by-id merge
//!   ([`juno_common::topk::merge_neighbors`]) reconstructs the monolith's
//!   ids and distance **bits** — the contract `tests/shard_parity.rs` pins.
//! * **Mapped mode** ([`ShardedIndex::from_prebuilt`]) — pre-partitioned
//!   sub-indexes with a local→global id map per shard, for engines without
//!   mutation support (Flat, HNSW, IVF-Flat). Such fleets are read-only;
//!   exact engines (Flat) still merge bit-identically to the monolith when
//!   each shard's rows ascend in global id.
//!
//! Searches gather per-shard results with
//! [`SearchStats::merge_scatter`] (work counters sum, wall-clock stage
//! times take the max — the shard scans ran concurrently).
//!
//! # Failure model
//!
//! The exact paths above treat any shard error as fatal to the request. The
//! **degraded read path** ([`FleetReader::search_deadline`] /
//! [`FleetReader::search_batch_deadline`]) instead treats shards as
//! independently failable: each shard scan runs on its own detached worker,
//! transient errors are retried per [`crate::health::RetryPolicy`], shards
//! whose [`crate::health::CircuitBreaker`] is open are skipped outright, and
//! whatever has not answered by the deadline is abandoned. The caller gets a
//! [`DegradedResult`]: the merged top-k over the responsive shards, a
//! [`ShardStatus`] per shard, and the covered fraction. With every shard
//! healthy the merged output is bit-identical to [`FleetReader::search`].
//!
//! Writer paths degrade differently — they roll back: a failure (or worker
//! panic) anywhere in a multi-shard insert republishes every shard's pre-op
//! state, so readers never observe a half-applied batch. All failure points
//! are instrumented for deterministic chaos testing via
//! [`crate::fault::FaultPlan`].

use crate::durability::{CheckpointReport, Durability, DurabilityConfig, RecoveryReport};
use crate::fault::{FaultOp, FaultPlan};
use crate::health::{BreakerConfig, BreakerState, HealthTracker, RetryPolicy};
use crate::persist;
use crate::router::{ShardRouter, MAX_SHARDS};
use juno_common::error::{Error, Result};
use juno_common::index::{AnnIndex, DriftReport, SearchResult, SearchStats};
use juno_common::metrics::{Registry, RegistrySnapshot};
use juno_common::parallel;
use juno_common::topk::{merge_neighbors, ScoreOrder};
use juno_common::vector::VectorSet;
use juno_common::wal::{self, Wal, WalRecord};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// One published shard state: the index, the epoch that published it, and
/// (mapped fleets only) the local→global id translation.
#[derive(Debug, Clone)]
pub struct ShardState<I> {
    index: I,
    epoch: u64,
    id_map: Option<Arc<Vec<u64>>>,
}

impl<I: AnnIndex> ShardState<I> {
    /// The shard's index at this epoch.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// The epoch counter this state was published at (starts at 0, bumps on
    /// every publish).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// A shard slot: the lock is held only to clone or swap the `Arc`, never
/// across a search or a mutation.
#[derive(Debug)]
struct Shard<I> {
    slot: RwLock<Arc<ShardState<I>>>,
    /// Set by mutations (tails / tombstones may exist), cleared by a
    /// compaction sweep: lets [`ShardedIndex::compact_all_shared`] skip the
    /// clone-and-publish of shards with nothing to compact. Atomic so
    /// writers flag it under the fleet writer lock without touching `slot`.
    dirty: AtomicBool,
}

impl<I> Shard<I> {
    /// `dirty` starts `true` for shards whose engine may hold uncompacted
    /// state (fresh replicas, restored global-id shards) and `false` for
    /// read-only mapped shards, which never have anything to compact.
    fn new(state: ShardState<I>, dirty: bool) -> Self {
        Self {
            slot: RwLock::new(Arc::new(state)),
            dirty: AtomicBool::new(dirty),
        }
    }
}

/// A pinned, immutable point-in-time view of the whole fleet.
///
/// Pinning is O(S) `Arc` clones; afterwards every search on the reader runs
/// lock-free against exactly the pinned epochs — concurrent writers publish
/// new epochs without disturbing it (snapshot isolation). Re-running a
/// search on the same reader is bit-identical no matter what the writers
/// did in between.
#[derive(Debug, Clone)]
pub struct FleetReader<I: AnnIndex> {
    states: Vec<Arc<ShardState<I>>>,
    /// Shared with the fleet (and every other reader): breaker decisions
    /// made by one reader's degraded searches benefit the next.
    health: Arc<HealthTracker>,
    /// The fault plan pinned when the reader was created (chaos testing
    /// only; `None` in production).
    fault: Option<Arc<FaultPlan>>,
}

/// Per-shard outcome of a deadline-aware degraded search.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardStatus {
    /// The shard answered within the deadline; its candidates are merged.
    Ok,
    /// The shard did not answer before the deadline; its worker was
    /// abandoned (it finishes in the background and is discarded).
    TimedOut,
    /// The shard's scan failed (after exhausting transient-error retries)
    /// or its worker panicked; the error is preserved verbatim.
    Failed(Error),
    /// The shard's circuit breaker was open, so it was skipped without
    /// being touched (and without spending deadline budget on it).
    SkippedOpen,
}

impl ShardStatus {
    /// `true` when the shard contributed candidates to the merged result.
    pub fn is_ok(&self) -> bool {
        matches!(self, ShardStatus::Ok)
    }
}

/// The outcome of [`FleetReader::search_deadline`]: the merged top-k over
/// every responsive shard plus an account of who responded.
#[derive(Debug, Clone)]
pub struct DegradedResult {
    /// Merged top-k from the responsive shards (bit-identical to
    /// [`FleetReader::search`] when `coverage == 1.0`).
    pub result: SearchResult,
    /// Outcome per shard, indexed by shard id.
    pub shards: Vec<ShardStatus>,
    /// Fraction of shards that contributed: `Ok` shards / total shards.
    pub coverage: f64,
}

impl DegradedResult {
    /// `true` when every shard contributed (the result is exact, not
    /// degraded).
    pub fn is_complete(&self) -> bool {
        self.shards.iter().all(ShardStatus::is_ok)
    }
}

/// The outcome of [`FleetReader::search_batch_deadline`]. The whole batch
/// shares one scatter: each shard scans the full batch on its worker, so the
/// per-shard statuses and coverage apply to every query in the batch.
#[derive(Debug, Clone)]
pub struct DegradedBatch {
    /// Merged per-query top-k lists, indexed by query.
    pub results: Vec<SearchResult>,
    /// Outcome per shard, indexed by shard id.
    pub shards: Vec<ShardStatus>,
    /// Fraction of shards that contributed: `Ok` shards / total shards.
    pub coverage: f64,
}

impl DegradedBatch {
    /// `true` when every shard contributed.
    pub fn is_complete(&self) -> bool {
        self.shards.iter().all(ShardStatus::is_ok)
    }
}

/// One shard's scan on the degraded path: fault injection, panic isolation,
/// and bounded retry for transient errors — everything that runs *on the
/// worker thread*, so a stall or panic here never touches the caller.
fn scan_shard_guarded<I: AnnIndex>(
    state: &ShardState<I>,
    s: usize,
    queries: &VectorSet,
    k: usize,
    deadline: Instant,
    fault: Option<&FaultPlan>,
    retry: RetryPolicy,
) -> Result<Vec<SearchResult>> {
    let mut attempt = 0u32;
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<SearchResult>> {
            if let Some(plan) = fault {
                plan.inject(s, FaultOp::Search)?;
            }
            // Inner thread budget 1: the scatter already gave this shard a
            // dedicated worker, and engine results are thread-invariant.
            state.index.search_batch_threads(queries, k, 1)
        }));
        let result = outcome.unwrap_or_else(|payload| {
            Err(Error::worker_panicked(format!(
                "shard {s} search worker: {}",
                parallel::panic_message(&*payload)
            )))
        });
        match result {
            Ok(batch) => return Ok(batch),
            Err(err) if err.is_retryable() && attempt < retry.max_retries => {
                attempt += 1;
                let sleep = retry.backoff_for(attempt);
                if Instant::now() + sleep >= deadline {
                    return Err(err); // no budget left to retry in
                }
                std::thread::sleep(sleep);
            }
            Err(err) => return Err(err),
        }
    }
}

impl<I: AnnIndex> FleetReader<I> {
    /// Number of shards pinned.
    pub fn num_shards(&self) -> usize {
        self.states.len()
    }

    /// The pinned epoch of every shard, in shard order.
    pub fn epochs(&self) -> Vec<u64> {
        self.states.iter().map(|s| s.epoch).collect()
    }

    /// Borrow of one pinned shard state.
    pub fn shard(&self, s: usize) -> &ShardState<I> {
        &self.states[s]
    }

    /// Total live vectors across all pinned shards.
    pub fn len(&self) -> usize {
        self.states.iter().map(|s| s.index.len()).sum()
    }

    /// Returns `true` when no shard holds a live vector.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remaps a shard's neighbours into the global id space and re-sorts
    /// under the merge order (mapped shards only; a no-op for global-id
    /// shards, whose lists already arrive merge-ordered).
    fn globalise(&self, s: usize, result: &mut SearchResult, order: ScoreOrder) {
        if let Some(map) = &self.states[s].id_map {
            for n in &mut result.neighbors {
                n.id = map[n.id as usize];
            }
            result.neighbors.sort_by(|a, b| order.cmp_neighbors(a, b));
        }
    }

    /// Gathers per-shard results for one query into the global top-k. Each
    /// entry carries its true shard index so a degraded gather (a subset of
    /// shards) still translates mapped ids correctly; the merge itself is
    /// order-independent (deterministic tie by id), so merging a subset is
    /// bit-identical to a fleet that only contained those shards.
    fn gather_indexed(
        &self,
        per_shard: Vec<(usize, SearchResult)>,
        k: usize,
        order: ScoreOrder,
    ) -> SearchResult {
        let mut stats = SearchStats::default();
        let mut simulated_us = 0.0f64;
        let mut lists = Vec::with_capacity(per_shard.len());
        for (s, mut result) in per_shard {
            self.globalise(s, &mut result, order);
            stats.merge_scatter(&result.stats);
            simulated_us = simulated_us.max(result.simulated_us);
            lists.push(result.neighbors);
        }
        SearchResult {
            neighbors: merge_neighbors(&lists, k, order),
            simulated_us,
            stats,
        }
    }

    /// Gathers a full (every-shard) scatter for one query.
    fn gather(&self, per_shard: Vec<SearchResult>, k: usize, order: ScoreOrder) -> SearchResult {
        self.gather_indexed(per_shard.into_iter().enumerate().collect(), k, order)
    }

    /// Scatter-gather search of one query: the shard scans fan out across
    /// the work-stealing pool (one task per shard, up to the default thread
    /// budget) and the per-shard top-k lists merge deterministically (tie by
    /// id) into the global top-k. Results are identical to a sequential
    /// shard loop — the scheduling only changes latency.
    ///
    /// # Errors
    ///
    /// Propagates the first shard error (dimension mismatch etc.).
    pub fn search(&self, query: &[f32], k: usize) -> Result<SearchResult> {
        let order = self.states[0].index.merge_order();
        let workers = self.states.len().min(parallel::default_threads());
        let per_shard = parallel::map(self.states.len(), workers, |s| {
            self.states[s].index.search(query, k)
        })?
        .into_iter()
        .collect::<Result<Vec<_>>>()?;
        Ok(self.gather(per_shard, k, order))
    }

    /// Scatter-gather batch search with an explicit worker-thread budget:
    /// the thread budget is split across the shards — up to `S` outer
    /// workers scan shards concurrently, each fanning its shard's batch
    /// through the engine's own batched path with the remaining budget.
    /// For JUNO and IVFPQ shards that path is the **cluster-major grouped
    /// executor**: each shard plans its local batch, routes it into a
    /// cluster→query-group schedule and streams every probed cluster's code
    /// blocks once per query group (with the per-worker batch arena reused
    /// across the whole shard batch). Per-query results then merge across
    /// shards under the usual deterministic order. `num_threads = 1`
    /// recovers the sequential shard-by-shard loop; results are identical —
    /// ids and distance bits — for every budget and execution strategy.
    ///
    /// # Errors
    ///
    /// Propagates the first per-shard error encountered.
    pub fn search_batch_threads(
        &self,
        queries: &VectorSet,
        k: usize,
        num_threads: usize,
    ) -> Result<Vec<SearchResult>> {
        let order = self.states[0].index.merge_order();
        let outer = num_threads.clamp(1, self.states.len());
        let inner = (num_threads / outer).max(1);
        let mut shard_batches = parallel::map(self.states.len(), outer, |s| {
            self.states[s].index.search_batch_threads(queries, k, inner)
        })?
        .into_iter()
        .collect::<Result<Vec<_>>>()?;
        let mut out = Vec::with_capacity(queries.len());
        for qi in 0..queries.len() {
            let per_shard: Vec<SearchResult> = shard_batches
                .iter_mut()
                .map(|batch| std::mem::take(&mut batch[qi]))
                .collect();
            out.push(self.gather(per_shard, k, order));
        }
        Ok(out)
    }

    /// [`FleetReader::search_batch_threads`] with the default thread budget.
    ///
    /// # Errors
    ///
    /// Propagates the first per-shard error encountered.
    pub fn search_batch(&self, queries: &VectorSet, k: usize) -> Result<Vec<SearchResult>> {
        self.search_batch_threads(queries, k, parallel::default_threads())
    }

    /// Snapshot of every pinned shard's circuit-breaker state (shared with
    /// the fleet — breakers outlive any single reader).
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.health.breaker_states()
    }
}

impl<I: AnnIndex + 'static> FleetReader<I> {
    /// Deadline-aware degraded search of one query: scatter to every shard
    /// whose breaker admits it, gather whatever answers within `budget`, and
    /// merge that into a best-effort top-k. Never fails the whole query
    /// because one shard stalled, errored, or panicked — the loss shows up
    /// as `coverage < 1.0` and a non-`Ok` [`ShardStatus`] instead.
    ///
    /// With no faults, no open breakers, and the deadline met by every
    /// shard, the merged result is **bit-identical** (ids and distance bits)
    /// to [`FleetReader::search`].
    ///
    /// `I: 'static` because slow shards are *abandoned*, not cancelled: each
    /// scan runs on a detached worker holding its own `Arc` of the pinned
    /// shard state, so a straggler finishing after the deadline (even after
    /// this reader is dropped) writes into a disconnected channel and frees
    /// the state — never a use-after-free, never a blocked caller.
    ///
    /// # Errors
    ///
    /// Never fails per-shard; errors surface as [`ShardStatus::Failed`].
    /// Only query construction itself (e.g. a ragged query) can error.
    pub fn search_deadline(
        &self,
        query: &[f32],
        k: usize,
        budget: Duration,
    ) -> Result<DegradedResult> {
        let queries = VectorSet::from_rows(vec![query.to_vec()])?;
        let mut batch = self.search_batch_deadline(&queries, k, budget)?;
        let result = batch.results.pop().expect("one query in, one result out");
        Ok(DegradedResult {
            result,
            shards: batch.shards,
            coverage: batch.coverage,
        })
    }

    /// Batch variant of [`FleetReader::search_deadline`]: one deadline and
    /// one scatter for the whole batch (each responsive shard scans all
    /// queries; the per-shard statuses apply batch-wide).
    ///
    /// # Errors
    ///
    /// Never fails per-shard; see [`FleetReader::search_deadline`].
    pub fn search_batch_deadline(
        &self,
        queries: &VectorSet,
        k: usize,
        budget: Duration,
    ) -> Result<DegradedBatch> {
        let total = self.states.len();
        let deadline = Instant::now() + budget;
        let order = self.states[0].index.merge_order();
        let (tx, rx) = mpsc::channel::<(usize, Result<Vec<SearchResult>>)>();
        let mut statuses: Vec<ShardStatus> = Vec::with_capacity(total);
        // Breaker generation each shard's request was admitted under; every
        // outcome (including the straggler sweep) reports with its stamp so
        // the breaker can ignore outcomes that pre-date a state flip.
        let mut admit_gens: Vec<u64> = vec![0; total];
        let mut outstanding = 0usize;
        for (s, gen_slot) in admit_gens.iter_mut().enumerate() {
            let Some(admit_gen) = self.health.breaker(s).admit() else {
                statuses.push(ShardStatus::SkippedOpen);
                continue;
            };
            *gen_slot = admit_gen;
            // Provisional: overwritten when (if) the worker reports in.
            statuses.push(ShardStatus::TimedOut);
            outstanding += 1;
            let state = self.states[s].clone();
            let queries = queries.clone();
            let fault = self.fault.clone();
            let retry = self.health.retry();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let out =
                    scan_shard_guarded(&state, s, &queries, k, deadline, fault.as_deref(), retry);
                // A send after the deadline hits a disconnected receiver;
                // the straggler's work is simply discarded.
                let _ = tx.send((s, out));
            });
        }
        drop(tx);

        let mut shard_batches: Vec<Option<Vec<SearchResult>>> = (0..total).map(|_| None).collect();
        while outstanding > 0 {
            let wait = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(wait) {
                Ok((s, Ok(batch))) => {
                    self.health.breaker(s).record_success(admit_gens[s]);
                    shard_batches[s] = Some(batch);
                    statuses[s] = ShardStatus::Ok;
                    outstanding -= 1;
                }
                Ok((s, Err(err))) => {
                    self.health.breaker(s).record_failure(admit_gens[s]);
                    statuses[s] = ShardStatus::Failed(err);
                    outstanding -= 1;
                }
                // Deadline reached (or, with zero spawns, channel closed):
                // whatever has not answered stays `TimedOut`.
                Err(mpsc::RecvTimeoutError::Timeout) => break,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        // Stragglers (still provisional after the deadline) count against
        // their breakers just like explicit failures.
        for (s, status) in statuses.iter().enumerate() {
            if matches!(status, ShardStatus::TimedOut) {
                self.health.breaker(s).record_failure(admit_gens[s]);
            }
        }

        let ok = statuses.iter().filter(|s| s.is_ok()).count();
        let coverage = ok as f64 / total.max(1) as f64;
        let mut results = Vec::with_capacity(queries.len());
        for qi in 0..queries.len() {
            let per_shard: Vec<(usize, SearchResult)> = shard_batches
                .iter_mut()
                .enumerate()
                .filter_map(|(s, slot)| {
                    slot.as_mut()
                        .map(|batch| (s, std::mem::take(&mut batch[qi])))
                })
                .collect();
            results.push(self.gather_indexed(per_shard, k, order));
        }
        Ok(DegradedBatch {
            results,
            shards: statuses,
            coverage,
        })
    }
}

/// A sharded ANN index with snapshot-isolated concurrent reads and
/// clone-and-publish writes. See the [module docs](self) for the concurrency
/// and parity model.
#[derive(Debug)]
pub struct ShardedIndex<I: AnnIndex> {
    /// The fleet topology, itself behind an epoch pointer: resize
    /// ([`ShardedIndex::resize_shards`]) publishes a whole new shard vector
    /// in one pointer swap, so a reader pinning mid-resize sees the old or
    /// the new topology wholesale — never a mix. The lock is held only to
    /// clone or swap the `Arc`; every topology mutation additionally holds
    /// the fleet writer lock.
    shards: RwLock<Arc<Vec<Shard<I>>>>,
    router: ShardRouter,
    /// Serialises writers (and fleet-consistent snapshots). Readers never
    /// take it.
    writer: Mutex<()>,
    /// Per-shard circuit breakers + retry policy, shared with every reader.
    /// Interior-mutable tuning lives inside the tracker
    /// ([`HealthTracker::reconfigure`]); the outer `RwLock` only exists so
    /// a shard-count change can swap in a tracker of the right shape
    /// through `&self`.
    health: RwLock<Arc<HealthTracker>>,
    /// Chaos-testing fault plan (`None` in production). Behind its own lock
    /// so tests can attach/detach plans without a writer handle.
    fault: RwLock<Option<Arc<FaultPlan>>>,
    /// The durability plane (`None` until [`ShardedIndex::enable_wal`] or
    /// [`ShardedIndex::recover_from_dir`] attaches one). Mutations consult
    /// it under the writer lock; the `RwLock` only exists so attachment
    /// does not need `&mut self`.
    durability: RwLock<Option<Arc<Durability>>>,
}

impl<I: AnnIndex> ShardedIndex<I> {
    /// Assembles a fleet around validated shards with default health tuning.
    fn assemble(shards: Vec<Shard<I>>, router: ShardRouter) -> Self {
        let health = Arc::new(HealthTracker::new(
            shards.len(),
            BreakerConfig::default(),
            RetryPolicy::default(),
        ));
        Self {
            shards: RwLock::new(Arc::new(shards)),
            router,
            writer: Mutex::new(()),
            health: RwLock::new(health),
            fault: RwLock::new(None),
            durability: RwLock::new(None),
        }
    }

    /// Pins the current topology (O(1) pointer clone). Stable for the whole
    /// pinned lifetime: a concurrent resize publishes a *new* vector rather
    /// than mutating this one.
    fn topology(&self) -> Arc<Vec<Shard<I>>> {
        self.shards.read().expect("topology lock poisoned").clone()
    }

    /// Publishes a new topology (resize / restore paths; caller holds the
    /// fleet writer lock or `&mut self`).
    fn set_topology(&self, shards: Vec<Shard<I>>) {
        *self.shards.write().expect("topology lock poisoned") = Arc::new(shards);
    }

    /// Number of shards in the fleet.
    pub fn num_shards(&self) -> usize {
        self.topology().len()
    }

    /// The id router partitioning ownership across shards.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Attaches (or with `None`, detaches) a chaos-testing fault plan. New
    /// readers pin the plan current at [`ShardedIndex::reader`] time; writer
    /// paths consult the live plan per operation.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.fault.write().expect("fault plan lock poisoned") = plan;
    }

    /// The currently attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.fault.read().expect("fault plan lock poisoned").clone()
    }

    fn durability_handle(&self) -> Option<Arc<Durability>> {
        self.durability
            .read()
            .expect("durability lock poisoned")
            .clone()
    }

    /// Whether a write-ahead log is attached (mutations are durable).
    pub fn wal_enabled(&self) -> bool {
        self.durability_handle().is_some()
    }

    /// The WAL's metrics registry (`wal.append_ns` / `wal.fsync_ns`
    /// histograms, byte/record/segment/checkpoint counters), when a WAL is
    /// attached. Share-able with a serving front-end's own registry via
    /// [`RegistrySnapshot::merge`](juno_common::metrics::RegistrySnapshot::merge).
    pub fn wal_registry(&self) -> Option<Arc<Registry>> {
        self.durability_handle().map(|d| Arc::clone(d.registry()))
    }

    /// Point-in-time snapshot of the `wal.*` metrics; empty when no WAL is
    /// attached.
    pub fn wal_metrics(&self) -> RegistrySnapshot {
        self.wal_registry()
            .map(|r| r.snapshot())
            .unwrap_or_default()
    }

    /// The LSN of the last appended WAL record (`None` without a WAL).
    pub fn wal_last_lsn(&self) -> Option<u64> {
        self.durability_handle().map(|d| d.wal.last_lsn())
    }

    /// The shared health tracker (per-shard breakers + retry policy).
    pub fn health(&self) -> Arc<HealthTracker> {
        self.health.read().expect("health lock poisoned").clone()
    }

    /// Snapshot of every shard's circuit-breaker state.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.health().breaker_states()
    }

    /// Replaces the health tuning **in place**: every breaker restarts
    /// fresh (all-closed) with the new config. Works through `&self` on a
    /// live shared fleet (`Arc<ShardedIndex>`); existing readers share the
    /// same tracker, so they pick the new tuning up immediately.
    pub fn configure_health(&self, breaker: BreakerConfig, retry: RetryPolicy) {
        self.health().reconfigure(breaker, retry);
    }

    /// Swaps in a fresh tracker sized for `num_shards`, keeping the current
    /// tuning — the topology-change path (restore / resize), where pinned
    /// readers must keep their own tracker so they never index a breaker
    /// out of range.
    fn reshape_health(&self, num_shards: usize) {
        let mut slot = self.health.write().expect("health lock poisoned");
        if slot.num_shards() != num_shards {
            let tracker = HealthTracker::new(num_shards, slot.breaker_config(), slot.retry());
            *slot = Arc::new(tracker);
        }
    }

    fn load(&self, s: usize) -> Arc<ShardState<I>> {
        self.topology()[s]
            .slot
            .read()
            .expect("shard slot lock poisoned")
            .clone()
    }

    fn publish(&self, s: usize, state: ShardState<I>) {
        self.publish_arc(s, Arc::new(state));
    }

    /// Publishes an already-shared state — the rollback path, which must
    /// restore the exact pre-op state (epoch included), not a bumped copy.
    fn publish_arc(&self, s: usize, state: Arc<ShardState<I>>) {
        *self.topology()[s]
            .slot
            .write()
            .expect("shard slot lock poisoned") = state;
    }

    /// Pins a point-in-time view of the fleet (O(S) pointer clones; never
    /// blocks behind an in-flight mutation). Per shard the view is exactly
    /// one published epoch; a writer publishing between two shard pins can
    /// skew epochs *across* shards, which is harmless because every point is
    /// live in at most one shard at every published epoch.
    pub fn reader(&self) -> FleetReader<I> {
        let shards = self.topology();
        FleetReader {
            states: shards
                .iter()
                .map(|shard| shard.slot.read().expect("shard slot lock poisoned").clone())
                .collect(),
            health: self.health(),
            fault: self.fault_plan(),
        }
    }

    /// The current published epoch of every shard.
    pub fn shard_epochs(&self) -> Vec<u64> {
        self.reader().epochs()
    }

    /// Builds a read-only fleet from pre-partitioned sub-indexes, each with
    /// a local→global id map (`map[local_id] = global_id`). This is the mode
    /// for engines without mutation support; searches translate ids before
    /// the merge. For boundary-tie parity with a monolith, each shard's rows
    /// should ascend in global id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `parts` is empty or oversized,
    /// the shards disagree on dim/metric, a map's length does not match its
    /// index, or global ids collide across shards.
    pub fn from_prebuilt(parts: Vec<(I, Vec<u64>)>, router: ShardRouter) -> Result<Self> {
        if parts.is_empty() {
            return Err(Error::invalid_config("a fleet needs at least one shard"));
        }
        if parts.len() > MAX_SHARDS {
            return Err(Error::invalid_config(format!(
                "at most {MAX_SHARDS} shards are supported"
            )));
        }
        let dim = parts[0].0.dim();
        let metric = parts[0].0.metric();
        let mut all_ids: Vec<u64> = Vec::new();
        for (s, (index, map)) in parts.iter().enumerate() {
            if index.dim() != dim || index.metric() != metric {
                return Err(Error::invalid_config(format!(
                    "shard {s} disagrees on dim/metric with shard 0"
                )));
            }
            if index.len() != map.len() {
                return Err(Error::invalid_config(format!(
                    "shard {s}: id map covers {} ids for {} indexed vectors",
                    map.len(),
                    index.len()
                )));
            }
            all_ids.extend_from_slice(map);
        }
        all_ids.sort_unstable();
        if all_ids.windows(2).any(|w| w[0] == w[1]) {
            return Err(Error::invalid_config(
                "global ids collide across prebuilt shards",
            ));
        }
        let shards = parts
            .into_iter()
            .map(|(index, map)| {
                Shard::new(
                    ShardState {
                        index,
                        epoch: 0,
                        id_map: Some(Arc::new(map)),
                    },
                    false,
                )
            })
            .collect();
        Ok(Self::assemble(shards, router))
    }

    /// Returns an error unless the fleet is in global-id mode (mutation is
    /// undefined for mapped, pre-partitioned fleets).
    fn ensure_global(&self) -> Result<()> {
        if self.load(0).id_map.is_some() {
            return Err(Error::unsupported(
                "mapped (pre-partitioned) sharded fleets are read-only",
            ));
        }
        Ok(())
    }
}

impl<I: AnnIndex + Clone> ShardedIndex<I> {
    /// Builds a global-id fleet by replicating a monolithic index and
    /// tombstoning, in each replica, every id the router assigns elsewhere
    /// (followed by a per-shard compaction, so each shard physically scans
    /// only its own points). All replicas share the monolith's trained
    /// state, which is what makes scatter-gather results bit-identical to
    /// the monolith.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a shard count of 0 or above
    /// [`MAX_SHARDS`], [`Error::Unsupported`] when `num_shards > 1` and the
    /// engine cannot tombstone, and propagates engine removal errors.
    pub fn from_monolith(monolith: I, num_shards: usize, router: ShardRouter) -> Result<Self> {
        if num_shards == 0 {
            return Err(Error::invalid_config("a fleet needs at least one shard"));
        }
        if num_shards > MAX_SHARDS {
            return Err(Error::invalid_config(format!(
                "at most {MAX_SHARDS} shards are supported"
            )));
        }
        if num_shards > 1 && !monolith.supports_mutation() {
            return Err(Error::unsupported(format!(
                "{} cannot tombstone, so it shards via ShardedIndex::from_prebuilt only",
                monolith.name()
            )));
        }
        let ids = monolith.ids();
        let mut shards = Vec::with_capacity(num_shards);
        let mut monolith = Some(monolith);
        for s in 0..num_shards {
            let mut replica = if s + 1 == num_shards {
                monolith.take().expect("monolith consumed once")
            } else {
                monolith.as_ref().expect("monolith live").clone()
            };
            if num_shards > 1 {
                for &id in &ids {
                    if router.route(id, num_shards) != s {
                        replica.remove(id)?;
                    }
                }
                replica.compact()?;
            }
            shards.push(Shard::new(
                ShardState {
                    index: replica,
                    epoch: 0,
                    id_map: None,
                },
                true,
            ));
        }
        Ok(Self::assemble(shards, router))
    }

    /// Restores a fleet from snapshot bytes, using `prototype` as the engine
    /// to decode per-shard state into (any instance of the right engine
    /// type). Accepts both `SHRD` fleet snapshots and legacy unsharded
    /// engine snapshots (which restore into a single-shard fleet).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] for malformed bytes; never panics.
    pub fn from_snapshot_bytes(prototype: I, bytes: &[u8]) -> Result<Self> {
        let mut fleet = Self::from_monolith(prototype, 1, ShardRouter::Hash { seed: 0 })?;
        fleet.restore_from_bytes(bytes)?;
        Ok(fleet)
    }

    /// Inserts one vector, routed to its owning shard. See
    /// [`ShardedIndex::insert_batch_shared`] for the publication semantics
    /// (a single-element batch).
    ///
    /// # Errors
    ///
    /// Propagates engine insertion errors; rejects mapped fleets with
    /// [`Error::Unsupported`].
    pub fn insert_shared(&self, vector: &[f32]) -> Result<u64> {
        let batch = VectorSet::from_rows(vec![vector.to_vec()])?;
        Ok(self.insert_batch_shared(&batch)?[0])
    }

    /// Inserts a batch of vectors through the clone-and-publish write path.
    ///
    /// Every replica receives every insert (keeping id allocation and the
    /// engines' distribution state — e.g. JUNO's threshold density maps — in
    /// lockstep with a monolith), and each vector is tombstoned on every
    /// non-owning replica **within the same publish**, so at any published
    /// epoch a point is live in at most one shard: readers can never observe
    /// a duplicate or a vanishing id mid-operation. Each shard is cloned
    /// once per batch; the whole batch either publishes on every shard or —
    /// on error — on none.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (e.g. dimension mismatch) without leaving a
    /// partial batch behind: any failure — including a failure or injected
    /// kill *between per-shard publishes* — rolls every shard back to its
    /// exact pre-op state (same epoch, same `Arc`). A panic anywhere in the
    /// staging or publish loop is caught, rolled back the same way, and
    /// surfaced as [`Error::WorkerPanicked`] (the writer lock is released
    /// unpoisoned). Rejects mapped fleets with [`Error::Unsupported`].
    ///
    /// # Durability
    ///
    /// With a WAL attached ([`ShardedIndex::enable_wal`]), one Insert
    /// record per vector is appended — and fsync'd per the configured
    /// [`FsyncPolicy`](juno_common::wal::FsyncPolicy) — **before** any
    /// shard publishes, so an acknowledged batch is always recoverable. If
    /// the publish loop then fails in-process, the rollback appends an
    /// Abort record covering the batch's LSNs so replay skips them.
    pub fn insert_batch_shared(&self, vectors: &VectorSet) -> Result<Vec<u64>> {
        self.insert_batch_inner(vectors, true)
    }

    /// `durable: false` is the recovery replay path: identical mutation
    /// semantics, no re-logging of records that are already in the WAL.
    fn insert_batch_inner(&self, vectors: &VectorSet, durable: bool) -> Result<Vec<u64>> {
        let _writer = self.writer.lock().expect("fleet writer lock poisoned");
        self.ensure_global()?;
        if vectors.is_empty() {
            return Ok(Vec::new());
        }
        let plan = self.fault_plan();
        let durability = if durable {
            self.durability_handle()
        } else {
            None
        };
        let num_shards = self.num_shards();
        // Pin every shard's pre-op state (under the writer lock nothing else
        // can publish): this is the rollback target if anything below fails.
        let pre_op: Vec<Arc<ShardState<I>>> = (0..num_shards).map(|s| self.load(s)).collect();
        // LSN range appended for this batch, visible to the rollback path
        // (which must compensate for records whose publish never happened).
        let wal_range = std::cell::Cell::new(None::<(u64, u64)>);
        let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<u64>> {
            let mut ids: Vec<u64> = Vec::with_capacity(vectors.len());
            let mut staged: Vec<ShardState<I>> = Vec::with_capacity(num_shards);
            for (s, current) in pre_op.iter().enumerate() {
                if let Some(plan) = &plan {
                    plan.inject(s, FaultOp::Insert)?;
                }
                let mut next = ShardState {
                    index: current.index.clone(),
                    epoch: current.epoch + 1,
                    id_map: None,
                };
                for (vi, vector) in vectors.iter().enumerate() {
                    let id = next.index.insert(vector)?;
                    if s == 0 {
                        ids.push(id);
                    } else if ids[vi] != id {
                        return Err(Error::invalid_config(format!(
                            "shard {s} allocated id {id} where shard 0 allocated {}; \
                             replicas have diverged",
                            ids[vi]
                        )));
                    }
                    if self.router.route(id, num_shards) != s {
                        next.index.remove(id)?;
                    }
                }
                staged.push(next);
            }
            // Write-ahead: the whole batch is logged (and synced per
            // policy) before the first shard publishes. Staging above ran
            // first so an invalid batch is rejected without log garbage.
            if let Some(d) = &durability {
                let mut first = 0u64;
                let mut last = 0u64;
                for vector in vectors.iter() {
                    let lsn = d.wal.append_unsynced(&WalRecord::Insert {
                        vector: vector.to_vec(),
                    })?;
                    if first == 0 {
                        first = lsn;
                    }
                    last = lsn;
                }
                wal_range.set(Some((first, last)));
                if let Some(plan) = &plan {
                    // The post-append/pre-sync kill point (fleet-level:
                    // shard 0 counters).
                    plan.inject(0, FaultOp::WalAppend)?;
                }
                d.wal.maybe_sync()?;
            }
            for (s, state) in staged.into_iter().enumerate() {
                if let Some(plan) = &plan {
                    // The post-sync/pre-publish kill point: shards 0..s are
                    // already live on the new epoch when this fires.
                    plan.inject(s, FaultOp::Publish)?;
                }
                self.publish(s, state);
                // Every replica gained a tail record (non-owners also a
                // tombstone), so every shard now has something to compact.
                self.topology()[s].dirty.store(true, Ordering::Relaxed);
            }
            Ok(ids)
        }));
        let outcome = attempt.unwrap_or_else(|payload| {
            Err(Error::worker_panicked(format!(
                "fleet insert writer: {}",
                parallel::panic_message(&*payload)
            )))
        });
        if outcome.is_err() {
            // Republish the pinned pre-op states: every shard returns to its
            // exact pre-op epoch, erasing any partially published shards.
            for (s, state) in pre_op.into_iter().enumerate() {
                self.publish_arc(s, state);
            }
            self.compensate_rollback(durability.as_deref(), wal_range.get());
        }
        outcome
    }

    /// After a rollback, records already in the WAL describe ops the live
    /// fleet never acknowledged: stamp an Abort record (always fsync'd)
    /// covering them so a later replay skips the range instead of
    /// resurrecting the rolled-back mutation. Best-effort: if the WAL
    /// itself is failing, the original error already tells the caller the
    /// fleet is in trouble, and the un-acknowledged records are allowed to
    /// survive a crash under the durability contract.
    fn compensate_rollback(&self, durability: Option<&Durability>, range: Option<(u64, u64)>) {
        let (Some(d), Some((from_lsn, until_lsn))) = (durability, range) else {
            return;
        };
        let aborted = d
            .wal
            .append_unsynced(&WalRecord::Abort {
                from_lsn,
                until_lsn,
            })
            .and_then(|_| d.wal.sync());
        if let Err(err) = aborted {
            eprintln!(
                "juno-serve: failed to log rollback of WAL records \
                 {from_lsn}..={until_lsn}: {err}"
            );
        }
    }

    /// Removes the point with the given id from its owning shard
    /// (clone-and-publish; the other shards already hold it as a tombstone).
    /// Returns `Ok(true)` when the id was live.
    ///
    /// # Errors
    ///
    /// Propagates engine removal errors; rejects mapped fleets with
    /// [`Error::Unsupported`]. With a WAL attached, a Remove record is
    /// appended (and synced per policy) before the publish; a removal of a
    /// dead id mutates nothing and logs nothing.
    pub fn remove_shared(&self, id: u64) -> Result<bool> {
        self.remove_inner(id, true)
    }

    fn remove_inner(&self, id: u64, durable: bool) -> Result<bool> {
        let _writer = self.writer.lock().expect("fleet writer lock poisoned");
        self.ensure_global()?;
        let plan = self.fault_plan();
        let durability = if durable {
            self.durability_handle()
        } else {
            None
        };
        let owner = self.router.route(id, self.num_shards());
        let pre_op = self.load(owner);
        let wal_range = std::cell::Cell::new(None::<(u64, u64)>);
        let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<bool> {
            if let Some(plan) = &plan {
                plan.inject(owner, FaultOp::Insert)?;
            }
            let mut next = ShardState {
                index: pre_op.index.clone(),
                epoch: pre_op.epoch + 1,
                id_map: None,
            };
            let removed = next.index.remove(id)?;
            if removed {
                if let Some(d) = &durability {
                    let lsn = d.wal.append_unsynced(&WalRecord::Remove { id })?;
                    wal_range.set(Some((lsn, lsn)));
                    if let Some(plan) = &plan {
                        plan.inject(0, FaultOp::WalAppend)?;
                    }
                    d.wal.maybe_sync()?;
                }
                if let Some(plan) = &plan {
                    plan.inject(owner, FaultOp::Publish)?;
                }
                self.publish(owner, next);
                self.topology()[owner].dirty.store(true, Ordering::Relaxed);
            }
            Ok(removed)
        }));
        let outcome = attempt.unwrap_or_else(|payload| {
            Err(Error::worker_panicked(format!(
                "fleet remove writer: {}",
                parallel::panic_message(&*payload)
            )))
        });
        if outcome.is_err() {
            // A single-shard op publishes atomically, so the rollback is a
            // republish of the unchanged pre-op state (harmless if nothing
            // was published; exact if the failure hit mid-operation).
            self.publish_arc(owner, pre_op);
            self.compensate_rollback(durability.as_deref(), wal_range.get());
        }
        outcome
    }

    /// Compacts every shard that has seen a mutation since its last sweep,
    /// one clone-and-publish at a time. Clean shards (including every shard
    /// of a read-only mapped fleet) are skipped without cloning, so a
    /// [`BackgroundCompactor`] on an idle fleet costs nothing and publishes
    /// no epochs. Readers keep serving the pre-compaction epochs until each
    /// shard's swap; results are unchanged (compaction is bit-invisible per
    /// the engine contract).
    ///
    /// # Errors
    ///
    /// Propagates engine compaction errors, and surfaces a compaction panic
    /// as [`Error::WorkerPanicked`]; either way the failing shard keeps its
    /// pre-sweep state, is left flagged dirty so the next sweep retries it,
    /// and the writer lock is released unpoisoned.
    ///
    /// With a WAL attached, one fleet-level Compact record is appended
    /// (and synced per policy) after a sweep that compacted at least one
    /// shard. Because compaction is bit-invisible, a crash that loses the
    /// record only costs the replayed fleet a redundant sweep — never
    /// parity.
    pub fn compact_all_shared(&self) -> Result<()> {
        self.compact_inner(true)
    }

    fn compact_inner(&self, durable: bool) -> Result<()> {
        let _writer = self.writer.lock().expect("fleet writer lock poisoned");
        let shards = self.topology();
        let plan = self.fault_plan();
        let mut any_compacted = false;
        for s in 0..shards.len() {
            if !shards[s].dirty.swap(false, Ordering::Relaxed) {
                continue;
            }
            let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<()> {
                if let Some(plan) = &plan {
                    plan.inject(s, FaultOp::Compact)?;
                }
                let current = self.load(s);
                let mut next = (*current).clone();
                next.epoch += 1;
                next.index.compact()?;
                self.publish(s, next);
                Ok(())
            }));
            let step = attempt.unwrap_or_else(|payload| {
                Err(Error::worker_panicked(format!(
                    "shard {s} compaction: {}",
                    parallel::panic_message(&*payload)
                )))
            });
            if let Err(err) = step {
                shards[s].dirty.store(true, Ordering::Relaxed);
                return Err(err);
            }
            any_compacted = true;
        }
        if any_compacted && durable {
            if let Some(d) = self.durability_handle() {
                d.wal.append_unsynced(&WalRecord::Compact)?;
                d.wal.maybe_sync()?;
            }
        }
        Ok(())
    }

    /// Serialises the whole fleet into the `SHRD` snapshot container:
    /// a manifest section plus one sub-snapshot section per shard. The
    /// writer lock is held so the per-shard states are cross-consistent.
    ///
    /// # Errors
    ///
    /// Propagates engine snapshot errors ([`Error::Unsupported`] for
    /// engines without persistence).
    pub fn to_snapshot_bytes(&self) -> Result<Vec<u8>> {
        let _writer = self.writer.lock().expect("fleet writer lock poisoned");
        persist::encode_fleet(&self.reader(), self.router)
    }

    /// Replaces this fleet with the state decoded from `bytes` — the
    /// inverse of [`ShardedIndex::to_snapshot_bytes`]. Legacy unsharded
    /// engine snapshots are accepted and restore into a single-shard fleet
    /// (the router is kept). On any error the fleet is left untouched;
    /// epochs continue monotonically across a successful restore.
    ///
    /// A successful restore **detaches** any attached WAL: the restored
    /// state has no relationship to the log's op history, so continuing to
    /// append would make recovery replay nonsense. Re-attach with
    /// [`ShardedIndex::enable_wal`], which re-baselines via a fresh
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] for malformed bytes and propagates
    /// engine restore errors.
    pub fn restore_from_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        let base_epoch = self.restore_base_epoch();
        // Borrow the prototype from the current shard 0 — the decoder only
        // clones it per shard after the container has validated, so a
        // malformed snapshot is rejected without paying any engine clone.
        let current = self.load(0);
        let decoded = persist::decode_fleet(bytes, &current.index, base_epoch)?;
        drop(current);
        self.install_decoded(decoded)
    }

    /// [`ShardedIndex::restore_from_bytes`] over an mmap'd snapshot file:
    /// shard engines restore **zero-copy** from their aligned regions of
    /// the map ([`juno_common::index::AnnIndex::restore_mapped`]), with hot
    /// sections faulted in lazily under `residency`. Legacy unsharded
    /// engine snapshots restore into a single-shard fleet, also mapped.
    /// On any error the fleet is left untouched; a successful restore
    /// detaches any attached WAL, exactly like the byte-level restore.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] for malformed files and propagates
    /// engine restore errors.
    pub fn restore_from_mapped(
        &mut self,
        map: &Arc<juno_common::mmap::Mmap>,
        residency: &juno_common::mmap::ResidencyConfig,
    ) -> Result<()> {
        let base_epoch = self.restore_base_epoch();
        let current = self.load(0);
        let decoded = persist::decode_fleet_mapped(map, &current.index, base_epoch, residency)?;
        drop(current);
        self.install_decoded(decoded)
    }

    /// The epoch restored shard states start from: past every live epoch,
    /// so readers never observe a restored state as stale.
    fn restore_base_epoch(&self) -> u64 {
        self.shard_epochs()
            .into_iter()
            .max()
            .unwrap_or(0)
            .saturating_add(1)
    }

    /// Publishes a fully validated decode: the shared tail of
    /// [`ShardedIndex::restore_from_bytes`] and
    /// [`ShardedIndex::restore_from_mapped`].
    fn install_decoded(&mut self, decoded: persist::DecodedFleet<I>) -> Result<()> {
        // Injection point: everything above is read-only, so a restore fault
        // (error or panic) leaves the live fleet untouched.
        if let Some(plan) = self.fault_plan() {
            let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<()> {
                for s in 0..decoded.states.len() {
                    plan.inject(s, FaultOp::Restore)?;
                }
                Ok(())
            }));
            attempt.unwrap_or_else(|payload| {
                Err(Error::worker_panicked(format!(
                    "fleet restore: {}",
                    parallel::panic_message(&*payload)
                )))
            })?;
        }
        if let Some(router) = decoded.router {
            self.router = router;
        }
        let num_shards = decoded.states.len();
        self.set_topology(
            decoded
                .states
                .into_iter()
                .map(|state| {
                    // Restored global-id shards may carry tails / tombstones
                    // from their snapshotted lifecycle; mapped shards are
                    // read-only and never need a sweep.
                    let dirty = state.id_map.is_none();
                    Shard::new(state, dirty)
                })
                .collect(),
        );
        // A restore that changes the shard count rebuilds the breakers (all
        // closed) with the current tuning.
        self.reshape_health(num_shards);
        // The log no longer describes this fleet's history; see the doc
        // comment. (`recover_from_dir` re-attaches after its replay.)
        *self.durability.write().expect("durability lock poisoned") = None;
        Ok(())
    }

    /// Restores a fleet from a crash-safe snapshot *file* written by
    /// [`AnnIndex::save_to_path`] — the path-level counterpart of
    /// [`ShardedIndex::from_snapshot_bytes`], including the fallback to the
    /// rotated `.prev` generation when the newest file is torn or corrupt.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when no snapshot generation exists at `path`,
    /// and [`Error::Corrupted`] when none of the generations validates.
    pub fn from_snapshot_path(prototype: I, path: &std::path::Path) -> Result<Self> {
        let mut fleet = Self::from_monolith(prototype, 1, ShardRouter::Hash { seed: 0 })?;
        fleet.load_from_path(path)?;
        Ok(fleet)
    }

    /// [`ShardedIndex::from_snapshot_path`] serving the snapshot **out of
    /// core**: the file is mmap'd and each shard engine restores zero-copy
    /// from its aligned region, faulting hot sections in lazily under
    /// `residency` (see [`ShardedIndex::restore_from_mapped`]). Falls back
    /// to the rotated `.prev` generation when the newest file is torn.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when no snapshot generation exists at `path`,
    /// and [`Error::Corrupted`] when none of the generations validates.
    pub fn from_snapshot_path_mapped(
        prototype: I,
        path: &std::path::Path,
        residency: &juno_common::mmap::ResidencyConfig,
    ) -> Result<Self> {
        let mut fleet = Self::from_monolith(prototype, 1, ShardRouter::Hash { seed: 0 })?;
        let mut last_err = None;
        for candidate in [
            path.to_path_buf(),
            juno_common::atomic_file::prev_path(path),
        ] {
            if !candidate.exists() {
                continue;
            }
            let attempt = juno_common::mmap::Mmap::open(&candidate)
                .and_then(|map| fleet.restore_from_mapped(&map, residency));
            match attempt {
                Ok(()) => return Ok(fleet),
                Err(err) => {
                    last_err = Some(Error::corrupted(format!("{}: {err}", candidate.display())))
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            Error::Io(format!(
                "no snapshot found at {} (nor a .prev generation)",
                path.display()
            ))
        }))
    }

    /// Attaches a write-ahead log rooted at `dir` and writes a **baseline
    /// checkpoint** of the current fleet state, so the directory is
    /// immediately recoverable. From this call on, every acknowledged
    /// mutation appends its record(s) — fsync'd per
    /// `config.wal.policy` — *before* its epoch publish.
    ///
    /// The directory may be fresh or hold a previous incarnation's files;
    /// either way the baseline checkpoint written here is the new recovery
    /// root (surviving older records are covered by it and pruned on the
    /// next [`ShardedIndex::checkpoint`]). To *continue* a previous
    /// incarnation instead, use [`ShardedIndex::recover_from_dir`].
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when a WAL is already attached, the fleet
    /// is mapped (read-only), or the options are invalid; [`Error::Io`] on
    /// filesystem failure; [`Error::Unsupported`] for engines without
    /// snapshot support (checkpoints need [`AnnIndex::snapshot`]).
    pub fn enable_wal(
        &self,
        dir: &std::path::Path,
        config: DurabilityConfig,
    ) -> Result<CheckpointReport> {
        let _writer = self.writer.lock().expect("fleet writer lock poisoned");
        self.ensure_global()?;
        if self.durability_handle().is_some() {
            return Err(Error::invalid_config(
                "a WAL is already attached to this fleet",
            ));
        }
        let registry = Arc::new(Registry::new());
        let wal = Wal::open(dir, config.wal, registry)?;
        let durability = Arc::new(Durability {
            wal,
            dir: dir.to_path_buf(),
            keep_checkpoints: config.keep_checkpoints.max(1),
        });
        let report = self.checkpoint_locked(&durability)?;
        *self.durability.write().expect("durability lock poisoned") = Some(durability);
        Ok(report)
    }

    /// Writes a checkpoint: publishes a fleet snapshot via
    /// [`juno_common::atomic_file`], stamps a Checkpoint record into a
    /// freshly rotated segment (always fsync'd), then prunes the sealed
    /// segments and old checkpoint generations the snapshot covers.
    /// Recovery cost after this call is O(snapshot) + O(ops since).
    ///
    /// A crash at *any* point inside this protocol is recoverable: the
    /// snapshot file publishes atomically, the Checkpoint record is just a
    /// marker (replay filters by the snapshot's covered LSN, so
    /// not-yet-pruned segments are harmless), and pruning is pure garbage
    /// collection.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when no WAL is attached; otherwise
    /// propagates snapshot/filesystem errors. A failed checkpoint never
    /// corrupts the previous recovery point.
    pub fn checkpoint(&self) -> Result<CheckpointReport> {
        let _writer = self.writer.lock().expect("fleet writer lock poisoned");
        let durability = self.durability_handle().ok_or_else(|| {
            Error::invalid_config("no WAL attached; call enable_wal or recover_from_dir first")
        })?;
        self.checkpoint_locked(&durability)
    }

    /// The checkpoint protocol body; the caller holds the writer lock.
    fn checkpoint_locked(&self, d: &Durability) -> Result<CheckpointReport> {
        let plan = self.fault_plan();
        let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<CheckpointReport> {
            let bytes = persist::encode_fleet(&self.reader(), self.router)?;
            let covered_lsn = d.wal.last_lsn();
            juno_common::atomic_file::write_atomic(
                &wal::checkpoint_path(&d.dir, covered_lsn),
                &bytes,
            )?;
            let registry = d.registry();
            registry.counter("wal.checkpoints").inc();
            registry
                .counter("wal.checkpoint_bytes")
                .add(bytes.len() as u64);
            if let Some(plan) = &plan {
                // Mid-checkpoint kill point: the snapshot is durable but
                // its Checkpoint record is not yet logged.
                plan.inject(0, FaultOp::Checkpoint)?;
            }
            d.wal.rotate()?;
            d.wal
                .append_unsynced(&WalRecord::Checkpoint { covered_lsn })?;
            d.wal.sync()?;
            if let Some(plan) = &plan {
                // Mid-rotation kill point: the fresh segment (holding the
                // Checkpoint record) exists, the covered segments are not
                // yet pruned.
                plan.inject(0, FaultOp::Rotate)?;
            }
            let pruned_segments = d.wal.prune_sealed_up_to(covered_lsn)?;
            let pruned_checkpoints = wal::prune_checkpoints(&d.dir, d.keep_checkpoints)?;
            Ok(CheckpointReport {
                covered_lsn,
                snapshot_bytes: bytes.len() as u64,
                pruned_segments,
                pruned_checkpoints,
            })
        }));
        attempt.unwrap_or_else(|payload| {
            Err(Error::worker_panicked(format!(
                "fleet checkpoint: {}",
                parallel::panic_message(&*payload)
            )))
        })
    }

    /// Recovers a fleet from a durability directory: restores the **newest
    /// parseable checkpoint generation** (falling back through rotated and
    /// older generations when the newest is torn or corrupt), replays the
    /// WAL suffix after its covered LSN (skipping aborted ranges), and
    /// re-attaches the WAL so the recovered fleet keeps logging.
    ///
    /// The recovered fleet is **bit-identical** — ids, distance bits,
    /// id-allocator state — to a quiescent replay of the surviving op
    /// prefix, which under [`FsyncPolicy::Always`](juno_common::wal::FsyncPolicy)
    /// is every acknowledged mutation. Torn WAL tails are truncated, never
    /// fatal.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when `dir` holds no checkpoint at all (an empty or
    /// foreign directory is not silently treated as an empty fleet);
    /// [`Error::Corrupted`] when no checkpoint generation restores;
    /// propagates engine replay errors.
    pub fn recover_from_dir(
        prototype: I,
        dir: &std::path::Path,
        config: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport)> {
        // Opening first truncates torn tails, so replay below reads only
        // intact records.
        let registry = Arc::new(Registry::new());
        let wal = Wal::open(dir, config.wal, registry)?;
        let torn_bytes = wal.registry().snapshot().counter("wal.torn_bytes");

        let checkpoints = wal::list_checkpoints(dir)?;
        if checkpoints.is_empty() {
            return Err(Error::Io(format!(
                "no checkpoint found in {} (not a durability directory?)",
                dir.display()
            )));
        }
        let mut restored = None;
        let mut checkpoints_tried = 0;
        let mut last_err = None;
        for (covered_lsn, path) in checkpoints.iter().rev() {
            checkpoints_tried += 1;
            // Each checkpoint generation has a live file and possibly a
            // rotated `.prev`; `read_candidates` surfaces real IO errors
            // while a missing file just moves on.
            let candidates = match juno_common::atomic_file::read_candidates(path) {
                Ok(c) => c,
                Err(err) => {
                    last_err = Some(err);
                    continue;
                }
            };
            for (candidate, bytes) in candidates {
                match Self::from_snapshot_bytes(prototype.clone(), &bytes) {
                    Ok(fleet) => {
                        // Continuity check: replay is only sound when the
                        // surviving log continues exactly where this
                        // snapshot stops. A newer checkpoint may already
                        // have pruned the segments between an *older*
                        // generation and the present log — silently
                        // restoring that older generation would skip the
                        // pruned ops, so such a generation is rejected
                        // rather than replayed across the gap. (An empty
                        // suffix is fine: the snapshot alone is the state.)
                        let suffix = wal.read_records_after(*covered_lsn)?;
                        match suffix.first() {
                            Some((first_lsn, _)) if *first_lsn != covered_lsn + 1 => {
                                last_err = Some(Error::corrupted(format!(
                                    "{}: WAL resumes at LSN {first_lsn}, not {} — the \
                                     records between were pruned by a newer checkpoint",
                                    candidate.display(),
                                    covered_lsn + 1,
                                )));
                            }
                            _ => {
                                restored = Some((fleet, *covered_lsn, suffix));
                                break;
                            }
                        }
                    }
                    Err(err) => {
                        last_err =
                            Some(Error::corrupted(format!("{}: {err}", candidate.display())));
                    }
                }
            }
            if restored.is_some() {
                break;
            }
        }
        let Some((fleet, checkpoint_lsn, records)) = restored else {
            return Err(last_err.unwrap_or_else(|| {
                Error::corrupted(format!(
                    "no checkpoint generation in {} restored",
                    dir.display()
                ))
            }));
        };

        // Replay the suffix. Abort records mark ranges whose publish was
        // rolled back in the previous incarnation: collect them first so a
        // skipped insert still burns no id. Consecutive live inserts are
        // grouped into batches — batch staging applies them sequentially
        // per shard clone, so the result is state-identical to replaying
        // one by one, at a fraction of the clone cost.
        let aborted_ranges: Vec<(u64, u64)> = records
            .iter()
            .filter_map(|(_, r)| match r {
                WalRecord::Abort {
                    from_lsn,
                    until_lsn,
                } => Some((*from_lsn, *until_lsn)),
                _ => None,
            })
            .collect();
        let is_aborted = |lsn: u64| aborted_ranges.iter().any(|&(a, b)| lsn >= a && lsn <= b);
        let mut replayed_ops = 0u64;
        let mut skipped_aborted = 0u64;
        let mut pending: Vec<Vec<f32>> = Vec::new();
        let flush = |fleet: &Self, pending: &mut Vec<Vec<f32>>| -> Result<()> {
            if pending.is_empty() {
                return Ok(());
            }
            let batch = VectorSet::from_rows(std::mem::take(pending))?;
            fleet.insert_batch_inner(&batch, false)?;
            Ok(())
        };
        for (lsn, record) in &records {
            match record {
                WalRecord::Insert { vector } => {
                    if is_aborted(*lsn) {
                        skipped_aborted += 1;
                    } else {
                        pending.push(vector.clone());
                        replayed_ops += 1;
                    }
                }
                WalRecord::Remove { id } => {
                    flush(&fleet, &mut pending)?;
                    if is_aborted(*lsn) {
                        skipped_aborted += 1;
                    } else {
                        fleet.remove_inner(*id, false)?;
                        replayed_ops += 1;
                    }
                }
                WalRecord::Compact => {
                    flush(&fleet, &mut pending)?;
                    if is_aborted(*lsn) {
                        skipped_aborted += 1;
                    } else {
                        // Bit-invisible; replaying keeps the physical
                        // layout (and the dirty flags) close to the
                        // pre-crash fleet.
                        fleet.compact_inner(false)?;
                        replayed_ops += 1;
                    }
                }
                // Markers for the pruning and rebuild-publish protocols; no
                // state to replay. A RebuildPublish whose checkpoint survived
                // is already reflected in the restored generation; one whose
                // checkpoint did not survive must be ignored so recovery
                // lands on the old lineage plus the replayed suffix.
                WalRecord::Checkpoint { .. }
                | WalRecord::Abort { .. }
                | WalRecord::RebuildPublish { .. } => {}
            }
        }
        flush(&fleet, &mut pending)?;

        let last_lsn = wal.last_lsn();
        let durability = Arc::new(Durability {
            wal,
            dir: dir.to_path_buf(),
            keep_checkpoints: config.keep_checkpoints.max(1),
        });
        *fleet.durability.write().expect("durability lock poisoned") = Some(durability);
        Ok((
            fleet,
            RecoveryReport {
                checkpoint_lsn,
                last_lsn,
                replayed_ops,
                skipped_aborted,
                checkpoints_tried,
                torn_bytes,
            },
        ))
    }

    /// Drift signal for the fleet: shard 0's [`DriftReport`]. In global-id
    /// mode every replica receives every insert, so shard 0's EWMA and
    /// tail-fill statistics describe the whole fleet's distribution shift.
    /// `None` for engines without drift tracking.
    pub fn drift_report(&self) -> Option<DriftReport> {
        self.load(0).index.drift_report()
    }

    /// Retrains the fleet's learned structure (codebooks, centroids,
    /// calibration) **under live traffic** and swaps every shard to the
    /// fresh lineage atomically per shard. The protocol:
    ///
    /// 1. **Pin** (brief writer lock): pin a fleet snapshot and the WAL
    ///    position `start_lsn`.
    /// 2. **Train** (no locks): build a fresh full index over the pinned
    ///    live set via [`AnnIndex::rebuild_for_live`], then derive one
    ///    shadow replica per shard with [`AnnIndex::with_live_ids`].
    ///    Writers keep acknowledging into the old lineage the whole time;
    ///    readers are never blocked.
    /// 3. **Replay** (writer lock): apply the WAL suffix after `start_lsn`
    ///    to every shadow — the mutations that landed during training —
    ///    skipping aborted ranges, with the same id-lockstep check as the
    ///    live insert path.
    /// 4. **Swap**: publish each shard's shadow (epoch bumped). Pinned
    ///    readers keep serving the old lineage until they drop; an
    ///    in-process failure or panic mid-swap republishes every shard's
    ///    pre-swap state, so readers never observe a hybrid fleet.
    /// 5. **Persist** (WAL attached only): write a checkpoint of the new
    ///    lineage and stamp a fsync'd [`WalRecord::RebuildPublish`] marker.
    ///    A crash *before* the checkpoint's atomic publish recovers the old
    ///    lineage plus the full op suffix; a crash *after* recovers the new
    ///    lineage — both are exactly an acknowledged state, never a mix of
    ///    lineages.
    ///
    /// Without a WAL the whole protocol runs under the writer lock (there
    /// is no log to replay from, so writers pause during training; readers
    /// still never block).
    ///
    /// # Errors
    ///
    /// [`Error::Unsupported`] for mapped fleets and engines without rebuild
    /// support; [`Error::InvalidConfig`] when the fleet is resized or its
    /// WAL detached while training ran (rerun the rebuild); otherwise
    /// propagates engine/WAL errors with the fleet rolled back to the old
    /// lineage. A post-swap checkpoint failure is surfaced as an error with
    /// the fleet already (consistently) on the new lineage.
    pub fn rebuild_shared(&self) -> Result<RebuildReport> {
        // Phase 1: pin the training snapshot and the WAL position under the
        // writer lock, so the snapshot is exactly the state at `start_lsn`.
        let mut writer_guard = Some(self.writer.lock().expect("fleet writer lock poisoned"));
        self.ensure_global()?;
        let pinned = self.reader();
        if !pinned.shard(0).index.supports_rebuild() {
            return Err(Error::unsupported(format!(
                "{} does not support lifecycle rebuilds",
                pinned.shard(0).index.name()
            )));
        }
        let durability = self.durability_handle();
        let start_lsn = durability.as_ref().map(|d| d.wal.last_lsn());
        if durability.is_some() {
            // With a log to replay from, training can run unlocked: release
            // the writer lock so live mutations keep flowing.
            writer_guard = None;
        }
        let plan = self.fault_plan();
        let drift_before = pinned.shard(0).index.drift_report();

        // Phase 2: train the fresh lineage over the pinned snapshot.
        let num_shards = pinned.num_shards();
        let router = self.router;
        let trained = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<I>> {
            if let Some(plan) = &plan {
                plan.inject(0, FaultOp::RebuildTrain)?;
            }
            let mut all_live: Vec<u64> = Vec::new();
            for s in 0..num_shards {
                all_live.extend(pinned.shard(s).index.ids());
            }
            all_live.sort_unstable();
            let fresh = pinned.shard(0).index.rebuild_for_live(&all_live)?;
            let mut shadows = Vec::with_capacity(num_shards);
            for s in 0..num_shards {
                let owned: Vec<u64> = all_live
                    .iter()
                    .copied()
                    .filter(|&id| router.route(id, num_shards) == s)
                    .collect();
                shadows.push(fresh.with_live_ids(&owned)?);
            }
            Ok(shadows)
        }));
        let mut shadows = trained.unwrap_or_else(|payload| {
            Err(Error::worker_panicked(format!(
                "fleet rebuild trainer: {}",
                parallel::panic_message(&*payload)
            )))
        })?;
        let trained_points = pinned.len();

        // Phase 3: under the writer lock, replay what landed during
        // training and swap. Guard against the fleet changing shape (or
        // losing its WAL) while the lock was released.
        let _writer = writer_guard
            .take()
            .unwrap_or_else(|| self.writer.lock().expect("fleet writer lock poisoned"));
        if self.num_shards() != num_shards {
            return Err(Error::invalid_config(
                "fleet was resized while the rebuild trained; rerun the rebuild",
            ));
        }
        match (&durability, &self.durability_handle()) {
            (None, None) => {}
            (Some(a), Some(b)) if Arc::ptr_eq(a, b) => {}
            _ => {
                return Err(Error::invalid_config(
                    "the fleet's WAL changed while the rebuild trained; rerun the rebuild",
                ))
            }
        }
        let pre_swap: Vec<Arc<ShardState<I>>> = (0..num_shards).map(|s| self.load(s)).collect();
        let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<u64> {
            let mut replayed_ops = 0u64;
            if let (Some(d), Some(start)) = (&durability, start_lsn) {
                if let Some(plan) = &plan {
                    plan.inject(0, FaultOp::RebuildReplay)?;
                }
                let records = d.wal.read_records_after(start)?;
                let aborted: Vec<(u64, u64)> = records
                    .iter()
                    .filter_map(|(_, r)| match r {
                        WalRecord::Abort {
                            from_lsn,
                            until_lsn,
                        } => Some((*from_lsn, *until_lsn)),
                        _ => None,
                    })
                    .collect();
                let is_aborted = |lsn: u64| aborted.iter().any(|&(a, b)| lsn >= a && lsn <= b);
                for (lsn, record) in &records {
                    if is_aborted(*lsn) {
                        continue;
                    }
                    match record {
                        WalRecord::Insert { vector } => {
                            let mut expect = None;
                            for (s, shadow) in shadows.iter_mut().enumerate() {
                                let id = shadow.insert(vector)?;
                                match expect {
                                    None => expect = Some(id),
                                    Some(e) if e != id => {
                                        return Err(Error::invalid_config(format!(
                                            "rebuild replay: shadow {s} allocated id {id} \
                                             where shadow 0 allocated {e}; shadows diverged"
                                        )));
                                    }
                                    _ => {}
                                }
                                if router.route(id, num_shards) != s {
                                    shadow.remove(id)?;
                                }
                            }
                            replayed_ops += 1;
                        }
                        WalRecord::Remove { id } => {
                            // Owner removal; non-owners already hold the id
                            // as a tombstone, so their remove is a no-op.
                            for shadow in shadows.iter_mut() {
                                shadow.remove(*id)?;
                            }
                            replayed_ops += 1;
                        }
                        // Compaction is bit-invisible and the shadows are
                        // freshly compacted; markers carry no state.
                        WalRecord::Compact
                        | WalRecord::Checkpoint { .. }
                        | WalRecord::Abort { .. }
                        | WalRecord::RebuildPublish { .. } => {}
                    }
                }
            }
            // Swap: per shard, publish the shadow on a bumped epoch.
            for (s, shadow) in shadows.drain(..).enumerate() {
                if let Some(plan) = &plan {
                    plan.inject(s, FaultOp::RebuildSwap)?;
                }
                self.publish(
                    s,
                    ShardState {
                        index: shadow,
                        epoch: pre_swap[s].epoch + 1,
                        id_map: None,
                    },
                );
                // Replayed ops may have left tails/tombstones.
                self.topology()[s].dirty.store(true, Ordering::Relaxed);
            }
            Ok(replayed_ops)
        }));
        let outcome = attempt.unwrap_or_else(|payload| {
            Err(Error::worker_panicked(format!(
                "fleet rebuild swap: {}",
                parallel::panic_message(&*payload)
            )))
        });
        let replayed_ops = match outcome {
            Ok(n) => n,
            Err(err) => {
                // Republish the pinned pre-swap states: a partial swap is
                // erased and every reader keeps seeing one lineage.
                for (s, state) in pre_swap.into_iter().enumerate() {
                    self.publish_arc(s, state);
                }
                return Err(err);
            }
        };

        // Phase 4: make the new lineage the recovery root. A crash anywhere
        // before the checkpoint's atomic rename lands recovery on the old
        // lineage + full suffix replay; after it, on the new lineage.
        let checkpoint = match &durability {
            Some(d) => {
                let report = self.checkpoint_locked(d)?;
                d.wal.append_unsynced(&WalRecord::RebuildPublish {
                    covered_lsn: report.covered_lsn,
                })?;
                d.wal.sync()?;
                Some(report)
            }
            None => None,
        };
        let drift_after = self.load(0).index.drift_report();
        Ok(RebuildReport {
            trained_points,
            replayed_ops,
            pinned_lsn: start_lsn,
            drift_before,
            drift_after,
            checkpoint,
        })
    }

    /// Repartitions the fleet to `new_count` shards by **snapshot surgery**
    /// under live reads: every global-id replica retains the dense per-id
    /// assignment and code rows for *all* ids ever allocated (tombstones
    /// included), so shard 0's replica alone can derive, via
    /// [`AnnIndex::with_live_ids`], a replica owning any id subset — no
    /// retraining, no vector I/O. The new shard vector is built off to the
    /// side and published in **one topology-pointer swap**: a reader
    /// pinning mid-resize sees the old or the new topology wholesale, and
    /// because every shard shares the same trained state and allocator, the
    /// resized fleet's search results stay bit-identical to the monolith's.
    ///
    /// With a WAL attached the resize is sealed with a checkpoint, making
    /// the new topology the recovery root; a crash before that checkpoint
    /// recovers the old topology with the same acknowledged data (topology
    /// is configuration — either generation replays the log correctly).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for a count of 0, above [`MAX_SHARDS`], or
    /// equal to the current count; [`Error::Unsupported`] for mapped fleets
    /// and engines without rebuild support. On error before the swap the
    /// fleet is untouched; a post-swap checkpoint failure surfaces with the
    /// fleet already (consistently) on the new topology.
    pub fn resize_shards(&self, new_count: usize) -> Result<()> {
        let _writer = self.writer.lock().expect("fleet writer lock poisoned");
        self.ensure_global()?;
        if new_count == 0 {
            return Err(Error::invalid_config("a fleet needs at least one shard"));
        }
        if new_count > MAX_SHARDS {
            return Err(Error::invalid_config(format!(
                "at most {MAX_SHARDS} shards are supported"
            )));
        }
        let shards = self.topology();
        if new_count == shards.len() {
            return Err(Error::invalid_config(format!(
                "fleet already has {new_count} shards"
            )));
        }
        let states: Vec<Arc<ShardState<I>>> = shards
            .iter()
            .map(|shard| shard.slot.read().expect("shard slot lock poisoned").clone())
            .collect();
        if !states[0].index.supports_rebuild() {
            return Err(Error::unsupported(format!(
                "{} does not support shard split/merge",
                states[0].index.name()
            )));
        }
        let plan = self.fault_plan();
        let router = self.router;
        // All new states publish past every live epoch, like a restore.
        let base_epoch = states.iter().map(|s| s.epoch).max().unwrap_or(0) + 1;
        let mut all_live: Vec<u64> = Vec::new();
        for state in &states {
            all_live.extend(state.index.ids());
        }
        all_live.sort_unstable();
        let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<Shard<I>>> {
            let mut new_shards = Vec::with_capacity(new_count);
            for s in 0..new_count {
                if let Some(plan) = &plan {
                    // Counted on the NEW shard index.
                    plan.inject(s, FaultOp::Split)?;
                }
                let owned: Vec<u64> = all_live
                    .iter()
                    .copied()
                    .filter(|&id| router.route(id, new_count) == s)
                    .collect();
                let index = states[0].index.with_live_ids(&owned)?;
                new_shards.push(Shard::new(
                    ShardState {
                        index,
                        epoch: base_epoch,
                        id_map: None,
                    },
                    true,
                ));
            }
            Ok(new_shards)
        }));
        // Nothing has been published yet, so an error (or panic) here
        // leaves the live fleet untouched — no rollback needed.
        let new_shards = attempt.unwrap_or_else(|payload| {
            Err(Error::worker_panicked(format!(
                "fleet resize: {}",
                parallel::panic_message(&*payload)
            )))
        })?;
        self.set_topology(new_shards);
        self.reshape_health(new_count);
        if let Some(d) = self.durability_handle() {
            // Seal the new topology as the recovery root.
            self.checkpoint_locked(&d)?;
        }
        Ok(())
    }

    /// Splits the fleet one shard wider (`S` → `S + 1`) under live traffic.
    /// Returns the new shard count. See [`ShardedIndex::resize_shards`].
    ///
    /// # Errors
    ///
    /// See [`ShardedIndex::resize_shards`].
    pub fn split_shard(&self) -> Result<usize> {
        let new_count = self.num_shards() + 1;
        self.resize_shards(new_count)?;
        Ok(new_count)
    }

    /// Merges the fleet one shard narrower (`S` → `S - 1`) under live
    /// traffic. Returns the new shard count. See
    /// [`ShardedIndex::resize_shards`].
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for a single-shard fleet; see
    /// [`ShardedIndex::resize_shards`] for the rest.
    pub fn merge_shards(&self) -> Result<usize> {
        let current = self.num_shards();
        if current <= 1 {
            return Err(Error::invalid_config(
                "a single-shard fleet cannot merge further",
            ));
        }
        self.resize_shards(current - 1)?;
        Ok(current - 1)
    }
}

/// The outcome of [`ShardedIndex::rebuild_shared`].
#[derive(Debug, Clone)]
pub struct RebuildReport {
    /// Live vectors in the pinned snapshot the fresh lineage trained on.
    pub trained_points: usize,
    /// Mutations that landed during training and were replayed into the
    /// shadows before the swap (always 0 without a WAL — writers were
    /// paused).
    pub replayed_ops: u64,
    /// The WAL position the training snapshot was pinned at (`None`
    /// without a WAL).
    pub pinned_lsn: Option<u64>,
    /// Shard 0's drift report at pin time (the signal that typically
    /// triggered this rebuild).
    pub drift_before: Option<DriftReport>,
    /// Shard 0's drift report after the swap — re-anchored to the fresh
    /// lineage's training distribution.
    pub drift_after: Option<DriftReport>,
    /// The checkpoint that sealed the new lineage (`None` without a WAL).
    pub checkpoint: Option<CheckpointReport>,
}

/// Internal constructor used by the persistence decoder.
pub(crate) fn shard_state<I>(index: I, epoch: u64, id_map: Option<Arc<Vec<u64>>>) -> ShardState<I> {
    ShardState {
        index,
        epoch,
        id_map,
    }
}

/// Internal accessor used by the persistence encoder.
pub(crate) fn state_id_map<I>(state: &ShardState<I>) -> Option<&Arc<Vec<u64>>> {
    state.id_map.as_ref()
}

impl<I: AnnIndex + Clone> AnnIndex for ShardedIndex<I> {
    fn metric(&self) -> juno_common::Metric {
        self.load(0).index.metric()
    }

    fn dim(&self) -> usize {
        self.load(0).index.dim()
    }

    fn len(&self) -> usize {
        self.reader().len()
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult> {
        self.reader().search(query, k)
    }

    fn search_batch(&self, queries: &VectorSet, k: usize) -> Result<Vec<SearchResult>> {
        self.reader().search_batch(queries, k)
    }

    fn search_batch_threads(
        &self,
        queries: &VectorSet,
        k: usize,
        num_threads: usize,
    ) -> Result<Vec<SearchResult>> {
        self.reader().search_batch_threads(queries, k, num_threads)
    }

    fn supports_mutation(&self) -> bool {
        let first = self.load(0);
        first.id_map.is_none() && first.index.supports_mutation()
    }

    fn supports_snapshot(&self) -> bool {
        self.load(0).index.supports_snapshot()
    }

    fn insert(&mut self, vector: &[f32]) -> Result<u64> {
        self.insert_shared(vector)
    }

    fn remove(&mut self, id: u64) -> Result<bool> {
        self.remove_shared(id)
    }

    fn compact(&mut self) -> Result<()> {
        self.compact_all_shared()
    }

    fn snapshot(&self) -> Result<Vec<u8>> {
        self.to_snapshot_bytes()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<()> {
        self.restore_from_bytes(bytes)
    }

    fn merge_order(&self) -> ScoreOrder {
        self.load(0).index.merge_order()
    }

    fn ids(&self) -> Vec<u64> {
        let reader = self.reader();
        let mut ids: Vec<u64> = Vec::with_capacity(reader.len());
        for s in 0..reader.num_shards() {
            let state = reader.shard(s);
            match &state.id_map {
                Some(map) => ids.extend_from_slice(map),
                None => ids.extend(state.index.ids()),
            }
        }
        ids.sort_unstable();
        ids
    }

    fn name(&self) -> String {
        format!(
            "Sharded{}x[{}]",
            self.num_shards(),
            self.load(0).index.name()
        )
    }
}

/// A background thread that periodically compacts every shard of a fleet
/// (clone-and-publish, so readers are never blocked). The thread stops and
/// joins when the guard is dropped.
///
/// Compaction failures do not kill the thread: each failure is counted
/// ([`BackgroundCompactor::errors`]), logged to stderr, and retried on the
/// next tick with a capped exponential backoff (up to 32× the interval), so
/// a persistently failing shard cannot turn the compactor into a hot loop —
/// and a shard that recovers is swept again at the normal cadence.
///
/// Shutdown is condvar-driven: dropping the guard notifies the sleeping
/// thread directly, so shutdown latency is one lock handoff (plus at most
/// one in-flight sweep), independent of the configured interval — a 10 s
/// cadence does not cost 10 s (or even 1 ms of slicing) to tear down.
#[derive(Debug)]
pub struct BackgroundCompactor {
    stop: Arc<(Mutex<bool>, Condvar)>,
    runs: Arc<AtomicU64>,
    errors: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl BackgroundCompactor {
    /// Spawns the compaction thread, waking every `interval` (clamped to at
    /// least 100µs so a zero interval cannot busy-spin on the writer lock).
    pub fn spawn<I>(fleet: Arc<ShardedIndex<I>>, interval: Duration) -> Self
    where
        I: AnnIndex + Clone + 'static,
    {
        let interval = interval.max(Duration::from_micros(100));
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let runs = Arc::new(AtomicU64::new(0));
        let errors = Arc::new(AtomicU64::new(0));
        let (stop_pair, run_counter, error_counter) = (stop.clone(), runs.clone(), errors.clone());
        let handle = std::thread::spawn(move || {
            let (stop_flag, stop_signal) = &*stop_pair;
            let mut consecutive_failures: u32 = 0;
            loop {
                // After failures, back off exponentially (capped at 32x) so
                // a broken shard is retried, not hammered.
                let factor = 1u32 << consecutive_failures.min(5);
                let wait = interval.saturating_mul(factor);
                // Wait on the condvar so Drop wakes us immediately instead
                // of us polling a flag: shutdown latency is a lock handoff,
                // not a sleep slice. Deadline-based loop guards against
                // spurious wakeups without extending the cadence.
                let deadline = Instant::now() + wait;
                let mut stopped = stop_flag.lock().expect("compactor stop lock");
                loop {
                    if *stopped {
                        return;
                    }
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        break;
                    }
                    let (guard, _timeout) = stop_signal
                        .wait_timeout(stopped, remaining)
                        .expect("compactor stop lock");
                    stopped = guard;
                }
                drop(stopped);
                match fleet.compact_all_shared() {
                    Ok(()) => {
                        consecutive_failures = 0;
                        run_counter.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(err) => {
                        consecutive_failures = consecutive_failures.saturating_add(1);
                        error_counter.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "[juno-serve] background compaction failed \
                             ({consecutive_failures} consecutive), backing off: {err}"
                        );
                    }
                }
            }
        });
        Self {
            stop,
            runs,
            errors,
            handle: Some(handle),
        }
    }

    /// Number of completed compaction sweeps so far.
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Number of failed compaction sweeps so far (the thread survives them).
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

impl Drop for BackgroundCompactor {
    fn drop(&mut self) {
        let (stop_flag, stop_signal) = &*self.stop;
        *stop_flag.lock().expect("compactor stop lock") = true;
        stop_signal.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// When a [`Rebuilder`] pulls the trigger on a background re-train.
///
/// A rebuild fires when the fleet has absorbed at least `min_inserts`
/// post-build inserts **and** either drift signal trips: the EWMA residual
/// ratio (inserts landing far from the trained centroids) or the structural
/// tail-fill ratio (clusters dominated by append-tail rows the trained
/// layout never saw). Both signals come from
/// [`ShardedIndex::drift_report`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildPolicy {
    /// Trigger when `drift_ratio` (EWMA insert residual energy over the
    /// training baseline) reaches this. Default 2.0 — inserts land twice as
    /// far from their centroids as the training distribution did.
    pub drift_ratio_threshold: f64,
    /// Trigger when any cluster's tail-fill fraction reaches this.
    /// Default 0.5 — half the cluster's rows postdate the trained layout.
    pub tail_fill_threshold: f64,
    /// Suppress rebuilds until this many inserts were tracked since the
    /// last (re)build, so a handful of outliers cannot churn the fleet.
    /// Default 512.
    pub min_inserts: u64,
    /// How often the drift report is polled. Default 5 s.
    pub interval: Duration,
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        Self {
            drift_ratio_threshold: 2.0,
            tail_fill_threshold: 0.5,
            min_inserts: 512,
            interval: Duration::from_secs(5),
        }
    }
}

impl RebuildPolicy {
    /// Whether `report` trips this policy.
    pub fn should_rebuild(&self, report: &DriftReport) -> bool {
        report.inserts_tracked >= self.min_inserts
            && (report.drift_ratio >= self.drift_ratio_threshold
                || report.max_tail_fill >= self.tail_fill_threshold)
    }
}

/// A background thread that watches the fleet's drift report and runs
/// [`ShardedIndex::rebuild_shared`] when a [`RebuildPolicy`] trips —
/// closing the self-healing loop: distribution shift degrades recall, the
/// drift signal crosses the policy threshold, and a fresh lineage trained
/// on the *current* distribution swaps in under live traffic.
///
/// Failures do not kill the thread: each one is counted, logged to stderr,
/// and retried with a capped exponential backoff (up to 32× the poll
/// interval), exactly like [`BackgroundCompactor`]. Shutdown is
/// condvar-driven via `Drop` — one lock handoff plus at most one in-flight
/// rebuild.
#[derive(Debug)]
pub struct Rebuilder {
    stop: Arc<(Mutex<bool>, Condvar)>,
    checks: Arc<AtomicU64>,
    rebuilds: Arc<AtomicU64>,
    errors: Arc<AtomicU64>,
    registry: Arc<Registry>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Rebuilder {
    /// Spawns the watcher thread, polling every `policy.interval` (clamped
    /// to at least 100µs).
    pub fn spawn<I>(fleet: Arc<ShardedIndex<I>>, policy: RebuildPolicy) -> Self
    where
        I: AnnIndex + Clone + 'static,
    {
        let interval = policy.interval.max(Duration::from_micros(100));
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let checks = Arc::new(AtomicU64::new(0));
        let rebuilds = Arc::new(AtomicU64::new(0));
        let errors = Arc::new(AtomicU64::new(0));
        let registry = Arc::new(Registry::new());
        let (stop_pair, check_counter, rebuild_counter, error_counter, metrics) = (
            stop.clone(),
            checks.clone(),
            rebuilds.clone(),
            errors.clone(),
            registry.clone(),
        );
        let handle = std::thread::spawn(move || {
            let (stop_flag, stop_signal) = &*stop_pair;
            let mut consecutive_failures: u32 = 0;
            loop {
                let factor = 1u32 << consecutive_failures.min(5);
                let deadline = Instant::now() + interval.saturating_mul(factor);
                let mut stopped = stop_flag.lock().expect("rebuilder stop lock");
                loop {
                    if *stopped {
                        return;
                    }
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        break;
                    }
                    let (guard, _timeout) = stop_signal
                        .wait_timeout(stopped, remaining)
                        .expect("rebuilder stop lock");
                    stopped = guard;
                }
                drop(stopped);
                check_counter.fetch_add(1, Ordering::Relaxed);
                let Some(report) = fleet.drift_report() else {
                    // Engine without drift tracking: nothing to watch, but
                    // keep the thread alive in case a restore changes that.
                    continue;
                };
                // Gauges hold integers; export the ratios in milli-units.
                metrics
                    .gauge("lifecycle.drift_ratio_milli")
                    .set((report.drift_ratio * 1000.0) as i64);
                metrics
                    .gauge("lifecycle.max_tail_fill_milli")
                    .set((report.max_tail_fill * 1000.0) as i64);
                metrics
                    .gauge("lifecycle.inserts_tracked")
                    .set(report.inserts_tracked.min(i64::MAX as u64) as i64);
                if !policy.should_rebuild(&report) {
                    consecutive_failures = 0;
                    continue;
                }
                match fleet.rebuild_shared() {
                    Ok(outcome) => {
                        consecutive_failures = 0;
                        rebuild_counter.fetch_add(1, Ordering::Relaxed);
                        metrics.counter("lifecycle.rebuilds").inc();
                        metrics
                            .counter("lifecycle.replayed_ops")
                            .add(outcome.replayed_ops);
                        metrics
                            .counter("lifecycle.trained_points")
                            .add(outcome.trained_points as u64);
                    }
                    Err(err) => {
                        consecutive_failures = consecutive_failures.saturating_add(1);
                        error_counter.fetch_add(1, Ordering::Relaxed);
                        metrics.counter("lifecycle.rebuild_errors").inc();
                        eprintln!(
                            "[juno-serve] background rebuild failed \
                             ({consecutive_failures} consecutive), backing off: {err}"
                        );
                    }
                }
            }
        });
        Self {
            stop,
            checks,
            rebuilds,
            errors,
            registry,
            handle: Some(handle),
        }
    }

    /// Number of drift checks performed so far.
    pub fn checks(&self) -> u64 {
        self.checks.load(Ordering::Relaxed)
    }

    /// Number of completed background rebuilds so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Number of failed rebuild attempts so far (the thread survives them).
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Point-in-time snapshot of the `lifecycle.*` metrics (drift gauges,
    /// rebuild/replay counters).
    pub fn metrics(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }
}

impl Drop for Rebuilder {
    fn drop(&mut self) {
        let (stop_flag, stop_signal) = &*self.stop;
        *stop_flag.lock().expect("rebuilder stop lock") = true;
        stop_signal.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
