//! The sharded, concurrently readable serving index.
//!
//! [`ShardedIndex`] wraps `S` replicas of an [`AnnIndex`] behind per-shard
//! **epoch pointers**: each shard publishes its current state as an
//! `Arc<ShardState<I>>` guarded by an `RwLock` that is only ever held for
//! the duration of a pointer clone or swap. Readers pin a whole-fleet
//! snapshot ([`FleetReader`]) in O(S) pointer clones and then search without
//! taking any lock at all; writers mutate a **clone** of a shard's state and
//! publish it with a pointer swap (clone-and-publish), so readers never
//! block on insert / remove / compaction, and a pinned reader keeps
//! observing its epoch bit-identically for as long as it lives.
//!
//! # Ownership and bit-parity
//!
//! The fleet has two construction modes with different guarantees:
//!
//! * **Global-id mode** ([`ShardedIndex::from_monolith`]) — every shard is a
//!   full replica of the monolithic index in which the points *not* owned by
//!   the shard (per the [`ShardRouter`]) are tombstoned. All replicas share
//!   the monolith's trained state (coarse centroids, PQ codebooks, threshold
//!   density maps), and every insert is applied to **every** replica — then
//!   tombstoned on the non-owners within the same atomic publish — so the
//!   id allocators and the density calibration stay in lockstep with a
//!   monolith receiving the same operations. Because each live point is
//!   scored by exactly one shard with exactly the monolith's arithmetic, the
//!   deterministic tie-by-id merge
//!   ([`juno_common::topk::merge_neighbors`]) reconstructs the monolith's
//!   ids and distance **bits** — the contract `tests/shard_parity.rs` pins.
//! * **Mapped mode** ([`ShardedIndex::from_prebuilt`]) — pre-partitioned
//!   sub-indexes with a local→global id map per shard, for engines without
//!   mutation support (Flat, HNSW, IVF-Flat). Such fleets are read-only;
//!   exact engines (Flat) still merge bit-identically to the monolith when
//!   each shard's rows ascend in global id.
//!
//! Searches gather per-shard results with
//! [`SearchStats::merge_scatter`] (work counters sum, wall-clock stage
//! times take the max — the shard scans ran concurrently).

use crate::persist;
use crate::router::{ShardRouter, MAX_SHARDS};
use juno_common::error::{Error, Result};
use juno_common::index::{AnnIndex, SearchResult, SearchStats};
use juno_common::parallel;
use juno_common::topk::{merge_neighbors, ScoreOrder};
use juno_common::vector::VectorSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// One published shard state: the index, the epoch that published it, and
/// (mapped fleets only) the local→global id translation.
#[derive(Debug, Clone)]
pub struct ShardState<I> {
    index: I,
    epoch: u64,
    id_map: Option<Arc<Vec<u64>>>,
}

impl<I: AnnIndex> ShardState<I> {
    /// The shard's index at this epoch.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// The epoch counter this state was published at (starts at 0, bumps on
    /// every publish).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// A shard slot: the lock is held only to clone or swap the `Arc`, never
/// across a search or a mutation.
#[derive(Debug)]
struct Shard<I> {
    slot: RwLock<Arc<ShardState<I>>>,
    /// Set by mutations (tails / tombstones may exist), cleared by a
    /// compaction sweep: lets [`ShardedIndex::compact_all_shared`] skip the
    /// clone-and-publish of shards with nothing to compact. Atomic so
    /// writers flag it under the fleet writer lock without touching `slot`.
    dirty: AtomicBool,
}

impl<I> Shard<I> {
    /// `dirty` starts `true` for shards whose engine may hold uncompacted
    /// state (fresh replicas, restored global-id shards) and `false` for
    /// read-only mapped shards, which never have anything to compact.
    fn new(state: ShardState<I>, dirty: bool) -> Self {
        Self {
            slot: RwLock::new(Arc::new(state)),
            dirty: AtomicBool::new(dirty),
        }
    }
}

/// A pinned, immutable point-in-time view of the whole fleet.
///
/// Pinning is O(S) `Arc` clones; afterwards every search on the reader runs
/// lock-free against exactly the pinned epochs — concurrent writers publish
/// new epochs without disturbing it (snapshot isolation). Re-running a
/// search on the same reader is bit-identical no matter what the writers
/// did in between.
#[derive(Debug, Clone)]
pub struct FleetReader<I: AnnIndex> {
    states: Vec<Arc<ShardState<I>>>,
}

impl<I: AnnIndex> FleetReader<I> {
    /// Number of shards pinned.
    pub fn num_shards(&self) -> usize {
        self.states.len()
    }

    /// The pinned epoch of every shard, in shard order.
    pub fn epochs(&self) -> Vec<u64> {
        self.states.iter().map(|s| s.epoch).collect()
    }

    /// Borrow of one pinned shard state.
    pub fn shard(&self, s: usize) -> &ShardState<I> {
        &self.states[s]
    }

    /// Total live vectors across all pinned shards.
    pub fn len(&self) -> usize {
        self.states.iter().map(|s| s.index.len()).sum()
    }

    /// Returns `true` when no shard holds a live vector.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remaps a shard's neighbours into the global id space and re-sorts
    /// under the merge order (mapped shards only; a no-op for global-id
    /// shards, whose lists already arrive merge-ordered).
    fn globalise(&self, s: usize, result: &mut SearchResult, order: ScoreOrder) {
        if let Some(map) = &self.states[s].id_map {
            for n in &mut result.neighbors {
                n.id = map[n.id as usize];
            }
            result.neighbors.sort_by(|a, b| order.cmp_neighbors(a, b));
        }
    }

    /// Gathers per-shard results for one query into the global top-k.
    fn gather(
        &self,
        mut per_shard: Vec<SearchResult>,
        k: usize,
        order: ScoreOrder,
    ) -> SearchResult {
        let mut stats = SearchStats::default();
        let mut simulated_us = 0.0f64;
        let mut lists = Vec::with_capacity(per_shard.len());
        for (s, result) in per_shard.iter_mut().enumerate() {
            self.globalise(s, result, order);
            stats.merge_scatter(&result.stats);
            simulated_us = simulated_us.max(result.simulated_us);
            lists.push(std::mem::take(&mut result.neighbors));
        }
        SearchResult {
            neighbors: merge_neighbors(&lists, k, order),
            simulated_us,
            stats,
        }
    }

    /// Scatter-gather search of one query: the shard scans fan out across
    /// the work-stealing pool (one task per shard, up to the default thread
    /// budget) and the per-shard top-k lists merge deterministically (tie by
    /// id) into the global top-k. Results are identical to a sequential
    /// shard loop — the scheduling only changes latency.
    ///
    /// # Errors
    ///
    /// Propagates the first shard error (dimension mismatch etc.).
    pub fn search(&self, query: &[f32], k: usize) -> Result<SearchResult> {
        let order = self.states[0].index.merge_order();
        let workers = self.states.len().min(parallel::default_threads());
        let per_shard = parallel::map(self.states.len(), workers, |s| {
            self.states[s].index.search(query, k)
        })
        .into_iter()
        .collect::<Result<Vec<_>>>()?;
        Ok(self.gather(per_shard, k, order))
    }

    /// Scatter-gather batch search with an explicit worker-thread budget:
    /// the thread budget is split across the shards — up to `S` outer
    /// workers scan shards concurrently, each fanning its shard's batch
    /// through the engine's own batched path with the remaining budget.
    /// For JUNO and IVFPQ shards that path is the **cluster-major grouped
    /// executor**: each shard plans its local batch, routes it into a
    /// cluster→query-group schedule and streams every probed cluster's code
    /// blocks once per query group (with the per-worker batch arena reused
    /// across the whole shard batch). Per-query results then merge across
    /// shards under the usual deterministic order. `num_threads = 1`
    /// recovers the sequential shard-by-shard loop; results are identical —
    /// ids and distance bits — for every budget and execution strategy.
    ///
    /// # Errors
    ///
    /// Propagates the first per-shard error encountered.
    pub fn search_batch_threads(
        &self,
        queries: &VectorSet,
        k: usize,
        num_threads: usize,
    ) -> Result<Vec<SearchResult>> {
        let order = self.states[0].index.merge_order();
        let outer = num_threads.clamp(1, self.states.len());
        let inner = (num_threads / outer).max(1);
        let mut shard_batches = parallel::map(self.states.len(), outer, |s| {
            self.states[s].index.search_batch_threads(queries, k, inner)
        })
        .into_iter()
        .collect::<Result<Vec<_>>>()?;
        let mut out = Vec::with_capacity(queries.len());
        for qi in 0..queries.len() {
            let per_shard: Vec<SearchResult> = shard_batches
                .iter_mut()
                .map(|batch| std::mem::take(&mut batch[qi]))
                .collect();
            out.push(self.gather(per_shard, k, order));
        }
        Ok(out)
    }

    /// [`FleetReader::search_batch_threads`] with the default thread budget.
    ///
    /// # Errors
    ///
    /// Propagates the first per-shard error encountered.
    pub fn search_batch(&self, queries: &VectorSet, k: usize) -> Result<Vec<SearchResult>> {
        self.search_batch_threads(queries, k, parallel::default_threads())
    }
}

/// A sharded ANN index with snapshot-isolated concurrent reads and
/// clone-and-publish writes. See the [module docs](self) for the concurrency
/// and parity model.
#[derive(Debug)]
pub struct ShardedIndex<I: AnnIndex> {
    shards: Vec<Shard<I>>,
    router: ShardRouter,
    /// Serialises writers (and fleet-consistent snapshots). Readers never
    /// take it.
    writer: Mutex<()>,
}

impl<I: AnnIndex> ShardedIndex<I> {
    /// Number of shards in the fleet.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The id router partitioning ownership across shards.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    fn load(&self, s: usize) -> Arc<ShardState<I>> {
        self.shards[s]
            .slot
            .read()
            .expect("shard slot lock poisoned")
            .clone()
    }

    fn publish(&self, s: usize, state: ShardState<I>) {
        *self.shards[s]
            .slot
            .write()
            .expect("shard slot lock poisoned") = Arc::new(state);
    }

    /// Pins a point-in-time view of the fleet (O(S) pointer clones; never
    /// blocks behind an in-flight mutation). Per shard the view is exactly
    /// one published epoch; a writer publishing between two shard pins can
    /// skew epochs *across* shards, which is harmless because every point is
    /// live in at most one shard at every published epoch.
    pub fn reader(&self) -> FleetReader<I> {
        FleetReader {
            states: (0..self.shards.len()).map(|s| self.load(s)).collect(),
        }
    }

    /// The current published epoch of every shard.
    pub fn shard_epochs(&self) -> Vec<u64> {
        (0..self.shards.len()).map(|s| self.load(s).epoch).collect()
    }

    /// Builds a read-only fleet from pre-partitioned sub-indexes, each with
    /// a local→global id map (`map[local_id] = global_id`). This is the mode
    /// for engines without mutation support; searches translate ids before
    /// the merge. For boundary-tie parity with a monolith, each shard's rows
    /// should ascend in global id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `parts` is empty or oversized,
    /// the shards disagree on dim/metric, a map's length does not match its
    /// index, or global ids collide across shards.
    pub fn from_prebuilt(parts: Vec<(I, Vec<u64>)>, router: ShardRouter) -> Result<Self> {
        if parts.is_empty() {
            return Err(Error::invalid_config("a fleet needs at least one shard"));
        }
        if parts.len() > MAX_SHARDS {
            return Err(Error::invalid_config(format!(
                "at most {MAX_SHARDS} shards are supported"
            )));
        }
        let dim = parts[0].0.dim();
        let metric = parts[0].0.metric();
        let mut all_ids: Vec<u64> = Vec::new();
        for (s, (index, map)) in parts.iter().enumerate() {
            if index.dim() != dim || index.metric() != metric {
                return Err(Error::invalid_config(format!(
                    "shard {s} disagrees on dim/metric with shard 0"
                )));
            }
            if index.len() != map.len() {
                return Err(Error::invalid_config(format!(
                    "shard {s}: id map covers {} ids for {} indexed vectors",
                    map.len(),
                    index.len()
                )));
            }
            all_ids.extend_from_slice(map);
        }
        all_ids.sort_unstable();
        if all_ids.windows(2).any(|w| w[0] == w[1]) {
            return Err(Error::invalid_config(
                "global ids collide across prebuilt shards",
            ));
        }
        let shards = parts
            .into_iter()
            .map(|(index, map)| {
                Shard::new(
                    ShardState {
                        index,
                        epoch: 0,
                        id_map: Some(Arc::new(map)),
                    },
                    false,
                )
            })
            .collect();
        Ok(Self {
            shards,
            router,
            writer: Mutex::new(()),
        })
    }

    /// Returns an error unless the fleet is in global-id mode (mutation is
    /// undefined for mapped, pre-partitioned fleets).
    fn ensure_global(&self) -> Result<()> {
        if self.load(0).id_map.is_some() {
            return Err(Error::unsupported(
                "mapped (pre-partitioned) sharded fleets are read-only",
            ));
        }
        Ok(())
    }
}

impl<I: AnnIndex + Clone> ShardedIndex<I> {
    /// Builds a global-id fleet by replicating a monolithic index and
    /// tombstoning, in each replica, every id the router assigns elsewhere
    /// (followed by a per-shard compaction, so each shard physically scans
    /// only its own points). All replicas share the monolith's trained
    /// state, which is what makes scatter-gather results bit-identical to
    /// the monolith.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a shard count of 0 or above
    /// [`MAX_SHARDS`], [`Error::Unsupported`] when `num_shards > 1` and the
    /// engine cannot tombstone, and propagates engine removal errors.
    pub fn from_monolith(monolith: I, num_shards: usize, router: ShardRouter) -> Result<Self> {
        if num_shards == 0 {
            return Err(Error::invalid_config("a fleet needs at least one shard"));
        }
        if num_shards > MAX_SHARDS {
            return Err(Error::invalid_config(format!(
                "at most {MAX_SHARDS} shards are supported"
            )));
        }
        if num_shards > 1 && !monolith.supports_mutation() {
            return Err(Error::unsupported(format!(
                "{} cannot tombstone, so it shards via ShardedIndex::from_prebuilt only",
                monolith.name()
            )));
        }
        let ids = monolith.ids();
        let mut shards = Vec::with_capacity(num_shards);
        let mut monolith = Some(monolith);
        for s in 0..num_shards {
            let mut replica = if s + 1 == num_shards {
                monolith.take().expect("monolith consumed once")
            } else {
                monolith.as_ref().expect("monolith live").clone()
            };
            if num_shards > 1 {
                for &id in &ids {
                    if router.route(id, num_shards) != s {
                        replica.remove(id)?;
                    }
                }
                replica.compact()?;
            }
            shards.push(Shard::new(
                ShardState {
                    index: replica,
                    epoch: 0,
                    id_map: None,
                },
                true,
            ));
        }
        Ok(Self {
            shards,
            router,
            writer: Mutex::new(()),
        })
    }

    /// Restores a fleet from snapshot bytes, using `prototype` as the engine
    /// to decode per-shard state into (any instance of the right engine
    /// type). Accepts both `SHRD` fleet snapshots and legacy unsharded
    /// engine snapshots (which restore into a single-shard fleet).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] for malformed bytes; never panics.
    pub fn from_snapshot_bytes(prototype: I, bytes: &[u8]) -> Result<Self> {
        let mut fleet = Self::from_monolith(prototype, 1, ShardRouter::Hash { seed: 0 })?;
        fleet.restore_from_bytes(bytes)?;
        Ok(fleet)
    }

    /// Inserts one vector, routed to its owning shard. See
    /// [`ShardedIndex::insert_batch_shared`] for the publication semantics
    /// (a single-element batch).
    ///
    /// # Errors
    ///
    /// Propagates engine insertion errors; rejects mapped fleets with
    /// [`Error::Unsupported`].
    pub fn insert_shared(&self, vector: &[f32]) -> Result<u64> {
        let batch = VectorSet::from_rows(vec![vector.to_vec()])?;
        Ok(self.insert_batch_shared(&batch)?[0])
    }

    /// Inserts a batch of vectors through the clone-and-publish write path.
    ///
    /// Every replica receives every insert (keeping id allocation and the
    /// engines' distribution state — e.g. JUNO's threshold density maps — in
    /// lockstep with a monolith), and each vector is tombstoned on every
    /// non-owning replica **within the same publish**, so at any published
    /// epoch a point is live in at most one shard: readers can never observe
    /// a duplicate or a vanishing id mid-operation. Each shard is cloned
    /// once per batch; the whole batch either publishes on every shard or —
    /// on error — on none.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (e.g. dimension mismatch) without publishing
    /// anything; rejects mapped fleets with [`Error::Unsupported`].
    pub fn insert_batch_shared(&self, vectors: &VectorSet) -> Result<Vec<u64>> {
        let _writer = self.writer.lock().expect("fleet writer lock poisoned");
        self.ensure_global()?;
        if vectors.is_empty() {
            return Ok(Vec::new());
        }
        let num_shards = self.num_shards();
        let mut ids: Vec<u64> = Vec::with_capacity(vectors.len());
        let mut staged: Vec<ShardState<I>> = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let current = self.load(s);
            let mut next = ShardState {
                index: current.index.clone(),
                epoch: current.epoch + 1,
                id_map: None,
            };
            for (vi, vector) in vectors.iter().enumerate() {
                let id = next.index.insert(vector)?;
                if s == 0 {
                    ids.push(id);
                } else if ids[vi] != id {
                    return Err(Error::invalid_config(format!(
                        "shard {s} allocated id {id} where shard 0 allocated {}; \
                         replicas have diverged",
                        ids[vi]
                    )));
                }
                if self.router.route(id, num_shards) != s {
                    next.index.remove(id)?;
                }
            }
            staged.push(next);
        }
        for (s, state) in staged.into_iter().enumerate() {
            self.publish(s, state);
            // Every replica gained a tail record (non-owners also a
            // tombstone), so every shard now has something to compact.
            self.shards[s].dirty.store(true, Ordering::Relaxed);
        }
        Ok(ids)
    }

    /// Removes the point with the given id from its owning shard
    /// (clone-and-publish; the other shards already hold it as a tombstone).
    /// Returns `Ok(true)` when the id was live.
    ///
    /// # Errors
    ///
    /// Propagates engine removal errors; rejects mapped fleets with
    /// [`Error::Unsupported`].
    pub fn remove_shared(&self, id: u64) -> Result<bool> {
        let _writer = self.writer.lock().expect("fleet writer lock poisoned");
        self.ensure_global()?;
        let owner = self.router.route(id, self.num_shards());
        let current = self.load(owner);
        let mut next = ShardState {
            index: current.index.clone(),
            epoch: current.epoch + 1,
            id_map: None,
        };
        let removed = next.index.remove(id)?;
        if removed {
            self.publish(owner, next);
            self.shards[owner].dirty.store(true, Ordering::Relaxed);
        }
        Ok(removed)
    }

    /// Compacts every shard that has seen a mutation since its last sweep,
    /// one clone-and-publish at a time. Clean shards (including every shard
    /// of a read-only mapped fleet) are skipped without cloning, so a
    /// [`BackgroundCompactor`] on an idle fleet costs nothing and publishes
    /// no epochs. Readers keep serving the pre-compaction epochs until each
    /// shard's swap; results are unchanged (compaction is bit-invisible per
    /// the engine contract).
    ///
    /// # Errors
    ///
    /// Propagates engine compaction errors (the failing shard is left
    /// flagged dirty so the next sweep retries it).
    pub fn compact_all_shared(&self) -> Result<()> {
        let _writer = self.writer.lock().expect("fleet writer lock poisoned");
        for s in 0..self.num_shards() {
            if !self.shards[s].dirty.swap(false, Ordering::Relaxed) {
                continue;
            }
            let current = self.load(s);
            let mut next = (*current).clone();
            next.epoch += 1;
            if let Err(err) = next.index.compact() {
                self.shards[s].dirty.store(true, Ordering::Relaxed);
                return Err(err);
            }
            self.publish(s, next);
        }
        Ok(())
    }

    /// Serialises the whole fleet into the `SHRD` snapshot container:
    /// a manifest section plus one sub-snapshot section per shard. The
    /// writer lock is held so the per-shard states are cross-consistent.
    ///
    /// # Errors
    ///
    /// Propagates engine snapshot errors ([`Error::Unsupported`] for
    /// engines without persistence).
    pub fn to_snapshot_bytes(&self) -> Result<Vec<u8>> {
        let _writer = self.writer.lock().expect("fleet writer lock poisoned");
        persist::encode_fleet(&self.reader(), self.router)
    }

    /// Replaces this fleet with the state decoded from `bytes` — the
    /// inverse of [`ShardedIndex::to_snapshot_bytes`]. Legacy unsharded
    /// engine snapshots are accepted and restore into a single-shard fleet
    /// (the router is kept). On any error the fleet is left untouched;
    /// epochs continue monotonically across a successful restore.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] for malformed bytes and propagates
    /// engine restore errors.
    pub fn restore_from_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        let base_epoch = self
            .shard_epochs()
            .into_iter()
            .max()
            .unwrap_or(0)
            .saturating_add(1);
        // Borrow the prototype from the current shard 0 — the decoder only
        // clones it per shard after the container has validated, so a
        // malformed snapshot is rejected without paying any engine clone.
        let current = self.load(0);
        let decoded = persist::decode_fleet(bytes, &current.index, base_epoch)?;
        drop(current);
        if let Some(router) = decoded.router {
            self.router = router;
        }
        self.shards = decoded
            .states
            .into_iter()
            .map(|state| {
                // Restored global-id shards may carry tails / tombstones
                // from their snapshotted lifecycle; mapped shards are
                // read-only and never need a sweep.
                let dirty = state.id_map.is_none();
                Shard::new(state, dirty)
            })
            .collect();
        Ok(())
    }
}

/// Internal constructor used by the persistence decoder.
pub(crate) fn shard_state<I>(index: I, epoch: u64, id_map: Option<Arc<Vec<u64>>>) -> ShardState<I> {
    ShardState {
        index,
        epoch,
        id_map,
    }
}

/// Internal accessor used by the persistence encoder.
pub(crate) fn state_id_map<I>(state: &ShardState<I>) -> Option<&Arc<Vec<u64>>> {
    state.id_map.as_ref()
}

impl<I: AnnIndex + Clone> AnnIndex for ShardedIndex<I> {
    fn metric(&self) -> juno_common::Metric {
        self.load(0).index.metric()
    }

    fn dim(&self) -> usize {
        self.load(0).index.dim()
    }

    fn len(&self) -> usize {
        self.reader().len()
    }

    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult> {
        self.reader().search(query, k)
    }

    fn search_batch(&self, queries: &VectorSet, k: usize) -> Result<Vec<SearchResult>> {
        self.reader().search_batch(queries, k)
    }

    fn search_batch_threads(
        &self,
        queries: &VectorSet,
        k: usize,
        num_threads: usize,
    ) -> Result<Vec<SearchResult>> {
        self.reader().search_batch_threads(queries, k, num_threads)
    }

    fn supports_mutation(&self) -> bool {
        let first = self.load(0);
        first.id_map.is_none() && first.index.supports_mutation()
    }

    fn supports_snapshot(&self) -> bool {
        self.load(0).index.supports_snapshot()
    }

    fn insert(&mut self, vector: &[f32]) -> Result<u64> {
        self.insert_shared(vector)
    }

    fn remove(&mut self, id: u64) -> Result<bool> {
        self.remove_shared(id)
    }

    fn compact(&mut self) -> Result<()> {
        self.compact_all_shared()
    }

    fn snapshot(&self) -> Result<Vec<u8>> {
        self.to_snapshot_bytes()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<()> {
        self.restore_from_bytes(bytes)
    }

    fn merge_order(&self) -> ScoreOrder {
        self.load(0).index.merge_order()
    }

    fn ids(&self) -> Vec<u64> {
        let reader = self.reader();
        let mut ids: Vec<u64> = Vec::with_capacity(reader.len());
        for s in 0..reader.num_shards() {
            let state = reader.shard(s);
            match &state.id_map {
                Some(map) => ids.extend_from_slice(map),
                None => ids.extend(state.index.ids()),
            }
        }
        ids.sort_unstable();
        ids
    }

    fn name(&self) -> String {
        format!(
            "Sharded{}x[{}]",
            self.num_shards(),
            self.load(0).index.name()
        )
    }
}

/// A background thread that periodically compacts every shard of a fleet
/// (clone-and-publish, so readers are never blocked). The thread stops and
/// joins when the guard is dropped.
#[derive(Debug)]
pub struct BackgroundCompactor {
    stop: Arc<AtomicBool>,
    runs: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl BackgroundCompactor {
    /// Spawns the compaction thread, waking every `interval` (clamped to at
    /// least 100µs so a zero interval cannot busy-spin on the writer lock).
    pub fn spawn<I>(fleet: Arc<ShardedIndex<I>>, interval: Duration) -> Self
    where
        I: AnnIndex + Clone + 'static,
    {
        let interval = interval.max(Duration::from_micros(100));
        let stop = Arc::new(AtomicBool::new(false));
        let runs = Arc::new(AtomicU64::new(0));
        let (stop_flag, run_counter) = (stop.clone(), runs.clone());
        let handle = std::thread::spawn(move || {
            let slice = Duration::from_millis(1).min(interval);
            loop {
                // Sleep in small slices so Drop returns promptly.
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if stop_flag.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(slice);
                    slept += slice;
                }
                if stop_flag.load(Ordering::Relaxed) {
                    return;
                }
                // Compaction failures are engine-specific and transient at
                // worst; the next tick retries. (No engine in the workspace
                // fails compaction today.)
                if fleet.compact_all_shared().is_ok() {
                    run_counter.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        Self {
            stop,
            runs,
            handle: Some(handle),
        }
    }

    /// Number of completed compaction sweeps so far.
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }
}

impl Drop for BackgroundCompactor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
