//! The deterministic fault-injection plane.
//!
//! Fleet-scale serving treats component failure as the steady state; testing
//! that posture needs faults that are **reproducible**. A [`FaultPlan`] is a
//! set of [`FaultRule`]s keyed by *(shard id, operation, per-shard op
//! counter)*: every instrumented code path calls
//! [`FaultPlan::inject`] at its injection point, which bumps that shard's
//! counter for the operation and fires the first matching rule — stalling
//! the caller, returning an injected error, or panicking the worker. Because
//! matching depends only on the counters (never on wall-clock or a shared
//! RNG drawn at injection time), a chaos test replays **bit-identically**
//! given the same plan and the same per-shard operation sequence; the
//! seeded [`FaultPlan::chaos`] generator derives a whole rule set from one
//! `u64` so CI can fuzz with a printed, replayable seed.
//!
//! # Instrumented points
//!
//! * [`FaultOp::Search`] — the start of each shard scan **on the
//!   deadline-aware degraded read path**
//!   ([`crate::FleetReader::search_deadline`] and the batch variant). The
//!   legacy exact path ([`crate::FleetReader::search`]) is deliberately not
//!   instrumented: it is the bit-identity reference the differential suites
//!   compare against.
//! * [`FaultOp::Insert`] — per shard, before staging a writer mutation
//!   (insert batch or remove) on that shard's clone.
//! * [`FaultOp::Publish`] — per shard, immediately before the staged state's
//!   pointer swap; a fault here simulates a crash *between* per-shard
//!   publishes, which the writer must roll back.
//! * [`FaultOp::Compact`] — per shard, before a compaction clone-and-publish.
//! * [`FaultOp::Restore`] — per restored shard, after validation but before
//!   the fleet swaps any state in.
//! * [`FaultOp::WalAppend`] — on the durability plane (shard 0 counters),
//!   after a mutation's WAL records are appended but **before** they are
//!   fsync'd: the post-append/pre-sync crash window.
//! * [`FaultOp::Checkpoint`] — after the checkpoint snapshot file is
//!   durably published but before the Checkpoint record is stamped into
//!   the log: the mid-checkpoint crash window.
//! * [`FaultOp::Rotate`] — after the WAL rotates to a fresh segment during
//!   a checkpoint but before sealed segments are pruned: the mid-rotation
//!   crash window.
//! * [`FaultOp::RebuildTrain`] — at the start of a background rebuild's
//!   training phase, after the reader pin and start-LSN capture (shard 0).
//! * [`FaultOp::RebuildReplay`] — before the rebuild replays the WAL suffix
//!   that landed during training into the shadow fleet (shard 0).
//! * [`FaultOp::RebuildSwap`] — per shard, immediately before the shadow
//!   state's epoch-pointer swap: the mid-publish crash window of the
//!   rebuild protocol.
//! * [`FaultOp::Split`] — per **new** shard during a split/merge resize,
//!   before its live-set surgery is derived.
//!
//! Injected panics carry [`juno_common::testing::INJECTED_PANIC_MARKER`] so
//! chaos suites can silence their print-out while real panics stay loud.
//! [`FaultKind::Crash`] aborts the whole process at the injection point —
//! it exists for subprocess crash harnesses (the parent spawns a child with
//! a Crash rule, waits for the abort, then recovers from the child's WAL
//! directory) and is therefore never drawn by [`FaultPlan::chaos`].

use juno_common::error::{Error, Result};
use juno_common::rng::{derive_seed, seeded, Rng};
use juno_common::testing::INJECTED_PANIC_MARKER;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// The operations instrumented with fault-injection points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// A shard scan on the deadline-aware read path.
    Search,
    /// Staging a writer mutation (insert / remove) on one shard's clone.
    Insert,
    /// The per-shard pointer swap publishing a staged writer state.
    Publish,
    /// A shard compaction sweep.
    Compact,
    /// Restoring one shard from snapshot bytes.
    Restore,
    /// A mutation's WAL records were appended but not yet fsync'd
    /// (post-append/pre-sync). Fleet-level: counted on shard 0.
    WalAppend,
    /// A checkpoint snapshot was published but its Checkpoint record not
    /// yet logged (mid-checkpoint). Fleet-level: counted on shard 0.
    Checkpoint,
    /// The WAL rotated to a fresh segment but sealed segments were not yet
    /// pruned (mid-rotation). Fleet-level: counted on shard 0.
    Rotate,
    /// A background rebuild entered its training phase (reader pinned,
    /// start LSN captured). Fleet-level: counted on shard 0.
    RebuildTrain,
    /// A background rebuild is about to replay the WAL suffix that landed
    /// during training into its shadow fleet. Fleet-level: shard 0.
    RebuildReplay,
    /// The per-shard epoch-pointer swap publishing a rebuilt shadow state.
    RebuildSwap,
    /// Deriving one new shard's live set during a split/merge resize
    /// (counted on the **new** shard index).
    Split,
}

/// Number of distinct [`FaultOp`] values (sizing the counter table).
const NUM_OPS: usize = 12;

impl FaultOp {
    fn index(self) -> usize {
        match self {
            FaultOp::Search => 0,
            FaultOp::Insert => 1,
            FaultOp::Publish => 2,
            FaultOp::Compact => 3,
            FaultOp::Restore => 4,
            FaultOp::WalAppend => 5,
            FaultOp::Checkpoint => 6,
            FaultOp::Rotate => 7,
            FaultOp::RebuildTrain => 8,
            FaultOp::RebuildReplay => 9,
            FaultOp::RebuildSwap => 10,
            FaultOp::Split => 11,
        }
    }

    /// All instrumented operations, in counter-table order.
    pub const ALL: [FaultOp; NUM_OPS] = [
        FaultOp::Search,
        FaultOp::Insert,
        FaultOp::Publish,
        FaultOp::Compact,
        FaultOp::Restore,
        FaultOp::WalAppend,
        FaultOp::Checkpoint,
        FaultOp::Rotate,
        FaultOp::RebuildTrain,
        FaultOp::RebuildReplay,
        FaultOp::RebuildSwap,
        FaultOp::Split,
    ];

    /// The operations [`FaultPlan::chaos`] draws rules over. The durability
    /// kill-points are excluded on purpose: chaos plans run against fleets
    /// with or without a WAL attached, and keeping the draw space fixed
    /// preserves seed-for-seed replayability of existing chaos suites.
    const CHAOS_OPS: [FaultOp; 5] = [
        FaultOp::Search,
        FaultOp::Insert,
        FaultOp::Publish,
        FaultOp::Compact,
        FaultOp::Restore,
    ];

    /// The operations [`FaultPlan::chaos_lifecycle`] draws rules over — the
    /// lifecycle plane's injection points. Kept separate from
    /// [`FaultOp::CHAOS_OPS`] so existing chaos suites replay seed-for-seed.
    const LIFECYCLE_OPS: [FaultOp; 4] = [
        FaultOp::RebuildTrain,
        FaultOp::RebuildReplay,
        FaultOp::RebuildSwap,
        FaultOp::Split,
    ];
}

/// What a matching rule does to the instrumented operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Sleep for the given duration, then let the operation proceed —
    /// models a slow or wedged shard (GC pause, IO stall, overload).
    Stall(Duration),
    /// Fail with [`Error::Unavailable`] (retryable). Pair with a short
    /// counter window to model transient errors that clear on retry.
    Transient,
    /// Fail with [`Error::Unavailable`] (retryable). Semantically identical
    /// to [`FaultKind::Transient`] at the injection point; pair with an
    /// unbounded window to model a persistently failing shard, which is what
    /// trips the circuit breaker.
    Fail,
    /// Panic the calling worker (the message carries the injected-fault
    /// marker). Exercises the `catch_unwind` isolation boundaries.
    Panic,
    /// Abort the whole process at the injection point (`std::process::abort`
    /// — no unwinding, no destructors, no flushing). This is the kill
    /// switch of subprocess crash harnesses: the child dies mid-protocol
    /// and the parent asserts that recovery from the surviving on-disk
    /// state is exact. Never drawn by [`FaultPlan::chaos`].
    Crash,
}

/// One fault rule: fires for the window `from_op..until_op` (exclusive end;
/// `None` = forever) of the per-shard counter of `op` on `shard`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// The shard whose operations this rule targets.
    pub shard: usize,
    /// The instrumented operation this rule targets.
    pub op: FaultOp,
    /// First per-shard op counter value (0-based) the rule fires at.
    pub from_op: u64,
    /// Counter value the rule stops firing at (exclusive); `None` keeps the
    /// rule firing forever (a persistent fault).
    pub until_op: Option<u64>,
    /// What happens when the rule fires.
    pub kind: FaultKind,
}

impl FaultRule {
    fn matches(&self, shard: usize, op: FaultOp, counter: u64) -> bool {
        self.shard == shard
            && self.op == op
            && counter >= self.from_op
            && self.until_op.is_none_or(|until| counter < until)
    }
}

/// A deterministic, replayable chaos plan. See the [module docs](self).
///
/// The plan is shared (`Arc`) between the fleet, its pinned readers and the
/// test driver; [`FaultPlan::disarm`] lets a test stop all injection without
/// touching the counters, modelling "the fault condition cleared".
#[derive(Debug)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    /// Per-(shard, op) injection-point counters: `shard * NUM_OPS + op`.
    counters: Vec<AtomicU64>,
    armed: AtomicBool,
}

impl FaultPlan {
    /// An empty (never-firing) plan for `num_shards` shards.
    pub fn new(num_shards: usize) -> Self {
        Self {
            rules: Vec::new(),
            counters: (0..num_shards * NUM_OPS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            armed: AtomicBool::new(true),
        }
    }

    /// Adds a rule (builder style).
    #[must_use]
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Derives a randomized-but-replayable plan from `seed`: each shard
    /// draws up to two rules with random op, kind, and counter window. The
    /// same seed always produces the same rule set — print the seed on
    /// failure and the run replays exactly.
    ///
    /// `max_stall` bounds injected stall durations (rules draw from
    /// `max_stall / 4 ..= max_stall`).
    pub fn chaos(seed: u64, num_shards: usize, max_stall: Duration) -> Self {
        let mut plan = Self::new(num_shards);
        for shard in 0..num_shards {
            let mut rng = seeded(derive_seed(seed, shard as u64));
            let num_rules = rng.gen_range(0..=2usize);
            for _ in 0..num_rules {
                let op = FaultOp::CHAOS_OPS[rng.gen_range(0..FaultOp::CHAOS_OPS.len())];
                let from_op = rng.gen_range(0..6u64);
                let width = rng.gen_range(1..4u64);
                // Persistent (unbounded) faults are rare draws; most chaos
                // rules are windowed so the fleet can recover.
                let until_op = if rng.gen_range(0..8u32) == 0 {
                    None
                } else {
                    Some(from_op + width)
                };
                let kind = match rng.gen_range(0..4u32) {
                    0 => {
                        let lo = (max_stall / 4).max(Duration::from_micros(1));
                        let span = max_stall.saturating_sub(lo);
                        let extra = span.mul_f64(rng.gen::<f64>());
                        FaultKind::Stall(lo + extra)
                    }
                    1 => FaultKind::Transient,
                    2 => FaultKind::Fail,
                    _ => FaultKind::Panic,
                };
                plan.rules.push(FaultRule {
                    shard,
                    op,
                    from_op,
                    until_op,
                    kind,
                });
            }
        }
        plan
    }

    /// [`FaultPlan::chaos`]'s sibling for the lifecycle plane: derives a
    /// replayable rule set over the rebuild/split injection points
    /// ([`FaultOp::RebuildTrain`] / [`FaultOp::RebuildReplay`] /
    /// [`FaultOp::RebuildSwap`] / [`FaultOp::Split`]). Every rule is
    /// windowed, so a retried lifecycle operation eventually clears its
    /// faults, and [`FaultKind::Crash`] is never drawn — kill-point
    /// coverage belongs to the subprocess crash harness.
    pub fn chaos_lifecycle(seed: u64, num_shards: usize, max_stall: Duration) -> Self {
        let mut plan = Self::new(num_shards);
        for shard in 0..num_shards {
            let mut rng = seeded(derive_seed(seed ^ 0x4C49_4645, shard as u64));
            let num_rules = rng.gen_range(0..=2usize);
            for _ in 0..num_rules {
                let op = FaultOp::LIFECYCLE_OPS[rng.gen_range(0..FaultOp::LIFECYCLE_OPS.len())];
                let from_op = rng.gen_range(0..3u64);
                let width = rng.gen_range(1..3u64);
                let kind = match rng.gen_range(0..4u32) {
                    0 => {
                        let lo = (max_stall / 4).max(Duration::from_micros(1));
                        let span = max_stall.saturating_sub(lo);
                        let extra = span.mul_f64(rng.gen::<f64>());
                        FaultKind::Stall(lo + extra)
                    }
                    1 => FaultKind::Transient,
                    2 => FaultKind::Fail,
                    _ => FaultKind::Panic,
                };
                plan.rules.push(FaultRule {
                    shard,
                    op,
                    from_op,
                    until_op: Some(from_op + width),
                    kind,
                });
            }
        }
        plan
    }

    /// Number of shards the plan's counter table covers.
    pub fn num_shards(&self) -> usize {
        self.counters.len() / NUM_OPS
    }

    /// The rules of this plan.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Stops all injection (counters keep advancing, so windows keep
    /// sliding); models faults clearing.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
    }

    /// Re-enables injection after [`FaultPlan::disarm`].
    pub fn rearm(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }

    /// Returns `true` while the plan injects faults.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// The number of times the `(shard, op)` injection point has been hit.
    pub fn op_count(&self, shard: usize, op: FaultOp) -> u64 {
        self.counters[shard * NUM_OPS + op.index()].load(Ordering::Relaxed)
    }

    /// The injection point. Bumps the `(shard, op)` counter, then fires the
    /// first matching rule (rule order is match priority): sleeping for a
    /// stall, returning the injected error, or panicking the caller.
    /// Out-of-range shards (a plan built for a smaller fleet) never fire.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unavailable`] for [`FaultKind::Transient`] /
    /// [`FaultKind::Fail`] rules.
    ///
    /// # Panics
    ///
    /// Panics (deliberately — the caller's `catch_unwind` boundary is the
    /// thing under test) for [`FaultKind::Panic`] rules, and **aborts the
    /// process** for [`FaultKind::Crash`] rules.
    pub fn inject(&self, shard: usize, op: FaultOp) -> Result<()> {
        let Some(counter) = self.counters.get(shard * NUM_OPS + op.index()) else {
            return Ok(());
        };
        let at = counter.fetch_add(1, Ordering::Relaxed);
        if !self.is_armed() {
            return Ok(());
        }
        let Some(rule) = self.rules.iter().find(|r| r.matches(shard, op, at)) else {
            return Ok(());
        };
        match rule.kind {
            FaultKind::Stall(dur) => {
                std::thread::sleep(dur);
                Ok(())
            }
            FaultKind::Transient => Err(Error::unavailable(format!(
                "[injected-fault] transient fault: shard {shard} {op:?} op {at}"
            ))),
            FaultKind::Fail => Err(Error::unavailable(format!(
                "[injected-fault] persistent fault: shard {shard} {op:?} op {at}"
            ))),
            FaultKind::Panic => {
                panic!("{INJECTED_PANIC_MARKER} injected panic: shard {shard} {op:?} op {at}")
            }
            FaultKind::Crash => {
                // Flush nothing, unwind nothing: die exactly like a SIGKILL
                // mid-protocol would. The line below is the only trace.
                eprintln!("[injected-fault] crash: shard {shard} {op:?} op {at}");
                std::process::abort();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_fire_only_inside_their_counter_window() {
        let plan = FaultPlan::new(2).with_rule(FaultRule {
            shard: 1,
            op: FaultOp::Search,
            from_op: 2,
            until_op: Some(4),
            kind: FaultKind::Transient,
        });
        // Shard 0 is never touched.
        for _ in 0..8 {
            plan.inject(0, FaultOp::Search).unwrap();
        }
        // Shard 1: ops 0, 1 pass; 2, 3 fail; 4+ pass again.
        assert!(plan.inject(1, FaultOp::Search).is_ok());
        assert!(plan.inject(1, FaultOp::Search).is_ok());
        assert!(matches!(
            plan.inject(1, FaultOp::Search),
            Err(Error::Unavailable(_))
        ));
        assert!(matches!(
            plan.inject(1, FaultOp::Search),
            Err(Error::Unavailable(_))
        ));
        assert!(plan.inject(1, FaultOp::Search).is_ok());
        assert_eq!(plan.op_count(1, FaultOp::Search), 5);
        // A different op on the same shard has its own counter.
        assert_eq!(plan.op_count(1, FaultOp::Insert), 0);
        assert!(plan.inject(1, FaultOp::Insert).is_ok());
    }

    #[test]
    fn unbounded_windows_are_persistent_until_disarmed() {
        let plan = FaultPlan::new(1).with_rule(FaultRule {
            shard: 0,
            op: FaultOp::Compact,
            from_op: 0,
            until_op: None,
            kind: FaultKind::Fail,
        });
        for _ in 0..10 {
            assert!(plan.inject(0, FaultOp::Compact).is_err());
        }
        plan.disarm();
        assert!(plan.inject(0, FaultOp::Compact).is_ok());
        plan.rearm();
        assert!(plan.inject(0, FaultOp::Compact).is_err());
    }

    #[test]
    fn injected_panics_carry_the_marker_and_are_catchable() {
        juno_common::testing::silence_panics();
        let plan = FaultPlan::new(1).with_rule(FaultRule {
            shard: 0,
            op: FaultOp::Publish,
            from_op: 0,
            until_op: None,
            kind: FaultKind::Panic,
        });
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.inject(0, FaultOp::Publish)
        }));
        let payload = caught.expect_err("must panic");
        let msg = juno_common::parallel::panic_message(&*payload);
        assert!(msg.contains(INJECTED_PANIC_MARKER), "unmarked panic: {msg}");
    }

    #[test]
    fn chaos_plans_replay_identically_for_the_same_seed() {
        let a = FaultPlan::chaos(0xC0FFEE, 5, Duration::from_millis(10));
        let b = FaultPlan::chaos(0xC0FFEE, 5, Duration::from_millis(10));
        assert_eq!(a.rules(), b.rules());
        let c = FaultPlan::chaos(0xC0FFEF, 5, Duration::from_millis(10));
        assert_ne!(a.rules(), c.rules(), "different seeds draw different plans");
        // All generated rules stay inside the fleet.
        assert!(a.rules().iter().all(|r| r.shard < 5));
    }

    #[test]
    fn chaos_never_draws_crash_or_durability_kill_points() {
        for seed in 0..64u64 {
            let plan = FaultPlan::chaos(seed, 6, Duration::from_millis(5));
            for rule in plan.rules() {
                assert_ne!(rule.kind, FaultKind::Crash, "seed {seed}");
                assert!(
                    FaultOp::CHAOS_OPS.contains(&rule.op),
                    "seed {seed}: chaos drew durability op {:?}",
                    rule.op
                );
            }
        }
    }

    #[test]
    fn lifecycle_chaos_is_replayable_windowed_and_stays_on_lifecycle_ops() {
        let a = FaultPlan::chaos_lifecycle(0xBEEF, 4, Duration::from_millis(5));
        let b = FaultPlan::chaos_lifecycle(0xBEEF, 4, Duration::from_millis(5));
        assert_eq!(a.rules(), b.rules());
        for seed in 0..64u64 {
            let plan = FaultPlan::chaos_lifecycle(seed, 4, Duration::from_millis(5));
            for rule in plan.rules() {
                assert_ne!(rule.kind, FaultKind::Crash, "seed {seed}");
                assert!(
                    FaultOp::LIFECYCLE_OPS.contains(&rule.op),
                    "seed {seed}: lifecycle chaos drew {:?}",
                    rule.op
                );
                assert!(
                    rule.until_op.is_some(),
                    "seed {seed}: lifecycle rules must be windowed so retries clear"
                );
            }
        }
    }

    #[test]
    fn out_of_range_shards_never_fire() {
        let plan = FaultPlan::new(1).with_rule(FaultRule {
            shard: 0,
            op: FaultOp::Search,
            from_op: 0,
            until_op: None,
            kind: FaultKind::Fail,
        });
        // A fleet grown past the plan's counter table silently no-ops.
        assert!(plan.inject(7, FaultOp::Search).is_ok());
    }
}
