//! Durability-plane configuration and reports for the sharded fleet.
//!
//! The actual write-ahead logging lives in [`juno_common::wal`]; the fleet
//! wiring (log-before-publish, checkpoints, recovery) lives on
//! [`crate::ShardedIndex`]:
//!
//! * [`ShardedIndex::enable_wal`](crate::ShardedIndex::enable_wal) attaches
//!   a WAL directory and writes a baseline checkpoint, after which every
//!   acknowledged mutation is appended (and fsync'd per
//!   [`FsyncPolicy`](juno_common::wal::FsyncPolicy)) **before** its epoch
//!   publish.
//! * [`ShardedIndex::checkpoint`](crate::ShardedIndex::checkpoint) publishes
//!   a fleet snapshot via [`juno_common::atomic_file`], stamps a Checkpoint
//!   record, and prunes the sealed segments (and old checkpoint
//!   generations) behind it.
//! * [`ShardedIndex::recover_from_dir`](crate::ShardedIndex::recover_from_dir)
//!   restores the newest parseable checkpoint generation and replays the
//!   WAL suffix after its covered LSN — bit-identical (ids, distance bits,
//!   id-allocator state) to a quiescent replay of the surviving op prefix.
//!
//! This module holds the shared plumbing: the config, the per-operation
//! reports, and the internal handle the fleet stores.

use juno_common::metrics::Registry;
use juno_common::wal::{Wal, WalOptions};
use std::path::PathBuf;
use std::sync::Arc;

/// Tuning for the fleet durability plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// WAL tuning: fsync policy and segment rotation size.
    pub wal: WalOptions,
    /// Checkpoint generations kept on disk after a successful checkpoint
    /// (at least 1; the newest is the primary restore point, older ones are
    /// fallbacks against a corrupted newest generation).
    pub keep_checkpoints: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            wal: WalOptions::default(),
            keep_checkpoints: 2,
        }
    }
}

/// What a [`ShardedIndex::checkpoint`](crate::ShardedIndex::checkpoint)
/// call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Every record with LSN ≤ this is captured by the snapshot.
    pub covered_lsn: u64,
    /// Size of the published snapshot in bytes.
    pub snapshot_bytes: u64,
    /// Sealed WAL segments deleted because the snapshot covers them.
    pub pruned_segments: usize,
    /// Old checkpoint generations deleted.
    pub pruned_checkpoints: usize,
}

/// What [`ShardedIndex::recover_from_dir`](crate::ShardedIndex::recover_from_dir)
/// found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Covered LSN of the checkpoint generation that restored.
    pub checkpoint_lsn: u64,
    /// LSN of the last intact WAL record (0 when the log is empty); the
    /// recovered state is exactly the quiescent replay of records
    /// `1..=last_lsn` minus aborted ranges.
    pub last_lsn: u64,
    /// Mutation records replayed on top of the checkpoint.
    pub replayed_ops: u64,
    /// Mutation records skipped because an Abort record covered them
    /// (their publish was rolled back before the crash).
    pub skipped_aborted: u64,
    /// Checkpoint generations tried before one restored (1 = newest).
    pub checkpoints_tried: usize,
    /// Garbage bytes truncated off torn segment tails while opening.
    pub torn_bytes: u64,
}

/// The fleet's internal durability handle: the open WAL plus checkpoint
/// bookkeeping. Mutating calls happen under the fleet writer lock, so the
/// WAL's internal lock is never contended.
#[derive(Debug)]
pub(crate) struct Durability {
    pub(crate) wal: Wal,
    pub(crate) dir: PathBuf,
    pub(crate) keep_checkpoints: usize,
}

impl Durability {
    /// The WAL's metrics registry (`wal.*` counters and histograms).
    pub(crate) fn registry(&self) -> &Arc<Registry> {
        self.wal.registry()
    }
}
