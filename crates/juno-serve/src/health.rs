//! Shard health tracking: per-shard circuit breakers and bounded retry.
//!
//! The degraded read path ([`crate::FleetReader::search_deadline`]) treats a
//! slow or failing shard as *absent*, not fatal — but re-discovering the same
//! dead shard on every query would spend the whole deadline budget timing it
//! out again. A [`CircuitBreaker`] per shard remembers recent outcomes:
//!
//! ```text
//!            consecutive failures ≥ threshold
//!   Closed ──────────────────────────────────▶ Open
//!     ▲                                         │ backoff elapses
//!     │ probe succeeds                          ▼
//!     └───────────────────────────────────── HalfOpen
//!                 probe fails: reopen with a longer (jittered) backoff
//! ```
//!
//! * **Closed** — requests flow; consecutive failures are counted and any
//!   success resets the count.
//! * **Open** — requests are skipped outright (status `SkippedOpen`) until
//!   the backoff deadline passes. The backoff is *decorrelated jitter*
//!   (`sleep = uniform(base, prev_sleep * 3)`, capped), which spreads probe
//!   storms across shards while still backing off exponentially in
//!   expectation; the jitter RNG is seeded per shard so runs replay.
//! * **HalfOpen** — exactly one probe request is let through; success closes
//!   the breaker, failure re-opens it with the next backoff. A probe that
//!   never reports (the deadline path abandons stalled workers) would leave
//!   the breaker half-open forever, so each probe also carries a *probe
//!   deadline* ([`BreakerConfig::probe_timeout`]): once it passes, the
//!   breaker assumes the probe was lost and admits a fresh one.
//!
//! Because the degraded read path abandons stragglers rather than joining
//! them, an outcome can arrive long after the request was admitted — even
//! after the breaker has since tripped. Every admission is therefore stamped
//! with the breaker's current *generation* ([`CircuitBreaker::admit`]); the
//! generation bumps on every state flip, and outcomes reported with an older
//! generation are ignored. A success from before the trip can no longer
//! close a breaker guarding a currently-failing shard, and a failure from an
//! abandoned probe can no longer re-open a breaker that a newer probe has
//! legitimately closed.
//!
//! Transient errors (`Error::is_retryable`) additionally get a bounded
//! in-request retry loop ([`RetryPolicy`]) before they count as a failure —
//! a shard that hiccups once should not surface in `DegradedResult` at all.

use juno_common::rng::{derive_seed, seeded, Rng, StdRng};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Tuning for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker open.
    pub failure_threshold: u32,
    /// Smallest open-state backoff (and the floor of every jitter draw).
    pub base_backoff: Duration,
    /// Largest open-state backoff the jitter can reach.
    pub max_backoff: Duration,
    /// How long a half-open probe may stay unreported before the breaker
    /// assumes it was abandoned (e.g. its worker is stalled past the request
    /// deadline) and admits a replacement probe. Without this, a single lost
    /// probe would pin the shard `SkippedOpen` forever.
    pub probe_timeout: Duration,
    /// Seed for the decorrelated-jitter RNG (derived per shard), so chaos
    /// tests replay bit-identically.
    pub seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(2),
            probe_timeout: Duration::from_secs(1),
            seed: 0x6A75_6E6F_6272_6B72, // "junobrkr"
        }
    }
}

/// Observable state of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are skipped until the backoff deadline.
    Open,
    /// Probing: one request is in flight to test recovery.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    /// When the open state expires (meaningful while `Open`).
    open_until: Instant,
    /// When the in-flight probe is considered lost (meaningful while
    /// `HalfOpen`); past it, [`CircuitBreaker::admit`] issues a new probe.
    probe_deadline: Instant,
    /// The most recent backoff, feeding the next decorrelated-jitter draw.
    backoff: Duration,
    /// Bumps on every state flip and probe re-issue; outcomes reported with
    /// an older generation are stale and ignored.
    generation: u64,
    /// Total state flips (Closed↔Open↔HalfOpen), for the metrics layer.
    transitions: u64,
    rng: StdRng,
}

/// A per-shard circuit breaker. See the [module docs](self) for the state
/// machine. All methods take `&self`; the breaker is internally locked and
/// shared freely between readers.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker for shard `shard` (the shard id only seeds the
    /// jitter RNG stream).
    pub fn new(config: BreakerConfig, shard: usize) -> Self {
        Self {
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                open_until: Instant::now(),
                probe_deadline: Instant::now(),
                backoff: config.base_backoff,
                generation: 0,
                transitions: 0,
                rng: seeded(derive_seed(config.seed, shard as u64)),
            }),
            config,
        }
    }

    /// Whether a request may proceed right now, and under which generation.
    ///
    /// `Some(generation)` admits the request: the caller must pass the
    /// generation back to [`CircuitBreaker::record_success`] /
    /// [`CircuitBreaker::record_failure`] so late outcomes can be aged out.
    /// `None` means the shard should be reported `SkippedOpen` without being
    /// touched. An expired open state transitions to half-open and admits
    /// exactly one probe; a half-open probe unreported past
    /// [`BreakerConfig::probe_timeout`] is presumed lost and replaced (its
    /// eventual outcome, carrying the older generation, is ignored).
    pub fn admit(&self) -> Option<u64> {
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("breaker lock");
        match inner.state {
            BreakerState::Closed => Some(inner.generation),
            BreakerState::Open => {
                if now >= inner.open_until {
                    inner.state = BreakerState::HalfOpen;
                    inner.generation += 1;
                    inner.transitions += 1;
                    inner.probe_deadline = now + self.config.probe_timeout;
                    Some(inner.generation)
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                if now >= inner.probe_deadline {
                    // The in-flight probe was abandoned (stalled worker,
                    // dropped channel): issue a replacement under a fresh
                    // generation so the lost probe's late outcome is stale.
                    inner.generation += 1;
                    inner.probe_deadline = now + self.config.probe_timeout;
                    Some(inner.generation)
                } else {
                    None // a live probe is already in flight
                }
            }
        }
    }

    /// Records a successful request admitted under `generation`: closes the
    /// breaker and resets the failure count and backoff. Outcomes from an
    /// older generation (admitted before the last state flip) are ignored —
    /// a pre-trip straggler must not close a breaker guarding a shard that
    /// is currently failing.
    pub fn record_success(&self, generation: u64) {
        let mut inner = self.inner.lock().expect("breaker lock");
        if generation < inner.generation {
            return; // stale outcome from before the last state flip
        }
        if inner.state != BreakerState::Closed {
            inner.state = BreakerState::Closed;
            inner.generation += 1;
            inner.transitions += 1;
        }
        inner.consecutive_failures = 0;
        inner.backoff = self.config.base_backoff;
    }

    /// Records a failed (or timed-out) request admitted under `generation`.
    /// While closed, trips the breaker once the consecutive-failure
    /// threshold is reached; a failed half-open probe re-opens immediately
    /// with the next jittered backoff. Stale outcomes (older generation) are
    /// ignored, mirroring [`CircuitBreaker::record_success`].
    pub fn record_failure(&self, generation: u64) {
        let mut inner = self.inner.lock().expect("breaker lock");
        if generation < inner.generation {
            return; // stale outcome from before the last state flip
        }
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let trip = match inner.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => inner.consecutive_failures >= self.config.failure_threshold,
            BreakerState::Open => false,
        };
        if trip {
            // Decorrelated jitter: sleep = uniform(base, prev * 3), capped.
            let base = self.config.base_backoff.as_secs_f64();
            let hi = (inner.backoff.as_secs_f64() * 3.0).max(base * (1.0 + 1e-9));
            let drawn = inner.rng.gen_range(base..hi);
            inner.backoff = Duration::from_secs_f64(drawn).min(self.config.max_backoff);
            inner.open_until = Instant::now() + inner.backoff;
            inner.state = BreakerState::Open;
            inner.generation += 1;
            inner.transitions += 1;
        }
    }

    /// The breaker's current state (transitions lazily: an expired `Open`
    /// still reads `Open` until the next [`CircuitBreaker::admit`]).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker lock").state
    }

    /// Current run of consecutive (non-stale) failures.
    pub fn consecutive_failures(&self) -> u32 {
        self.inner
            .lock()
            .expect("breaker lock")
            .consecutive_failures
    }

    /// The current generation. Monotone non-decreasing; bumps on every state
    /// flip and probe re-issue.
    pub fn generation(&self) -> u64 {
        self.inner.lock().expect("breaker lock").generation
    }

    /// Total state flips so far (Closed→Open, Open→HalfOpen,
    /// HalfOpen→Closed/Open), for the serving metrics layer.
    pub fn transitions(&self) -> u64 {
        self.inner.lock().expect("breaker lock").transitions
    }

    /// The current open-state backoff (the most recent jitter draw).
    pub fn current_backoff(&self) -> Duration {
        self.inner.lock().expect("breaker lock").backoff
    }
}

/// Bounded retry-with-backoff for transient shard errors, applied inside a
/// single degraded-path request before the failure is reported to the
/// breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retry).
    pub max_retries: u32,
    /// Sleep before the first retry; doubles each retry.
    pub base_backoff: Duration,
    /// Cap on the per-retry sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (1-based): exponential
    /// doubling from the base, capped.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// Per-shard health state shared between a fleet and its pinned readers.
///
/// Interior-mutable: the breaker set and policies live behind a `RwLock`
/// so [`HealthTracker::reconfigure`] can retune a **live** shared fleet
/// (`Arc<ShardedIndex>`) in place — pinned readers observe the new tuning
/// on their next breaker lookup without re-pinning. The shard *count* is
/// fixed for the tracker's lifetime; topology changes swap in a whole new
/// tracker so a reader pinned on the old topology never indexes a breaker
/// out of range.
#[derive(Debug)]
pub struct HealthTracker {
    inner: RwLock<HealthInner>,
}

#[derive(Debug)]
struct HealthInner {
    breakers: Vec<Arc<CircuitBreaker>>,
    breaker_config: BreakerConfig,
    retry: RetryPolicy,
}

impl HealthInner {
    fn fresh(num_shards: usize, breaker: BreakerConfig, retry: RetryPolicy) -> Self {
        Self {
            breakers: (0..num_shards)
                .map(|s| Arc::new(CircuitBreaker::new(breaker, s)))
                .collect(),
            breaker_config: breaker,
            retry,
        }
    }
}

impl HealthTracker {
    /// Fresh (all-closed) health state for `num_shards` shards.
    pub fn new(num_shards: usize, breaker: BreakerConfig, retry: RetryPolicy) -> Self {
        Self {
            inner: RwLock::new(HealthInner::fresh(num_shards, breaker, retry)),
        }
    }

    /// The breaker guarding shard `shard`. The `Arc` pins the breaker
    /// across a request even if a concurrent [`HealthTracker::reconfigure`]
    /// swaps the set mid-flight — generation stamping makes a stale
    /// record_success/record_failure on the old breaker harmless.
    pub fn breaker(&self, shard: usize) -> Arc<CircuitBreaker> {
        self.inner.read().expect("health lock poisoned").breakers[shard].clone()
    }

    /// Number of shards tracked.
    pub fn num_shards(&self) -> usize {
        self.inner
            .read()
            .expect("health lock poisoned")
            .breakers
            .len()
    }

    /// The in-request retry policy for transient errors.
    pub fn retry(&self) -> RetryPolicy {
        self.inner.read().expect("health lock poisoned").retry
    }

    /// The breaker configuration every tracked breaker was built with.
    pub fn breaker_config(&self) -> BreakerConfig {
        self.inner
            .read()
            .expect("health lock poisoned")
            .breaker_config
    }

    /// Replaces the tuning **in place** on a shared tracker: every breaker
    /// is rebuilt fresh (all-closed, counters zeroed) with the new config
    /// and the retry policy is swapped. Works through `&self`, so a live
    /// `Arc<ShardedIndex>` (and every pinned reader sharing this tracker)
    /// picks up the new tuning without re-pinning or a topology swap.
    pub fn reconfigure(&self, breaker: BreakerConfig, retry: RetryPolicy) {
        let mut inner = self.inner.write().expect("health lock poisoned");
        let num_shards = inner.breakers.len();
        *inner = HealthInner::fresh(num_shards, breaker, retry);
    }

    /// Snapshot of every shard's breaker state, indexed by shard.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.inner
            .read()
            .expect("health lock poisoned")
            .breakers
            .iter()
            .map(|b| b.state())
            .collect()
    }

    /// Total breaker state flips across every shard, for the metrics layer.
    pub fn total_transitions(&self) -> u64 {
        self.inner
            .read()
            .expect("health lock poisoned")
            .breakers
            .iter()
            .map(|b| b.transitions())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            probe_timeout: Duration::from_secs(60),
            seed: 7,
        }
    }

    /// Drives `n` current-generation failures through the breaker.
    fn fail_n(b: &CircuitBreaker, n: usize) {
        for _ in 0..n {
            b.record_failure(b.generation());
        }
    }

    #[test]
    fn breaker_opens_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(fast_config(), 0);
        assert_eq!(b.state(), BreakerState::Closed);
        fail_n(&b, 2);
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        assert!(b.admit().is_some());
        fail_n(&b, 1);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.admit().is_none(), "open breaker skips requests");
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = CircuitBreaker::new(fast_config(), 0);
        for _ in 0..10 {
            fail_n(&b, 2);
            b.record_success(b.generation()); // never three in a row
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_closes_on_success_and_reopens_on_failure() {
        let b = CircuitBreaker::new(fast_config(), 0);
        fail_n(&b, 3);
        assert_eq!(b.state(), BreakerState::Open);
        // Wait out the (jittered, ≤ 50ms) backoff.
        std::thread::sleep(b.current_backoff() + Duration::from_millis(1));
        let probe = b.admit().expect("expired open state admits a probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admit().is_none(), "only one probe at a time");
        // Probe fails → straight back to open.
        b.record_failure(probe);
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(b.current_backoff() + Duration::from_millis(1));
        let probe = b.admit().expect("second probe");
        b.record_success(probe);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit().is_some());
    }

    #[test]
    fn backoff_is_jittered_within_bounds_and_replayable() {
        let trip = |seed: u64| -> Vec<Duration> {
            let b = CircuitBreaker::new(
                BreakerConfig {
                    seed,
                    ..fast_config()
                },
                3,
            );
            let mut out = Vec::new();
            for _ in 0..6 {
                fail_n(&b, 3);
                out.push(b.current_backoff());
                // Re-arm without waiting: success closes the breaker.
                b.record_success(b.generation());
            }
            out
        };
        let cfg = fast_config();
        let a = trip(7);
        assert_eq!(a, trip(7), "same seed, same jitter sequence");
        for d in &a {
            assert!(*d >= cfg.base_backoff, "below base: {d:?}");
            assert!(*d <= cfg.max_backoff, "above cap: {d:?}");
        }
    }

    /// Regression (liveness bug): a probe whose worker is abandoned never
    /// reports, and the old breaker stayed `HalfOpen` — rejecting every
    /// request — forever. With a probe deadline, a replacement probe is
    /// admitted once `probe_timeout` passes, and the shard can recover.
    #[test]
    fn abandoned_probe_is_replaced_after_the_probe_deadline() {
        let b = CircuitBreaker::new(
            BreakerConfig {
                probe_timeout: Duration::from_millis(20),
                ..fast_config()
            },
            0,
        );
        fail_n(&b, 3);
        std::thread::sleep(b.current_backoff() + Duration::from_millis(1));
        let lost_probe = b.admit().expect("probe admitted");
        // The probe worker stalls forever and never reports. Before the fix,
        // every subsequent admit() returned false with no escape.
        assert!(b.admit().is_none(), "probe still considered live");
        std::thread::sleep(Duration::from_millis(21));
        let replacement = b.admit().expect("replacement probe after deadline");
        assert!(
            replacement > lost_probe,
            "replacement gets a new generation"
        );
        b.record_success(replacement);
        assert_eq!(b.state(), BreakerState::Closed, "shard recovered");
        // The lost probe's outcome finally straggles in: stale, ignored.
        b.record_failure(lost_probe);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
    }

    /// Regression (reordering bug): a success from a request admitted
    /// *before* the trip used to unconditionally close the breaker, masking
    /// a shard that is failing right now. Generation stamps age it out.
    #[test]
    fn late_success_from_before_the_trip_does_not_close_the_breaker() {
        let b = CircuitBreaker::new(fast_config(), 0);
        // A slow request is admitted while the breaker is closed...
        let stale = b.admit().expect("closed breaker admits");
        // ...then the shard starts failing and the breaker trips.
        fail_n(&b, 3);
        assert_eq!(b.state(), BreakerState::Open);
        // The slow request finally succeeds. Before the fix this closed the
        // breaker and the next query hit the failing shard head-on.
        b.record_success(stale);
        assert_eq!(b.state(), BreakerState::Open, "stale success ignored");
        // Current-generation outcomes still work: recovery path intact.
        std::thread::sleep(b.current_backoff() + Duration::from_millis(1));
        let probe = b.admit().expect("probe");
        b.record_success(probe);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    /// Property test: drive the state machine through seeded random
    /// operation interleavings (admissions, success/failure reports — both
    /// fresh and deliberately stale, probe abandonment, waits) and check the
    /// invariants after every step:
    /// * at most one live probe — while `HalfOpen` and before the probe
    ///   deadline, nothing is admitted;
    /// * `Open` never admits before `open_until` (checked with a timing
    ///   margin: a trip at `t` with backoff `d` admits nothing before
    ///   `t + d`);
    /// * the generation is monotone non-decreasing, and stale outcomes never
    ///   change the state.
    #[test]
    fn property_randomized_interleavings_preserve_breaker_invariants() {
        use juno_common::rng::{seeded, Rng};
        for seed in 0..8u64 {
            let mut rng = seeded(0xB0B0 + seed);
            let cfg = BreakerConfig {
                failure_threshold: 2,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(8),
                probe_timeout: Duration::from_millis(6),
                seed,
            };
            let b = CircuitBreaker::new(cfg, seed as usize);
            // Outcomes admitted but not yet reported: (generation, stamp).
            let mut in_flight: Vec<u64> = Vec::new();
            let mut last_generation = 0u64;
            let mut tripped_at: Option<(Instant, Duration)> = None;
            for step in 0..400 {
                let op = rng.gen_range(0..100u32);
                let pre_state = b.state();
                if op < 40 {
                    let now = Instant::now();
                    if let Some(generation) = b.admit() {
                        if let (BreakerState::Open, Some((at, backoff))) = (pre_state, tripped_at) {
                            assert!(
                                now >= at + backoff,
                                "seed {seed} step {step}: Open admitted a request early"
                            );
                        }
                        if pre_state == BreakerState::HalfOpen {
                            // This admission replaced an expired probe: it
                            // must carry a strictly newer generation than
                            // every earlier admission, so the lost probe's
                            // outcome can never override it.
                            for &older in &in_flight {
                                assert!(
                                    generation > older,
                                    "seed {seed} step {step}: two live probes"
                                );
                            }
                        }
                        in_flight.push(generation);
                    }
                } else if op < 60 {
                    // Report a success for a random in-flight admission
                    // (possibly stale).
                    if !in_flight.is_empty() {
                        let pick = rng.gen_range(0..in_flight.len() as u32) as usize;
                        let generation = in_flight.swap_remove(pick);
                        let current = b.generation();
                        let state_before = b.state();
                        b.record_success(generation);
                        if generation < current {
                            assert_eq!(
                                b.state(),
                                state_before,
                                "seed {seed} step {step}: stale success changed state"
                            );
                        }
                    }
                } else if op < 85 {
                    // Report a failure for a random in-flight admission.
                    if !in_flight.is_empty() {
                        let pick = rng.gen_range(0..in_flight.len() as u32) as usize;
                        let generation = in_flight.swap_remove(pick);
                        let current = b.generation();
                        let state_before = b.state();
                        b.record_failure(generation);
                        if generation < current {
                            assert_eq!(
                                b.state(),
                                state_before,
                                "seed {seed} step {step}: stale failure changed state"
                            );
                        }
                        if state_before != BreakerState::Open && b.state() == BreakerState::Open {
                            tripped_at = Some((Instant::now(), b.current_backoff()));
                        }
                    }
                } else if op < 95 {
                    // Abandon everything in flight (the deadline path walks
                    // away from stalled workers without reporting).
                    in_flight.clear();
                } else {
                    // Let time pass so open states expire and probes age out.
                    std::thread::sleep(Duration::from_millis(rng.gen_range(1..4u32) as u64));
                }
                let generation = b.generation();
                assert!(
                    generation >= last_generation,
                    "seed {seed} step {step}: generation went backwards"
                );
                last_generation = generation;
            }
        }
    }

    /// Concurrent smoke: many threads admit and report against one breaker;
    /// the generation stays monotone under real contention, nothing
    /// deadlocks, and the breaker still recovers afterwards.
    #[test]
    fn concurrent_admit_and_report_keep_the_generation_monotone() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let b = std::sync::Arc::new(CircuitBreaker::new(
            BreakerConfig {
                failure_threshold: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(4),
                probe_timeout: Duration::from_millis(2),
                seed: 99,
            },
            0,
        ));
        let high_water = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let b = b.clone();
                let high_water = high_water.clone();
                scope.spawn(move || {
                    use juno_common::rng::{seeded, Rng};
                    let mut rng = seeded(t);
                    let mut last_seen = 0u64;
                    for _ in 0..300 {
                        if let Some(generation) = b.admit() {
                            if rng.gen_range(0..2u32) == 0 {
                                b.record_failure(generation);
                            } else {
                                b.record_success(generation);
                            }
                        }
                        let observed = b.generation();
                        assert!(observed >= last_seen, "generation went backwards");
                        last_seen = observed;
                        high_water.fetch_max(observed, Ordering::Relaxed);
                    }
                });
            }
        });
        // The breaker is still functional: drive it to Closed.
        for _ in 0..200 {
            if let Some(generation) = b.admit() {
                b.record_success(generation);
            }
            if b.state() == BreakerState::Closed {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.generation() >= high_water.load(Ordering::Relaxed));
    }

    #[test]
    fn retry_backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(6),
        };
        assert_eq!(p.backoff_for(1), Duration::from_millis(1));
        assert_eq!(p.backoff_for(2), Duration::from_millis(2));
        assert_eq!(p.backoff_for(3), Duration::from_millis(4));
        assert_eq!(p.backoff_for(4), Duration::from_millis(6), "capped");
        assert_eq!(p.backoff_for(40), Duration::from_millis(6), "shift clamped");
    }

    #[test]
    fn tracker_exposes_per_shard_breakers() {
        let t = HealthTracker::new(3, fast_config(), RetryPolicy::default());
        assert_eq!(t.num_shards(), 3);
        for _ in 0..3 {
            let b = t.breaker(1);
            b.record_failure(b.generation());
        }
        assert_eq!(
            t.breaker_states(),
            vec![
                BreakerState::Closed,
                BreakerState::Open,
                BreakerState::Closed
            ]
        );
        assert_eq!(t.retry().max_retries, RetryPolicy::default().max_retries);
    }
}
