//! Shard health tracking: per-shard circuit breakers and bounded retry.
//!
//! The degraded read path ([`crate::FleetReader::search_deadline`]) treats a
//! slow or failing shard as *absent*, not fatal — but re-discovering the same
//! dead shard on every query would spend the whole deadline budget timing it
//! out again. A [`CircuitBreaker`] per shard remembers recent outcomes:
//!
//! ```text
//!            consecutive failures ≥ threshold
//!   Closed ──────────────────────────────────▶ Open
//!     ▲                                         │ backoff elapses
//!     │ probe succeeds                          ▼
//!     └───────────────────────────────────── HalfOpen
//!                 probe fails: reopen with a longer (jittered) backoff
//! ```
//!
//! * **Closed** — requests flow; consecutive failures are counted and any
//!   success resets the count.
//! * **Open** — requests are skipped outright (status `SkippedOpen`) until
//!   the backoff deadline passes. The backoff is *decorrelated jitter*
//!   (`sleep = uniform(base, prev_sleep * 3)`, capped), which spreads probe
//!   storms across shards while still backing off exponentially in
//!   expectation; the jitter RNG is seeded per shard so runs replay.
//! * **HalfOpen** — exactly one probe request is let through; success closes
//!   the breaker, failure re-opens it with the next backoff.
//!
//! Transient errors (`Error::is_retryable`) additionally get a bounded
//! in-request retry loop ([`RetryPolicy`]) before they count as a failure —
//! a shard that hiccups once should not surface in `DegradedResult` at all.

use juno_common::rng::{derive_seed, seeded, Rng, StdRng};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures (while closed) that trip the breaker open.
    pub failure_threshold: u32,
    /// Smallest open-state backoff (and the floor of every jitter draw).
    pub base_backoff: Duration,
    /// Largest open-state backoff the jitter can reach.
    pub max_backoff: Duration,
    /// Seed for the decorrelated-jitter RNG (derived per shard), so chaos
    /// tests replay bit-identically.
    pub seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(2),
            seed: 0x6A75_6E6F_6272_6B72, // "junobrkr"
        }
    }
}

/// Observable state of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are skipped until the backoff deadline.
    Open,
    /// Probing: one request is in flight to test recovery.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    /// When the open state expires (meaningful while `Open`).
    open_until: Instant,
    /// The most recent backoff, feeding the next decorrelated-jitter draw.
    backoff: Duration,
    rng: StdRng,
}

/// A per-shard circuit breaker. See the [module docs](self) for the state
/// machine. All methods take `&self`; the breaker is internally locked and
/// shared freely between readers.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker for shard `shard` (the shard id only seeds the
    /// jitter RNG stream).
    pub fn new(config: BreakerConfig, shard: usize) -> Self {
        Self {
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                open_until: Instant::now(),
                backoff: config.base_backoff,
                rng: seeded(derive_seed(config.seed, shard as u64)),
            }),
            config,
        }
    }

    /// Whether a request may proceed right now. An expired open state
    /// transitions to half-open and admits exactly one probe; callers that
    /// get `false` should report the shard as `SkippedOpen` without touching
    /// it.
    pub fn allow(&self) -> bool {
        let mut inner = self.inner.lock().expect("breaker lock");
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false, // a probe is already in flight
            BreakerState::Open => {
                if Instant::now() >= inner.open_until {
                    inner.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful request: closes the breaker and resets the
    /// failure count and backoff.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().expect("breaker lock");
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.backoff = self.config.base_backoff;
    }

    /// Records a failed (or timed-out) request. While closed, trips the
    /// breaker once the consecutive-failure threshold is reached; a failed
    /// half-open probe re-opens immediately with the next jittered backoff.
    pub fn record_failure(&self) {
        let mut inner = self.inner.lock().expect("breaker lock");
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let trip = match inner.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => inner.consecutive_failures >= self.config.failure_threshold,
            BreakerState::Open => false, // late failure from before the trip
        };
        if trip {
            // Decorrelated jitter: sleep = uniform(base, prev * 3), capped.
            let base = self.config.base_backoff.as_secs_f64();
            let hi = (inner.backoff.as_secs_f64() * 3.0).max(base * (1.0 + 1e-9));
            let drawn = inner.rng.gen_range(base..hi);
            inner.backoff = Duration::from_secs_f64(drawn).min(self.config.max_backoff);
            inner.open_until = Instant::now() + inner.backoff;
            inner.state = BreakerState::Open;
        }
    }

    /// The breaker's current state (transitions lazily: an expired `Open`
    /// still reads `Open` until the next [`CircuitBreaker::allow`]).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker lock").state
    }

    /// The current open-state backoff (the most recent jitter draw).
    pub fn current_backoff(&self) -> Duration {
        self.inner.lock().expect("breaker lock").backoff
    }
}

/// Bounded retry-with-backoff for transient shard errors, applied inside a
/// single degraded-path request before the failure is reported to the
/// breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retry).
    pub max_retries: u32,
    /// Sleep before the first retry; doubles each retry.
    pub base_backoff: Duration,
    /// Cap on the per-retry sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (1-based): exponential
    /// doubling from the base, capped.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// Per-shard health state shared between a fleet and its pinned readers.
#[derive(Debug)]
pub struct HealthTracker {
    breakers: Vec<CircuitBreaker>,
    retry: RetryPolicy,
}

impl HealthTracker {
    /// Fresh (all-closed) health state for `num_shards` shards.
    pub fn new(num_shards: usize, breaker: BreakerConfig, retry: RetryPolicy) -> Self {
        Self {
            breakers: (0..num_shards)
                .map(|s| CircuitBreaker::new(breaker, s))
                .collect(),
            retry,
        }
    }

    /// The breaker guarding shard `shard`.
    pub fn breaker(&self, shard: usize) -> &CircuitBreaker {
        &self.breakers[shard]
    }

    /// Number of shards tracked.
    pub fn num_shards(&self) -> usize {
        self.breakers.len()
    }

    /// The in-request retry policy for transient errors.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Snapshot of every shard's breaker state, indexed by shard.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.breakers.iter().map(|b| b.state()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            seed: 7,
        }
    }

    #[test]
    fn breaker_opens_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(fast_config(), 0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "open breaker skips requests");
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = CircuitBreaker::new(fast_config(), 0);
        for _ in 0..10 {
            b.record_failure();
            b.record_failure();
            b.record_success(); // never three in a row
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_closes_on_success_and_reopens_on_failure() {
        let b = CircuitBreaker::new(fast_config(), 0);
        for _ in 0..3 {
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Wait out the (jittered, ≤ 50ms) backoff.
        std::thread::sleep(b.current_backoff() + Duration::from_millis(1));
        assert!(b.allow(), "expired open state admits a probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(), "only one probe at a time");
        // Probe fails → straight back to open.
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(b.current_backoff() + Duration::from_millis(1));
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn backoff_is_jittered_within_bounds_and_replayable() {
        let trip = |seed: u64| -> Vec<Duration> {
            let b = CircuitBreaker::new(
                BreakerConfig {
                    seed,
                    ..fast_config()
                },
                3,
            );
            let mut out = Vec::new();
            for _ in 0..6 {
                for _ in 0..3 {
                    b.record_failure();
                }
                out.push(b.current_backoff());
                // Re-arm without waiting: success closes the breaker.
                b.record_success();
            }
            out
        };
        let cfg = fast_config();
        let a = trip(7);
        assert_eq!(a, trip(7), "same seed, same jitter sequence");
        for d in &a {
            assert!(*d >= cfg.base_backoff, "below base: {d:?}");
            assert!(*d <= cfg.max_backoff, "above cap: {d:?}");
        }
    }

    #[test]
    fn retry_backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(6),
        };
        assert_eq!(p.backoff_for(1), Duration::from_millis(1));
        assert_eq!(p.backoff_for(2), Duration::from_millis(2));
        assert_eq!(p.backoff_for(3), Duration::from_millis(4));
        assert_eq!(p.backoff_for(4), Duration::from_millis(6), "capped");
        assert_eq!(p.backoff_for(40), Duration::from_millis(6), "shift clamped");
    }

    #[test]
    fn tracker_exposes_per_shard_breakers() {
        let t = HealthTracker::new(3, fast_config(), RetryPolicy::default());
        assert_eq!(t.num_shards(), 3);
        for _ in 0..3 {
            t.breaker(1).record_failure();
        }
        assert_eq!(
            t.breaker_states(),
            vec![
                BreakerState::Closed,
                BreakerState::Open,
                BreakerState::Closed
            ]
        );
        assert_eq!(t.retry().max_retries, RetryPolicy::default().max_retries);
    }
}
