//! The JUNO serving layer: a sharded, concurrently readable index fleet.
//!
//! The single-index engines ([`juno_common::AnnIndex`] implementors) answer
//! one process's queries from one monolithic structure with exclusive write
//! access. This crate scales that to a serving tier:
//!
//! * [`ShardedIndex`] — `S` shards behind per-shard epoch pointers.
//!   Readers pin a [`FleetReader`] (snapshot isolation, no locks held while
//!   searching); writers clone-and-publish per shard, so reads never block
//!   on insert / remove / compaction.
//! * [`ShardRouter`] — deterministic id → shard ownership (hash or modulo).
//! * Scatter-gather search — per-shard top-k lists merge through the
//!   deterministic tie-by-id merge in [`juno_common::topk::merge_neighbors`];
//!   in global-id mode the merged ids and distance bits are identical to
//!   the monolithic index (the `tests/shard_parity.rs` contract).
//! * [`BackgroundCompactor`] — periodic per-shard compaction off the read
//!   path, surviving (counting, logging, backing off from) sweep failures.
//! * `SHRD` snapshots ([`KIND_SHARD`]) — whole-fleet persistence framing
//!   each shard engine's own snapshot, with legacy unsharded snapshots
//!   restoring into a single-shard fleet; `save_to_path` /
//!   [`ShardedIndex::from_snapshot_path`] add the crash-safe on-disk
//!   protocol (write-temp + fsync + atomic rename, with a rotated `.prev`
//!   generation for torn-write recovery).
//! * **Fault tolerance** — [`FleetReader::search_deadline`] degrades around
//!   stalled, failing, or panicking shards inside a latency budget
//!   ([`DegradedResult`]), guided by per-shard circuit breakers
//!   ([`health`]); [`fault::FaultPlan`] injects deterministic, replayable
//!   faults at every search / insert / publish / compact / restore point for
//!   chaos testing.
//! * **Durability** ([`durability`]) — an attachable write-ahead log
//!   ([`juno_common::wal`]): every acknowledged mutation is appended (and
//!   fsync'd per policy) *before* its epoch publish, checkpoints snapshot
//!   the fleet and prune covered segments, and
//!   [`ShardedIndex::recover_from_dir`] rebuilds a crashed fleet
//!   bit-identically from snapshot + WAL suffix.
//! * [`Server`] — the online front-end: many client threads submit single
//!   queries through a bounded ingress queue with admission control
//!   ([`juno_common::error::Error::Overloaded`]), a size-or-deadline trigger
//!   coalesces them into batches ([`batcher`]), batches execute through the
//!   degraded read path, and every reply carries per-request QoS stats
//!   ([`ServeStats`]) with aggregate histograms via
//!   [`Server::metrics_snapshot`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batcher;
pub mod durability;
pub mod fault;
pub mod health;
pub mod persist;
pub mod router;
pub mod server;
pub mod shard;

pub use batcher::{Batcher, BatcherConfig, Pending};
pub use durability::{CheckpointReport, DurabilityConfig, RecoveryReport};
pub use fault::{FaultKind, FaultOp, FaultPlan, FaultRule};
pub use health::{BreakerConfig, BreakerState, CircuitBreaker, HealthTracker, RetryPolicy};
pub use persist::KIND_SHARD;
pub use router::{ShardRouter, MAX_SHARDS};
pub use server::{ServeResponse, ServeStats, Server, ServerConfig};
pub use shard::{
    BackgroundCompactor, DegradedBatch, DegradedResult, FleetReader, RebuildPolicy, RebuildReport,
    Rebuilder, ShardState, ShardStatus, ShardedIndex,
};

#[cfg(test)]
mod tests {
    use super::*;
    use juno_common::error::{Error, Result};
    use juno_common::index::{AnnIndex, SearchResult, SearchStats};
    use juno_common::metric::Metric;
    use juno_common::topk::TopK;
    use juno_common::vector::VectorSet;
    use juno_data::snapshot::{kind, SectionWriter, Snapshot, SnapshotWriter};
    use std::sync::Arc;
    use std::time::Duration;

    const KIND_MINI: u32 = kind(*b"MINI");

    /// A minimal exhaustive engine with tombstone mutation and snapshot
    /// support, used to exercise the generic fleet machinery without pulling
    /// the real engines into this crate.
    #[derive(Debug, Clone)]
    struct MiniIndex {
        dim: usize,
        rows: Vec<Vec<f32>>,
        dead: Vec<bool>,
    }

    impl MiniIndex {
        fn new(rows: Vec<Vec<f32>>) -> Self {
            let dim = rows.first().map(|r| r.len()).unwrap_or(1);
            let dead = vec![false; rows.len()];
            Self { dim, rows, dead }
        }
    }

    impl AnnIndex for MiniIndex {
        fn metric(&self) -> Metric {
            Metric::L2
        }
        fn dim(&self) -> usize {
            self.dim
        }
        fn len(&self) -> usize {
            self.dead.iter().filter(|&&d| !d).count()
        }
        fn search(&self, query: &[f32], k: usize) -> Result<SearchResult> {
            if query.len() != self.dim {
                return Err(Error::DimensionMismatch {
                    expected: self.dim,
                    actual: query.len(),
                });
            }
            let mut topk = TopK::new(k, Metric::L2);
            for (id, row) in self.rows.iter().enumerate() {
                if !self.dead[id] {
                    topk.push(id as u64, Metric::L2.distance(query, row));
                }
            }
            Ok(SearchResult {
                neighbors: topk.into_sorted_vec(),
                simulated_us: 1.5,
                stats: SearchStats {
                    candidates: self.len(),
                    filter_us: 2.0,
                    ..SearchStats::default()
                },
            })
        }
        fn supports_mutation(&self) -> bool {
            true
        }
        fn supports_snapshot(&self) -> bool {
            true
        }
        fn insert(&mut self, vector: &[f32]) -> Result<u64> {
            if vector.len() != self.dim {
                return Err(Error::DimensionMismatch {
                    expected: self.dim,
                    actual: vector.len(),
                });
            }
            self.rows.push(vector.to_vec());
            self.dead.push(false);
            Ok((self.rows.len() - 1) as u64)
        }
        fn remove(&mut self, id: u64) -> Result<bool> {
            match self.dead.get_mut(id as usize) {
                Some(slot) if !*slot => {
                    *slot = true;
                    Ok(true)
                }
                _ => Ok(false),
            }
        }
        fn snapshot(&self) -> Result<Vec<u8>> {
            let mut w = SnapshotWriter::new(KIND_MINI);
            let mut s = SectionWriter::new();
            s.put_u64(self.dim as u64);
            s.put_u64(self.rows.len() as u64);
            for row in &self.rows {
                s.put_f32s(row);
            }
            s.put_bools(&self.dead);
            w.add_section(*b"MINI", s);
            Ok(w.finish())
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<()> {
            let snap = Snapshot::parse(bytes)?;
            if snap.kind() != KIND_MINI {
                return Err(Error::corrupted("not a MiniIndex snapshot"));
            }
            let mut r = snap.section(*b"MINI")?;
            let dim = r.get_usize()?;
            let n = r.get_usize()?;
            let rows = (0..n).map(|_| r.get_f32s()).collect::<Result<Vec<_>>>()?;
            let dead = r.get_bools()?;
            if dead.len() != n || rows.iter().any(|row| row.len() != dim) {
                return Err(Error::corrupted("inconsistent MiniIndex snapshot"));
            }
            r.expect_end()?;
            *self = Self { dim, rows, dead };
            Ok(())
        }
        fn ids(&self) -> Vec<u64> {
            (0..self.rows.len() as u64)
                .filter(|&id| !self.dead[id as usize])
                .collect()
        }
    }

    fn grid_rows(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| vec![(i % 17) as f32, (i / 17) as f32])
            .collect()
    }

    fn assert_bit_identical(a: &SearchResult, b: &SearchResult, label: &str) {
        assert_eq!(a.neighbors.len(), b.neighbors.len(), "{label}: lengths");
        for (ra, rb) in a.neighbors.iter().zip(&b.neighbors) {
            assert_eq!(ra.id, rb.id, "{label}: ids");
            assert_eq!(
                ra.distance.to_bits(),
                rb.distance.to_bits(),
                "{label}: distance bits"
            );
        }
    }

    #[test]
    fn fleet_matches_monolith_and_survives_mutation() {
        let monolith = MiniIndex::new(grid_rows(120));
        for shards in [1usize, 2, 4, 7] {
            for router in [ShardRouter::Hash { seed: 3 }, ShardRouter::Modulo] {
                let mut mono = monolith.clone();
                let fleet = ShardedIndex::from_monolith(monolith.clone(), shards, router).unwrap();
                assert_eq!(fleet.len(), mono.len());
                assert_eq!(fleet.ids(), mono.ids());
                for q in [[0.0f32, 0.0], [3.5, 2.0], [16.0, 6.0]] {
                    assert_bit_identical(
                        &fleet.search(&q, 9).unwrap(),
                        &mono.search(&q, 9).unwrap(),
                        &format!("S={shards} {router:?} fresh"),
                    );
                }
                // Identical mutation sequence on both sides.
                for i in 0..20 {
                    let v = [(i as f32) * 0.37, 1.0 + (i % 5) as f32];
                    assert_eq!(fleet.insert_shared(&v).unwrap(), mono.insert(&v).unwrap());
                }
                for id in [0u64, 7, 121, 125, 9_999] {
                    assert_eq!(
                        fleet.remove_shared(id).unwrap(),
                        mono.remove(id).unwrap(),
                        "remove {id}"
                    );
                }
                fleet.compact_all_shared().unwrap();
                mono.compact().unwrap();
                assert_eq!(fleet.len(), mono.len());
                assert_eq!(fleet.ids(), mono.ids());
                for q in [[0.2f32, 0.9], [5.0, 5.0]] {
                    assert_bit_identical(
                        &fleet.search(&q, 13).unwrap(),
                        &mono.search(&q, 13).unwrap(),
                        &format!("S={shards} {router:?} mutated"),
                    );
                }
            }
        }
    }

    #[test]
    fn batch_search_gathers_stats_without_time_double_count() {
        let fleet =
            ShardedIndex::from_monolith(MiniIndex::new(grid_rows(90)), 3, ShardRouter::Modulo)
                .unwrap();
        let queries = VectorSet::from_rows(vec![vec![1.0, 1.0], vec![8.0, 3.0]]).unwrap();
        let results = fleet.search_batch_threads(&queries, 5, 2).unwrap();
        assert_eq!(results.len(), 2);
        for r in &results {
            // Counters sum across the three shards (90 live points total)…
            assert_eq!(r.stats.candidates, 90);
            // …but per-stage wall clock takes the max, not 3 × 2.0.
            assert_eq!(r.stats.filter_us, 2.0);
            assert_eq!(r.simulated_us, 1.5);
            assert_eq!(r.neighbors.len(), 5);
        }
    }

    #[test]
    fn pinned_reader_is_isolated_from_writers_and_epochs_advance() {
        let fleet = Arc::new(
            ShardedIndex::from_monolith(MiniIndex::new(grid_rows(60)), 2, ShardRouter::Modulo)
                .unwrap(),
        );
        let reader = fleet.reader();
        let before = reader.search(&[4.0, 1.0], 6).unwrap();
        let epochs0 = reader.epochs();

        let id = fleet.insert_shared(&[4.0, 1.0]).unwrap();
        fleet.remove_shared(0).unwrap();
        fleet.compact_all_shared().unwrap();

        // The pinned reader still answers from its epoch, bit-identically.
        let after = reader.search(&[4.0, 1.0], 6).unwrap();
        assert_bit_identical(&before, &after, "pinned reader");
        assert_eq!(reader.epochs(), epochs0, "pinned epochs are immutable");

        // A fresh reader observes the new epochs and the new point.
        let fresh = fleet.reader();
        for (old, new) in epochs0.iter().zip(fresh.epochs()) {
            assert!(*old < new, "epochs advance monotonically");
        }
        assert!(fresh.search(&[4.0, 1.0], 6).unwrap().ids().contains(&id));
        assert!(!fresh.search(&[0.0, 0.0], 60).unwrap().ids().contains(&0));
    }

    #[test]
    fn fleet_snapshot_round_trips_and_legacy_restores_to_one_shard() {
        let fleet = ShardedIndex::from_monolith(
            MiniIndex::new(grid_rows(80)),
            4,
            ShardRouter::Hash { seed: 9 },
        )
        .unwrap();
        fleet.insert_shared(&[2.5, 2.5]).unwrap();
        fleet.remove_shared(3).unwrap();
        let bytes = fleet.to_snapshot_bytes().unwrap();

        let restored =
            ShardedIndex::from_snapshot_bytes(MiniIndex::new(vec![vec![0.0, 0.0]]), &bytes)
                .unwrap();
        assert_eq!(restored.num_shards(), 4);
        assert_eq!(restored.router(), ShardRouter::Hash { seed: 9 });
        assert_eq!(restored.ids(), fleet.ids());
        assert_bit_identical(
            &restored.search(&[2.5, 2.5], 10).unwrap(),
            &fleet.search(&[2.5, 2.5], 10).unwrap(),
            "fleet snapshot",
        );

        // Legacy unsharded engine snapshot → single-shard fleet.
        let mono = MiniIndex::new(grid_rows(40));
        let legacy = mono.snapshot().unwrap();
        let mut fleet2 = fleet;
        fleet2.restore_from_bytes(&legacy).unwrap();
        assert_eq!(fleet2.num_shards(), 1);
        assert_bit_identical(
            &fleet2.search(&[1.0, 0.0], 5).unwrap(),
            &mono.search(&[1.0, 0.0], 5).unwrap(),
            "legacy restore",
        );
    }

    #[test]
    fn corrupt_fleet_snapshots_error_and_leave_the_fleet_intact() {
        let mut fleet =
            ShardedIndex::from_monolith(MiniIndex::new(grid_rows(50)), 2, ShardRouter::Modulo)
                .unwrap();
        let good = fleet.to_snapshot_bytes().unwrap();
        let reference = fleet.search(&[3.0, 1.0], 7).unwrap();
        for at in (0..good.len()).step_by(11) {
            let mut corrupt = good.clone();
            corrupt[at] ^= 0x20;
            if fleet.restore_from_bytes(&corrupt).is_err() {
                assert_bit_identical(
                    &fleet.search(&[3.0, 1.0], 7).unwrap(),
                    &reference,
                    "failed restore must not disturb the fleet",
                );
            }
            // Either rejected, or the flip hit an uninterpreted byte — in
            // which case the restore is semantically identical. Re-restore
            // the good bytes to keep the loop's reference valid.
            fleet.restore_from_bytes(&good).unwrap();
        }
        for len in (0..good.len()).step_by(13) {
            assert!(fleet.restore_from_bytes(&good[..len]).is_err());
        }
    }

    #[test]
    fn mapped_fleets_translate_ids_and_reject_mutation() {
        let rows = grid_rows(30);
        // Shard by parity of the global id; each shard's rows ascend in
        // global id, as the parity contract requires.
        let mut parts: Vec<(Vec<Vec<f32>>, Vec<u64>)> = vec![(vec![], vec![]); 2];
        for (id, row) in rows.iter().enumerate() {
            let s = id % 2;
            parts[s].0.push(row.clone());
            parts[s].1.push(id as u64);
        }
        let fleet = ShardedIndex::from_prebuilt(
            parts
                .into_iter()
                .map(|(rows, map)| (MiniIndex::new(rows), map))
                .collect(),
            ShardRouter::Modulo,
        )
        .unwrap();
        let mono = MiniIndex::new(rows);
        assert_bit_identical(
            &fleet.search(&[2.0, 1.0], 8).unwrap(),
            &mono.search(&[2.0, 1.0], 8).unwrap(),
            "mapped parity",
        );
        assert_eq!(fleet.ids(), mono.ids());
        assert!(!fleet.supports_mutation());
        assert!(matches!(
            fleet.insert_shared(&[0.0, 0.0]),
            Err(Error::Unsupported(_))
        ));
        assert!(matches!(fleet.remove_shared(1), Err(Error::Unsupported(_))));
        // Mapped fleets snapshot and restore with their id maps.
        let bytes = fleet.to_snapshot_bytes().unwrap();
        let restored =
            ShardedIndex::from_snapshot_bytes(MiniIndex::new(vec![vec![0.0, 0.0]]), &bytes)
                .unwrap();
        assert_eq!(restored.ids(), mono.ids());
        assert!(!restored.supports_mutation());
    }

    #[test]
    fn construction_errors_are_reported() {
        let mono = MiniIndex::new(grid_rows(10));
        assert!(matches!(
            ShardedIndex::from_monolith(mono.clone(), 0, ShardRouter::Modulo),
            Err(Error::InvalidConfig(_))
        ));
        assert!(matches!(
            ShardedIndex::from_monolith(mono.clone(), MAX_SHARDS + 1, ShardRouter::Modulo),
            Err(Error::InvalidConfig(_))
        ));
        // Colliding global ids across prebuilt shards.
        assert!(matches!(
            ShardedIndex::from_prebuilt(
                vec![
                    (MiniIndex::new(grid_rows(3)), vec![0, 1, 2]),
                    (MiniIndex::new(grid_rows(3)), vec![2, 3, 4]),
                ],
                ShardRouter::Modulo,
            ),
            Err(Error::InvalidConfig(_))
        ));
        // Map length mismatch.
        assert!(matches!(
            ShardedIndex::from_prebuilt(
                vec![(MiniIndex::new(grid_rows(3)), vec![0, 1])],
                ShardRouter::Modulo,
            ),
            Err(Error::InvalidConfig(_))
        ));
        assert!(ShardedIndex::<MiniIndex>::from_prebuilt(vec![], ShardRouter::Modulo).is_err());
    }

    #[test]
    fn background_compactor_sweeps_dirty_shards_only_and_stops() {
        let fleet = Arc::new(
            ShardedIndex::from_monolith(MiniIndex::new(grid_rows(40)), 2, ShardRouter::Modulo)
                .unwrap(),
        );
        let compactor = BackgroundCompactor::spawn(fleet.clone(), Duration::from_millis(2));
        let wait_for_runs = |target: u64| {
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while compactor.runs() < target && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(compactor.runs() >= target, "compactor stalled");
        };

        // Fresh replicas start dirty, so the first sweep publishes each
        // shard exactly once; later sweeps skip the now-clean shards
        // without cloning or bumping epochs.
        wait_for_runs(3);
        assert_eq!(fleet.shard_epochs(), vec![1, 1], "clean shards republished");

        // A mutation re-dirties its owner (id 0 → shard 0 under Modulo):
        // the write publishes epoch 2 and the next sweep compacts to 3,
        // while the untouched shard stays at its first-sweep epoch.
        assert!(fleet.remove_shared(0).unwrap());
        let after_remove = compactor.runs() + 2;
        wait_for_runs(after_remove);
        let epochs = fleet.shard_epochs();
        assert_eq!(epochs[0], 3, "dirty shard swept once after the remove");
        assert_eq!(epochs[1], 1, "clean shard untouched by the sweep");

        drop(compactor);
        assert_eq!(fleet.search(&[1.0, 1.0], 3).unwrap().neighbors.len(), 3);
    }

    /// Shutdown latency must be bounded by the condvar handoff (plus at most
    /// one in-flight sweep), *not* by the configured interval: a compactor
    /// on a 10-second cadence tears down in well under a second.
    #[test]
    fn background_compactor_shutdown_is_prompt_despite_a_long_interval() {
        let fleet = Arc::new(
            ShardedIndex::from_monolith(MiniIndex::new(grid_rows(40)), 2, ShardRouter::Modulo)
                .unwrap(),
        );
        let compactor = BackgroundCompactor::spawn(fleet, Duration::from_secs(10));
        // Give the thread time to enter its (10 s) wait.
        std::thread::sleep(Duration::from_millis(20));
        let started = std::time::Instant::now();
        drop(compactor); // joins the thread
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "shutdown took {:?}, bounded by the interval instead of the \
             stop signal",
            started.elapsed()
        );
    }

    /// A zero interval is clamped (to 100µs) rather than busy-spinning on
    /// the writer lock: the compactor still ticks, but the sweep count over
    /// a fixed window stays far below what a hot loop would produce.
    #[test]
    fn background_compactor_zero_interval_does_not_busy_spin() {
        let fleet = Arc::new(
            ShardedIndex::from_monolith(MiniIndex::new(grid_rows(40)), 2, ShardRouter::Modulo)
                .unwrap(),
        );
        let compactor = BackgroundCompactor::spawn(fleet, Duration::ZERO);
        let window = Duration::from_millis(50);
        std::thread::sleep(window);
        let runs = compactor.runs();
        assert!(runs >= 1, "clamped interval still ticks");
        // 50ms / 100µs = 500 wakeups maximum; a busy spin would manage
        // orders of magnitude more sweeps of an all-clean fleet.
        let ceiling = (window.as_micros() / 100) as u64 + 50;
        assert!(runs <= ceiling, "{runs} sweeps in {window:?}: busy spin");
        drop(compactor);
    }

    #[test]
    fn mapped_snapshots_with_colliding_id_maps_are_rejected() {
        // A valid two-shard mapped fleet snapshot…
        let fleet = ShardedIndex::from_prebuilt(
            vec![
                (MiniIndex::new(grid_rows(3)), vec![0, 1, 2]),
                (MiniIndex::new(grid_rows(3)), vec![3, 4, 5]),
            ],
            ShardRouter::Modulo,
        )
        .unwrap();
        let good = fleet.to_snapshot_bytes().unwrap();
        // …re-framed with shard 1's id map overlapping shard 0's (checksums
        // recomputed, so only the new cross-shard validation can catch it).
        let snap = Snapshot::parse(&good).unwrap();
        let mut writer = SnapshotWriter::new(KIND_SHARD);
        let mut mani = SectionWriter::new();
        mani.put_raw(snap.section(*b"MANI").unwrap().take_rest());
        writer.add_section(*b"MANI", mani);
        let mut imap = SectionWriter::new();
        imap.put_u64(2);
        imap.put_u64s(&[0, 1, 2]);
        imap.put_u64s(&[2, 3, 4]); // id 2 owned twice
        writer.add_section(*b"IMAP", imap);
        for tag in [*b"S000", *b"S001"] {
            let mut section = SectionWriter::new();
            section.put_raw(snap.section(tag).unwrap().take_rest());
            writer.add_section(tag, section);
        }
        let poisoned = writer.finish();

        let mut target = fleet;
        assert!(matches!(
            target.restore_from_bytes(&poisoned),
            Err(Error::Corrupted(_))
        ));
        // The good bytes still restore.
        target.restore_from_bytes(&good).unwrap();
        assert_eq!(target.ids(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn global_snapshots_with_misrouted_ids_are_rejected() {
        // Container surgery: duplicate shard 0's engine payload into shard
        // 1's section with a consistent manifest. Checksums are all valid,
        // per-shard lengths match — only the live-id routing validation can
        // catch that every id would now be live in two shards.
        let fleet =
            ShardedIndex::from_monolith(MiniIndex::new(grid_rows(20)), 2, ShardRouter::Modulo)
                .unwrap();
        let good = fleet.to_snapshot_bytes().unwrap();
        let snap = Snapshot::parse(&good).unwrap();
        let shard0_payload = snap.section(*b"S000").unwrap().take_rest().to_vec();
        let n0 = fleet.reader().shard(0).index().len() as u64;

        let mut writer = SnapshotWriter::new(KIND_SHARD);
        let mut mani = SectionWriter::new();
        mani.put_u32(1); // manifest version
        mani.put_u8(0); // global-id mode
        ShardRouter::Modulo.encode(&mut mani);
        mani.put_u64(2);
        mani.put_u64s(&[n0, n0]);
        writer.add_section(*b"MANI", mani);
        for tag in [*b"S000", *b"S001"] {
            let mut section = SectionWriter::new();
            section.put_raw(&shard0_payload);
            writer.add_section(tag, section);
        }
        let poisoned = writer.finish();

        let mut target =
            ShardedIndex::from_monolith(MiniIndex::new(grid_rows(4)), 1, ShardRouter::Modulo)
                .unwrap();
        assert!(matches!(
            target.restore_from_bytes(&poisoned),
            Err(Error::Corrupted(_))
        ));
        target.restore_from_bytes(&good).unwrap();
        assert_eq!(target.ids(), fleet.ids());
    }

    #[test]
    fn fleet_name_and_capabilities_reflect_the_inner_engine() {
        let fleet =
            ShardedIndex::from_monolith(MiniIndex::new(grid_rows(12)), 3, ShardRouter::Modulo)
                .unwrap();
        assert!(fleet.name().starts_with("Sharded3x["));
        assert!(fleet.supports_mutation());
        assert!(fleet.supports_snapshot());
        assert_eq!(fleet.metric(), Metric::L2);
        assert_eq!(fleet.dim(), 2);
        assert_eq!(
            fleet.merge_order(),
            juno_common::topk::ScoreOrder::Ascending
        );
    }

    // ---- fault tolerance -------------------------------------------------

    use crate::fault::{FaultKind, FaultOp, FaultPlan, FaultRule};
    use crate::health::{BreakerConfig, BreakerState, RetryPolicy};
    use crate::shard::ShardStatus;
    use std::time::Instant;

    fn four_shard_fleet(n: usize) -> ShardedIndex<MiniIndex> {
        ShardedIndex::from_monolith(
            MiniIndex::new(grid_rows(n)),
            4,
            ShardRouter::Hash { seed: 5 },
        )
        .unwrap()
    }

    /// A rule firing forever on `(shard, op)` starting at op counter 0.
    fn always(shard: usize, op: FaultOp, kind: FaultKind) -> FaultRule {
        FaultRule {
            shard,
            op,
            from_op: 0,
            until_op: None,
            kind,
        }
    }

    /// A rule firing only for the first `n` hits of `(shard, op)`.
    fn first_n(shard: usize, op: FaultOp, n: u64, kind: FaultKind) -> FaultRule {
        FaultRule {
            shard,
            op,
            from_op: 0,
            until_op: Some(n),
            kind,
        }
    }

    #[test]
    fn zero_fault_deadline_search_is_bit_identical_to_plain_search() {
        let fleet = four_shard_fleet(130);
        let reader = fleet.reader();
        for q in [[0.0f32, 0.0], [4.5, 2.5], [16.0, 7.0]] {
            let exact = reader.search(&q, 11).unwrap();
            let degraded = reader
                .search_deadline(&q, 11, Duration::from_secs(10))
                .unwrap();
            assert!(degraded.is_complete());
            assert_eq!(degraded.coverage, 1.0);
            assert!(degraded.shards.iter().all(ShardStatus::is_ok));
            assert_bit_identical(&exact, &degraded.result, "zero-fault deadline");
        }
        // Batch variant against the plain batch path.
        let queries =
            VectorSet::from_rows(vec![vec![1.0, 1.0], vec![9.0, 4.0], vec![0.5, 6.0]]).unwrap();
        let exact = reader.search_batch(&queries, 7).unwrap();
        let degraded = reader
            .search_batch_deadline(&queries, 7, Duration::from_secs(10))
            .unwrap();
        assert_eq!(degraded.coverage, 1.0);
        for (e, d) in exact.iter().zip(&degraded.results) {
            assert_bit_identical(e, d, "zero-fault deadline batch");
        }
    }

    #[test]
    fn stalled_shard_degrades_coverage_and_merges_healthy_shards_exactly() {
        let fleet = four_shard_fleet(130);
        let plan = Arc::new(FaultPlan::new(4).with_rule(always(
            1,
            FaultOp::Search,
            FaultKind::Stall(Duration::from_secs(30)),
        )));
        fleet.set_fault_plan(Some(plan));
        let reader = fleet.reader();
        let budget = Duration::from_millis(300);
        let q = [3.0f32, 2.0];

        let started = Instant::now();
        let degraded = reader.search_deadline(&q, 9, budget).unwrap();
        let elapsed = started.elapsed();
        assert!(
            elapsed < budget * 2,
            "degraded search took {elapsed:?} for a {budget:?} budget"
        );
        assert_eq!(degraded.coverage, 0.75, "3 of 4 shards answered");
        for (s, status) in degraded.shards.iter().enumerate() {
            if s == 1 {
                assert_eq!(*status, ShardStatus::TimedOut, "stalled shard");
            } else {
                assert!(status.is_ok(), "healthy shard {s}: {status:?}");
            }
        }
        // The merged result is bit-identical to querying the healthy shards
        // alone and merging their lists.
        let lists: Vec<Vec<juno_common::index::Neighbor>> = [0usize, 2, 3]
            .iter()
            .map(|&s| reader.shard(s).index().search(&q, 9).unwrap().neighbors)
            .collect();
        let expect =
            juno_common::topk::merge_neighbors(&lists, 9, juno_common::topk::ScoreOrder::Ascending);
        assert_eq!(degraded.result.neighbors.len(), expect.len());
        for (got, want) in degraded.result.neighbors.iter().zip(&expect) {
            assert_eq!(got.id, want.id, "healthy-shard merge ids");
            assert_eq!(
                got.distance.to_bits(),
                want.distance.to_bits(),
                "healthy-shard merge distance bits"
            );
        }
    }

    #[test]
    fn transient_search_errors_are_retried_to_full_coverage() {
        let fleet = four_shard_fleet(80);
        // Shard 2's first search attempt fails; the in-request retry's
        // second attempt (op counter 1) passes.
        let plan = Arc::new(FaultPlan::new(4).with_rule(first_n(
            2,
            FaultOp::Search,
            1,
            FaultKind::Transient,
        )));
        fleet.set_fault_plan(Some(plan.clone()));
        let reader = fleet.reader();
        let degraded = reader
            .search_deadline(&[2.0, 2.0], 8, Duration::from_secs(10))
            .unwrap();
        assert_eq!(degraded.coverage, 1.0, "retry hid the transient fault");
        assert!(degraded.is_complete());
        assert!(
            plan.op_count(2, FaultOp::Search) >= 2,
            "the shard really was attempted twice"
        );
        assert_bit_identical(
            &reader.search(&[2.0, 2.0], 8).unwrap(),
            &degraded.result,
            "post-retry result",
        );
    }

    #[test]
    fn panicking_search_worker_is_isolated_and_reported() {
        juno_common::testing::silence_panics();
        let fleet = four_shard_fleet(80);
        let plan =
            Arc::new(FaultPlan::new(4).with_rule(always(3, FaultOp::Search, FaultKind::Panic)));
        fleet.set_fault_plan(Some(plan));
        let reader = fleet.reader();
        let degraded = reader
            .search_deadline(&[1.0, 1.0], 6, Duration::from_secs(10))
            .unwrap();
        assert_eq!(degraded.coverage, 0.75);
        match &degraded.shards[3] {
            ShardStatus::Failed(Error::WorkerPanicked(msg)) => {
                assert!(msg.contains("injected panic"), "panic message: {msg}")
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // The process (and the fleet) survive: clearing the plan restores
        // exact service.
        fleet.set_fault_plan(None);
        let clean = fleet.reader();
        let after = clean
            .search_deadline(&[1.0, 1.0], 6, Duration::from_secs(10))
            .unwrap();
        assert_eq!(after.coverage, 1.0);
    }

    #[test]
    fn plain_search_surfaces_engine_panics_as_worker_panicked() {
        juno_common::testing::silence_panics();
        /// A MiniIndex whose searches always panic — exercises panic
        /// isolation on the *plain* (non-deadline) scatter path, where the
        /// panic unwinds inside a `parallel::map` worker mid-batch.
        #[derive(Debug, Clone)]
        struct PanicMini(MiniIndex);
        impl AnnIndex for PanicMini {
            fn metric(&self) -> Metric {
                self.0.metric()
            }
            fn dim(&self) -> usize {
                self.0.dim()
            }
            fn len(&self) -> usize {
                self.0.len()
            }
            fn search(&self, _query: &[f32], _k: usize) -> Result<SearchResult> {
                panic!("[injected-fault] engine panic mid-batch");
            }
            fn supports_mutation(&self) -> bool {
                true
            }
            fn insert(&mut self, vector: &[f32]) -> Result<u64> {
                self.0.insert(vector)
            }
            fn remove(&mut self, id: u64) -> Result<bool> {
                self.0.remove(id)
            }
            fn ids(&self) -> Vec<u64> {
                self.0.ids()
            }
        }
        let fleet = ShardedIndex::from_monolith(
            PanicMini(MiniIndex::new(grid_rows(40))),
            2,
            ShardRouter::Modulo,
        )
        .unwrap();
        match fleet.search(&[1.0, 1.0], 4) {
            Err(Error::WorkerPanicked(msg)) => {
                assert!(msg.contains("engine panic mid-batch"), "{msg}")
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // The fleet object is still usable for non-search operations: the
        // panic never poisoned a lock.
        assert_eq!(fleet.num_shards(), 2);
        assert!(fleet.insert_shared(&[0.5, 0.5]).is_ok());
    }

    /// The satellite contract for live health retuning: `configure_health`
    /// works through `&self` on a shared `Arc<ShardedIndex>`, reconfigures
    /// the *same* tracker in place (no new `Arc`), resets every breaker to
    /// closed, and the new tuning is visible to readers pinned **before**
    /// the retune (they share the tracker).
    #[test]
    fn configure_health_retunes_a_live_shared_fleet_in_place() {
        let fleet = Arc::new(four_shard_fleet(40));
        let reader = fleet.reader();
        let tracker = fleet.health();
        // Trip shard 1's breaker under the default tuning.
        let breaker = tracker.breaker(1);
        for _ in 0..tracker.breaker_config().failure_threshold {
            let generation = breaker.admit().expect("closed breaker admits");
            breaker.record_failure(generation);
        }
        assert_eq!(tracker.breaker_states()[1], BreakerState::Open);
        // Retune through &self on the shared fleet: no &mut, no swap.
        fleet.configure_health(
            BreakerConfig {
                failure_threshold: 9,
                ..BreakerConfig::default()
            },
            RetryPolicy {
                max_retries: 7,
                ..RetryPolicy::default()
            },
        );
        assert!(Arc::ptr_eq(&tracker, &fleet.health()));
        assert_eq!(fleet.health().breaker_config().failure_threshold, 9);
        assert_eq!(fleet.health().retry().max_retries, 7);
        // The retune resets every breaker, and the previously pinned reader
        // observes it immediately.
        assert!(reader
            .breaker_states()
            .iter()
            .all(|s| *s == BreakerState::Closed));
    }

    #[test]
    fn persistent_failures_trip_the_breaker_and_recovery_closes_it() {
        let fleet = four_shard_fleet(80);
        fleet.configure_health(
            BreakerConfig {
                failure_threshold: 3,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(20),
                seed: 11,
                ..BreakerConfig::default()
            },
            RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
        );
        let plan =
            Arc::new(FaultPlan::new(4).with_rule(always(2, FaultOp::Search, FaultKind::Fail)));
        fleet.set_fault_plan(Some(plan.clone()));
        let reader = fleet.reader();
        let budget = Duration::from_secs(5);

        // Three consecutive failures trip shard 2's breaker…
        for i in 0..3 {
            let d = reader.search_deadline(&[1.0, 1.0], 5, budget).unwrap();
            assert!(
                matches!(d.shards[2], ShardStatus::Failed(_)),
                "attempt {i}: {:?}",
                d.shards[2]
            );
        }
        assert_eq!(fleet.breaker_states()[2], BreakerState::Open);
        // …after which the shard is skipped without being touched.
        let hits_before = plan.op_count(2, FaultOp::Search);
        let d = reader.search_deadline(&[1.0, 1.0], 5, budget).unwrap();
        assert_eq!(d.shards[2], ShardStatus::SkippedOpen);
        assert_eq!(d.coverage, 0.75);
        assert_eq!(
            plan.op_count(2, FaultOp::Search),
            hits_before,
            "open breaker spends nothing on the dead shard"
        );

        // The fault clears; the half-open probe closes the breaker and
        // coverage returns to 1.0.
        plan.disarm();
        let recovered = Instant::now() + Duration::from_secs(10);
        loop {
            let d = reader.search_deadline(&[1.0, 1.0], 5, budget).unwrap();
            if d.coverage == 1.0 {
                break;
            }
            assert!(Instant::now() < recovered, "breaker never closed");
            std::thread::sleep(Duration::from_millis(3));
        }
        assert_eq!(fleet.breaker_states()[2], BreakerState::Closed);
    }

    #[test]
    fn mid_publish_failure_rolls_every_shard_back_to_its_pre_op_state() {
        let fleet = four_shard_fleet(100);
        // Advance past the fresh state so the pre-op epochs are non-trivial.
        fleet.insert_shared(&[7.0, 7.0]).unwrap();
        let epochs_before = fleet.shard_epochs();
        let ids_before = fleet.ids();
        let reference = fleet.search(&[3.0, 3.0], 9).unwrap();

        // The publish of shard 2 fails once: shards 0 and 1 have already
        // published the new epoch when the kill fires.
        let plan =
            Arc::new(FaultPlan::new(4).with_rule(first_n(2, FaultOp::Publish, 1, FaultKind::Fail)));
        fleet.set_fault_plan(Some(plan));
        let err = fleet.insert_batch_shared(
            &VectorSet::from_rows(vec![vec![8.0, 8.0], vec![9.0, 9.0]]).unwrap(),
        );
        assert!(matches!(err, Err(Error::Unavailable(_))), "{err:?}");

        // Every shard is back on its exact pre-op epoch and id set.
        assert_eq!(fleet.shard_epochs(), epochs_before, "pre-op epochs");
        assert_eq!(fleet.ids(), ids_before, "pre-op id set");
        assert_bit_identical(
            &fleet.search(&[3.0, 3.0], 9).unwrap(),
            &reference,
            "post-rollback search",
        );

        // The fault window has passed: the retried batch applies cleanly and
        // epochs advance from the rolled-back baseline.
        let ids = fleet
            .insert_batch_shared(&VectorSet::from_rows(vec![vec![8.0, 8.0]]).unwrap())
            .unwrap();
        assert_eq!(ids.len(), 1);
        for (before, after) in epochs_before.iter().zip(fleet.shard_epochs()) {
            assert_eq!(after, before + 1, "retry publishes exactly one epoch");
        }
        assert!(fleet.ids().contains(&ids[0]));
    }

    #[test]
    fn writer_panic_mid_publish_rolls_back_and_surfaces_worker_panicked() {
        juno_common::testing::silence_panics();
        let fleet = four_shard_fleet(60);
        let epochs_before = fleet.shard_epochs();
        let ids_before = fleet.ids();
        let plan = Arc::new(FaultPlan::new(4).with_rule(first_n(
            1,
            FaultOp::Publish,
            1,
            FaultKind::Panic,
        )));
        fleet.set_fault_plan(Some(plan));
        match fleet.insert_shared(&[5.0, 5.0]) {
            Err(Error::WorkerPanicked(msg)) => assert!(msg.contains("injected panic"), "{msg}"),
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        assert_eq!(fleet.shard_epochs(), epochs_before);
        assert_eq!(fleet.ids(), ids_before);
        // The writer lock is not poisoned: the next insert succeeds.
        assert!(fleet.insert_shared(&[5.0, 5.0]).is_ok());
    }

    #[test]
    fn staging_faults_and_remove_faults_leave_the_fleet_untouched() {
        let fleet = four_shard_fleet(60);
        let epochs_before = fleet.shard_epochs();
        let ids_before = fleet.ids();
        let plan =
            Arc::new(FaultPlan::new(4).with_rule(first_n(3, FaultOp::Insert, 1, FaultKind::Fail)));
        fleet.set_fault_plan(Some(plan));
        // Staging shard 3 fails before anything is published.
        assert!(fleet.insert_shared(&[4.0, 4.0]).is_err());
        assert_eq!(fleet.shard_epochs(), epochs_before);
        assert_eq!(fleet.ids(), ids_before);
        // Remove path: fault the owner's publish once.
        let id = 7u64;
        let owner = fleet.router().route(id, 4);
        let plan = Arc::new(FaultPlan::new(4).with_rule(first_n(
            owner,
            FaultOp::Publish,
            1,
            FaultKind::Fail,
        )));
        fleet.set_fault_plan(Some(plan));
        assert!(fleet.remove_shared(id).is_err());
        assert_eq!(fleet.shard_epochs(), epochs_before);
        assert!(fleet.ids().contains(&id), "failed remove keeps the id live");
        // Window passed: the retry removes it.
        assert!(fleet.remove_shared(id).unwrap());
        assert!(!fleet.ids().contains(&id));
    }

    #[test]
    fn compaction_faults_keep_the_shard_dirty_and_surface() {
        let fleet = four_shard_fleet(60);
        fleet.compact_all_shared().unwrap(); // clear construction dirt
        let epochs_clean = fleet.shard_epochs();
        // Dirty shard 0's owner via a remove, then fail its next compaction.
        let id = fleet.ids()[0];
        let owner = fleet.router().route(id, 4);
        fleet.remove_shared(id).unwrap();
        let plan = Arc::new(FaultPlan::new(4).with_rule(first_n(
            owner,
            FaultOp::Compact,
            1,
            FaultKind::Fail,
        )));
        fleet.set_fault_plan(Some(plan));
        assert!(matches!(
            fleet.compact_all_shared(),
            Err(Error::Unavailable(_))
        ));
        // The shard kept its post-remove state and stayed dirty, so the
        // next sweep (past the fault window) compacts it.
        fleet.compact_all_shared().unwrap();
        let epochs = fleet.shard_epochs();
        assert_eq!(
            epochs[owner],
            epochs_clean[owner] + 2,
            "remove + one successful sweep"
        );
        fleet.compact_all_shared().unwrap();
        assert_eq!(fleet.shard_epochs(), epochs, "clean fleet stays put");
    }

    #[test]
    fn background_compactor_survives_faults_and_counts_errors() {
        let fleet = Arc::new(four_shard_fleet(40));
        // Every shard starts dirty; shard 0's first two sweeps fail.
        let plan =
            Arc::new(FaultPlan::new(4).with_rule(first_n(0, FaultOp::Compact, 2, FaultKind::Fail)));
        fleet.set_fault_plan(Some(plan));
        let compactor = BackgroundCompactor::spawn(fleet.clone(), Duration::from_millis(2));
        let deadline = Instant::now() + Duration::from_secs(20);
        while (compactor.errors() < 2 || compactor.runs() < 1) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(
            compactor.errors() >= 2,
            "compactor saw {} errors",
            compactor.errors()
        );
        assert!(
            compactor.runs() >= 1,
            "compactor never recovered: {} runs",
            compactor.runs()
        );
        drop(compactor);
        // All shards eventually swept clean despite the faults.
        assert_eq!(fleet.shard_epochs(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn restore_faults_leave_the_live_fleet_untouched() {
        juno_common::testing::silence_panics();
        let mut fleet = four_shard_fleet(50);
        let bytes = fleet.to_snapshot_bytes().unwrap();
        let epochs_before = fleet.shard_epochs();
        let reference = fleet.search(&[2.0, 2.0], 6).unwrap();
        for kind in [FaultKind::Fail, FaultKind::Panic] {
            let plan = Arc::new(FaultPlan::new(4).with_rule(first_n(1, FaultOp::Restore, 1, kind)));
            fleet.set_fault_plan(Some(plan));
            assert!(fleet.restore_from_bytes(&bytes).is_err(), "{kind:?}");
            assert_eq!(fleet.shard_epochs(), epochs_before, "{kind:?}");
            assert_bit_identical(
                &fleet.search(&[2.0, 2.0], 6).unwrap(),
                &reference,
                "post-restore-fault search",
            );
        }
        // Past the windows the restore applies.
        fleet.set_fault_plan(None);
        fleet.restore_from_bytes(&bytes).unwrap();
        assert_eq!(fleet.num_shards(), 4);
    }

    #[test]
    fn snapshot_files_round_trip_and_recover_from_torn_writes() {
        let dir = std::env::temp_dir().join(format!("juno_serve_snap_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.snap");

        // Generation 1: the fresh fleet.
        let fleet = four_shard_fleet(70);
        fleet.save_to_path(&path).unwrap();
        let gen1_ids = fleet.ids();
        // Generation 2: after a mutation.
        let id = fleet.insert_shared(&[6.5, 6.5]).unwrap();
        fleet.save_to_path(&path).unwrap();

        // Clean load restores generation 2.
        let restored =
            ShardedIndex::from_snapshot_path(MiniIndex::new(vec![vec![0.0, 0.0]]), &path).unwrap();
        assert_eq!(restored.ids(), fleet.ids());
        assert!(restored.ids().contains(&id));

        // Corrupt the newest generation in place: load falls back to the
        // rotated previous generation without panicking.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        bytes[mid + 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let recovered =
            ShardedIndex::from_snapshot_path(MiniIndex::new(vec![vec![0.0, 0.0]]), &path).unwrap();
        assert_eq!(recovered.ids(), gen1_ids, "fell back to generation 1");

        // Truncate the newest generation: same recovery.
        let full = std::fs::read(&path).unwrap();
        for frac in [0, full.len() / 3, full.len() - 1] {
            std::fs::write(&path, &full[..frac]).unwrap();
            let recovered =
                ShardedIndex::from_snapshot_path(MiniIndex::new(vec![vec![0.0, 0.0]]), &path)
                    .unwrap();
            assert_eq!(recovered.ids(), gen1_ids, "truncated to {frac} bytes");
        }

        // Both generations gone → a clean Io error, never a panic.
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(juno_common::atomic_file::prev_path(&path)).unwrap();
        assert!(matches!(
            ShardedIndex::from_snapshot_path(MiniIndex::new(vec![vec![0.0, 0.0]]), &path),
            Err(Error::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_level_path_persistence_round_trips() {
        let dir = std::env::temp_dir().join(format!("juno_mini_snap_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mini.snap");
        let mini = MiniIndex::new(grid_rows(25));
        mini.save_to_path(&path).unwrap();
        let mut loaded = MiniIndex::new(vec![vec![0.0, 0.0]]);
        loaded.load_from_path(&path).unwrap();
        assert_eq!(loaded.ids(), mini.ids());
        assert_bit_identical(
            &loaded.search(&[1.5, 0.5], 5).unwrap(),
            &mini.search(&[1.5, 0.5], 5).unwrap(),
            "engine path round-trip",
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_plans_drive_the_fleet_without_hanging_or_poisoning() {
        juno_common::testing::silence_panics();
        // A fixed-seed smoke version of the full chaos suite: attach a
        // generated plan, hammer reads and writes, assert the fleet always
        // either serves or errors cleanly — and recovers once disarmed.
        for seed in [1u64, 2, 3] {
            let fleet = four_shard_fleet(60);
            let plan = Arc::new(FaultPlan::chaos(seed, 4, Duration::from_millis(5)));
            fleet.set_fault_plan(Some(plan.clone()));
            for i in 0..12 {
                let v = [i as f32, (i % 3) as f32];
                let _ = fleet.insert_shared(&v); // may fault; must not wedge
                let _ = fleet.compact_all_shared();
                let reader = fleet.reader();
                let d = reader
                    .search_deadline(&[1.0, 1.0], 5, Duration::from_millis(100))
                    .unwrap();
                assert!((0.0..=1.0).contains(&d.coverage), "seed {seed}");
            }
            plan.disarm();
            let recovered = Instant::now() + Duration::from_secs(10);
            loop {
                let d = fleet
                    .reader()
                    .search_deadline(&[1.0, 1.0], 5, Duration::from_secs(5))
                    .unwrap();
                if d.coverage == 1.0 {
                    break;
                }
                assert!(Instant::now() < recovered, "seed {seed}: never recovered");
                std::thread::sleep(Duration::from_millis(3));
            }
            // Writers recovered too.
            fleet.insert_shared(&[9.0, 9.0]).unwrap();
        }
    }

    // ---- online serving front-end ----------------------------------------

    use crate::server::{Server, ServerConfig};

    #[test]
    fn server_serves_concurrent_clients_with_correct_results_and_stats() {
        let fleet = Arc::new(four_shard_fleet(60));
        let server = Arc::new(
            Server::spawn(
                fleet.clone(),
                ServerConfig {
                    max_batch: 4,
                    max_delay: Duration::from_millis(2),
                    queue_depth: 64,
                    search_budget: Duration::from_secs(5),
                    dispatchers: 2,
                },
            )
            .unwrap(),
        );
        let clients = 16;
        std::thread::scope(|scope| {
            for c in 0..clients {
                let server = server.clone();
                let fleet = fleet.clone();
                scope.spawn(move || {
                    let q = [c as f32 * 0.37, (c % 5) as f32 * 0.61];
                    let served = server.query(&q, 5).unwrap();
                    let direct = fleet.search(&q, 5).unwrap();
                    assert_eq!(
                        served.result.neighbors, direct.neighbors,
                        "client {c}: batched result differs from direct search"
                    );
                    assert!(served.stats.batch_size >= 1);
                    assert_eq!(served.stats.coverage, 1.0);
                    assert_eq!(served.stats.shards.len(), 4);
                    assert!(served.stats.shards.iter().all(ShardStatus::is_ok));
                });
            }
        });
        let snap = server.metrics_snapshot();
        assert_eq!(snap.counter("serve.admitted"), clients);
        assert_eq!(snap.counter("serve.rejected"), 0);
        assert_eq!(snap.histograms["serve.latency_ns"].count, clients);
        assert_eq!(snap.histograms["serve.queue_wait_ns"].count, clients);
        let sizes = &snap.histograms["serve.batch_size"];
        assert_eq!(sizes.sum, clients, "every request rode exactly one batch");
        assert!(sizes.max <= 4, "batch exceeded max_batch");
        assert!(snap.counter("serve.dispatched_batches") >= clients / 4);
        assert_eq!(snap.gauge("serve.queue_depth"), 0);
    }

    #[test]
    fn server_rejects_beyond_queue_depth_and_flushes_admitted_work_on_drop() {
        let fleet = Arc::new(four_shard_fleet(40));
        // max_batch is far above what we enqueue and max_delay is huge, so
        // the lone admitted request sits in the queue deterministically
        // until shutdown flushes it.
        let server = Arc::new(
            Server::spawn(
                fleet,
                ServerConfig {
                    max_batch: 64,
                    max_delay: Duration::from_secs(60),
                    queue_depth: 1,
                    search_budget: Duration::from_secs(5),
                    dispatchers: 1,
                },
            )
            .unwrap(),
        );
        let first = {
            let server = server.clone();
            std::thread::spawn(move || server.query(&[1.0, 1.0], 3))
        };
        // Wait until the first request occupies the queue's only slot. The
        // admitted counter is bumped after the enqueue becomes visible, so
        // polling it (not queue_depth) also orders this thread after the
        // client's metric update — the snapshot asserts below would otherwise
        // race it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.metrics_snapshot().counter("serve.admitted") < 1 {
            assert!(Instant::now() < deadline, "first request never enqueued");
            std::thread::yield_now();
        }
        assert_eq!(server.queue_depth(), 1);
        let rejected = server.query(&[2.0, 2.0], 3);
        assert!(
            matches!(rejected, Err(juno_common::Error::Overloaded(_))),
            "expected Overloaded, got {rejected:?}"
        );
        let snap = server.metrics_snapshot();
        assert_eq!(snap.counter("serve.rejected"), 1);
        assert_eq!(snap.counter("serve.admitted"), 1);
        // Shutdown flushes the admitted request rather than dropping it.
        // (The blocked client thread holds an Arc clone, so Drop alone
        // would wait for it — close ingress explicitly first.)
        server.shutdown();
        let response = first.join().unwrap().unwrap();
        assert_eq!(response.result.neighbors.len(), 3);
        assert_eq!(response.stats.batch_size, 1);
        assert!(matches!(
            server.query(&[3.0, 3.0], 3),
            Err(juno_common::Error::Unavailable(_))
        ));
        drop(server);
    }

    #[test]
    fn server_validates_requests_before_admission() {
        let fleet = Arc::new(four_shard_fleet(20));
        let server = Server::spawn(fleet, ServerConfig::default()).unwrap();
        assert!(matches!(
            server.query(&[1.0, 2.0, 3.0], 5),
            Err(juno_common::Error::DimensionMismatch {
                expected: 2,
                actual: 3
            })
        ));
        assert!(matches!(
            server.query(&[1.0, 2.0], 0),
            Err(juno_common::Error::InvalidConfig(_))
        ));
        let snap = server.metrics_snapshot();
        assert_eq!(
            snap.counter("serve.admitted"),
            0,
            "bad requests never queue"
        );
    }

    #[test]
    fn server_mixed_k_batch_truncates_each_request_exactly() {
        let fleet = Arc::new(four_shard_fleet(60));
        let server = Arc::new(
            Server::spawn(
                fleet.clone(),
                ServerConfig {
                    max_batch: 3,
                    max_delay: Duration::from_secs(60), // size trigger only
                    queue_depth: 16,
                    search_budget: Duration::from_secs(5),
                    dispatchers: 1,
                },
            )
            .unwrap(),
        );
        let ks = [2usize, 5, 9];
        std::thread::scope(|scope| {
            for (i, k) in ks.into_iter().enumerate() {
                let server = server.clone();
                let fleet = fleet.clone();
                scope.spawn(move || {
                    let q = [i as f32, 1.0 - i as f32];
                    let served = server.query(&q, k).unwrap();
                    assert_eq!(served.stats.batch_size, 3, "size trigger formed the batch");
                    let direct = fleet.search(&q, k).unwrap();
                    assert_eq!(
                        served.result.neighbors, direct.neighbors,
                        "k={k}: truncation from k_max broke the prefix property"
                    );
                });
            }
        });
    }

    /// End-to-end QoS under a seeded stall: a stalled shard costs coverage,
    /// never the deadline — p999 stays inside the configured budget — and
    /// after `disarm()` the probe deadline lets the breaker recover to full
    /// coverage even though the abandoned probes never reported.
    #[test]
    fn server_p999_holds_under_stall_and_coverage_recovers_after_disarm() {
        let raw = four_shard_fleet(60);
        raw.configure_health(
            BreakerConfig {
                failure_threshold: 2,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(10),
                probe_timeout: Duration::from_millis(30),
                seed: 13,
            },
            RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
        );
        let fleet = Arc::new(raw);
        let budget = Duration::from_millis(40);
        let server = Server::spawn(
            fleet.clone(),
            ServerConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(1),
                queue_depth: 64,
                search_budget: budget,
                dispatchers: 1,
            },
        )
        .unwrap();
        // Shard 2 stalls on every search, well past the batch budget.
        let plan = Arc::new(FaultPlan::new(4).with_rule(always(
            2,
            FaultOp::Search,
            FaultKind::Stall(Duration::from_millis(400)),
        )));
        fleet.set_fault_plan(Some(plan.clone()));
        let mut saw_degraded = false;
        for i in 0..30 {
            let served = server.query(&[i as f32 * 0.1, 0.5], 5).unwrap();
            if served.stats.coverage < 1.0 {
                saw_degraded = true;
            }
        }
        assert!(saw_degraded, "the stall never surfaced as lost coverage");
        let p999 = server.metrics_snapshot().histograms["serve.latency_ns"].p999();
        // End-to-end tail ≤ queueing (max_delay) + batch budget + slack for
        // merge and reply plumbing; far below the 400ms stall.
        let ceiling = (budget + Duration::from_millis(1) + Duration::from_millis(60)).as_nanos();
        assert!(
            u128::from(p999) <= ceiling,
            "p999 {p999}ns exceeds deadline ceiling {ceiling}ns"
        );
        // Disarm and keep querying: the probe deadline re-admits probes that
        // the stall swallowed, so the breaker closes and coverage returns.
        plan.disarm();
        let recovered_by = Instant::now() + Duration::from_secs(10);
        loop {
            let served = server.query(&[0.3, 0.3], 5).unwrap();
            if served.stats.coverage == 1.0 {
                break;
            }
            assert!(
                Instant::now() < recovered_by,
                "coverage never recovered after disarm: {:?}",
                server.breaker_states()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let snap = server.metrics_snapshot();
        assert!(snap.counter("serve.degraded_batches") >= 1);
        assert!(snap.gauge("serve.breaker_transitions") >= 2);
    }

    // ---- durability plane -------------------------------------------------

    use crate::durability::DurabilityConfig;
    use juno_common::wal::{FsyncPolicy, WalOptions};

    fn wal_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("juno_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The recovered fleet and the original must agree on ids, search bits,
    /// and — via a probe insert applied to both — id-allocator state.
    fn assert_fleet_equivalent(
        recovered: &ShardedIndex<MiniIndex>,
        reference: &ShardedIndex<MiniIndex>,
        label: &str,
    ) {
        assert_eq!(recovered.ids(), reference.ids(), "{label}: ids");
        for q in [[0.0f32, 0.0], [3.7, 1.1], [16.0, 6.0]] {
            assert_bit_identical(
                &recovered.search(&q, 12).unwrap(),
                &reference.search(&q, 12).unwrap(),
                &format!("{label}: search"),
            );
        }
        let probe = [123.0f32, -45.0];
        assert_eq!(
            recovered.insert_shared(&probe).unwrap(),
            reference.insert_shared(&probe).unwrap(),
            "{label}: id allocator diverged"
        );
    }

    #[test]
    fn wal_recovery_is_bit_identical_to_the_surviving_op_history() {
        let dir = wal_dir("roundtrip");
        // The reference fleet sees the same ops but never crashes.
        let reference = ShardedIndex::from_monolith(
            MiniIndex::new(grid_rows(40)),
            4,
            ShardRouter::Hash { seed: 5 },
        )
        .unwrap();
        let durable = ShardedIndex::from_monolith(
            MiniIndex::new(grid_rows(40)),
            4,
            ShardRouter::Hash { seed: 5 },
        )
        .unwrap();
        let report = durable
            .enable_wal(&dir, DurabilityConfig::default())
            .unwrap();
        assert_eq!(report.covered_lsn, 0, "baseline checkpoint covers nothing");
        assert!(durable.wal_enabled());

        for i in 0..25 {
            let v = [i as f32 * 0.31, (i % 7) as f32];
            assert_eq!(
                durable.insert_shared(&v).unwrap(),
                reference.insert_shared(&v).unwrap()
            );
        }
        for id in [3u64, 41, 44, 9_999] {
            assert_eq!(
                durable.remove_shared(id).unwrap(),
                reference.remove_shared(id).unwrap()
            );
        }
        durable.compact_all_shared().unwrap();
        reference.compact_all_shared().unwrap();
        let batch =
            VectorSet::from_rows(vec![vec![50.0, 1.0], vec![51.0, 2.0], vec![52.0, 3.0]]).unwrap();
        assert_eq!(
            durable.insert_batch_shared(&batch).unwrap(),
            reference.insert_batch_shared(&batch).unwrap()
        );
        // Baseline Checkpoint record + 25 + 3 inserts + 3 live removes
        // + 1 compact = 33 records.
        assert_eq!(durable.wal_last_lsn(), Some(33));

        // "Crash": drop the fleet without checkpointing, recover from disk.
        drop(durable);
        let (recovered, report) = ShardedIndex::recover_from_dir(
            MiniIndex::new(vec![vec![0.0, 0.0]]),
            &dir,
            DurabilityConfig::default(),
        )
        .unwrap();
        assert_eq!(report.checkpoint_lsn, 0);
        assert_eq!(report.last_lsn, 33);
        assert_eq!(report.replayed_ops, 32, "checkpoint marker is not an op");
        assert_eq!(report.skipped_aborted, 0);
        assert_eq!(report.checkpoints_tried, 1);
        assert!(recovered.wal_enabled(), "recovery re-attaches the WAL");
        assert_fleet_equivalent(&recovered, &reference, "no-checkpoint recovery");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_prunes_covered_segments_and_recovery_replays_the_suffix() {
        let dir = wal_dir("ckpt");
        let reference =
            ShardedIndex::from_monolith(MiniIndex::new(grid_rows(30)), 2, ShardRouter::Modulo)
                .unwrap();
        let durable =
            ShardedIndex::from_monolith(MiniIndex::new(grid_rows(30)), 2, ShardRouter::Modulo)
                .unwrap();
        // Tiny segments force rotation so the checkpoint has sealed
        // segments to prune.
        durable
            .enable_wal(
                &dir,
                DurabilityConfig {
                    wal: WalOptions {
                        policy: FsyncPolicy::Always,
                        segment_bytes: 256,
                    },
                    keep_checkpoints: 2,
                },
            )
            .unwrap();
        for i in 0..12 {
            let v = [i as f32, 1.0];
            durable.insert_shared(&v).unwrap();
            reference.insert_shared(&v).unwrap();
        }
        let report = durable.checkpoint().unwrap();
        // Baseline Checkpoint record (LSN 1) + 12 inserts.
        assert_eq!(report.covered_lsn, 13);
        assert!(report.pruned_segments > 0, "tiny segments should rotate");

        for i in 12..18 {
            let v = [i as f32, 2.0];
            durable.insert_shared(&v).unwrap();
            reference.insert_shared(&v).unwrap();
        }
        durable.remove_shared(2).unwrap();
        reference.remove_shared(2).unwrap();

        drop(durable);
        let (recovered, report) = ShardedIndex::recover_from_dir(
            MiniIndex::new(vec![vec![0.0, 0.0]]),
            &dir,
            DurabilityConfig::default(),
        )
        .unwrap();
        // The mid-test Checkpoint record itself occupies LSN 14; the
        // replayed suffix = 6 inserts + 1 remove.
        assert_eq!(report.checkpoint_lsn, 13);
        assert_eq!(report.replayed_ops, 7);
        assert_fleet_equivalent(&recovered, &reference, "checkpoint + suffix");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rolled_back_writes_are_aborted_on_the_log_and_skipped_by_replay() {
        let dir = wal_dir("abort");
        let reference = four_shard_fleet(40);
        let durable = four_shard_fleet(40);
        durable
            .enable_wal(&dir, DurabilityConfig::default())
            .unwrap();
        for i in 0..6 {
            let v = [i as f32, 0.5];
            durable.insert_shared(&v).unwrap();
            reference.insert_shared(&v).unwrap();
        }
        // A publish fault *after* the WAL append: the op is on the log but
        // was never acknowledged, and the fleet rolled back. The Abort
        // record must keep replay (and the id allocator) in lockstep with
        // the rolled-back reference.
        let plan =
            Arc::new(FaultPlan::new(4).with_rule(first_n(2, FaultOp::Publish, 1, FaultKind::Fail)));
        durable.set_fault_plan(Some(plan));
        let batch = VectorSet::from_rows(vec![vec![90.0, 90.0], vec![91.0, 91.0]]).unwrap();
        assert!(durable.insert_batch_shared(&batch).is_err());
        durable.set_fault_plan(None);

        // Both sides continue with identical acknowledged histories.
        for i in 6..10 {
            let v = [i as f32, 0.25];
            assert_eq!(
                durable.insert_shared(&v).unwrap(),
                reference.insert_shared(&v).unwrap(),
                "post-rollback id lockstep"
            );
        }
        drop(durable);
        let (recovered, report) = ShardedIndex::recover_from_dir(
            MiniIndex::new(vec![vec![0.0, 0.0]]),
            &dir,
            DurabilityConfig::default(),
        )
        .unwrap();
        assert_eq!(report.skipped_aborted, 2, "the aborted batch is skipped");
        assert_fleet_equivalent(&recovered, &reference, "abort-aware replay");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durability_misuse_is_rejected_cleanly() {
        let dir = wal_dir("misuse");
        let fleet = four_shard_fleet(20);
        // Checkpoint without a WAL.
        assert!(matches!(fleet.checkpoint(), Err(Error::InvalidConfig(_))));
        fleet.enable_wal(&dir, DurabilityConfig::default()).unwrap();
        // Double attach.
        assert!(matches!(
            fleet.enable_wal(&dir, DurabilityConfig::default()),
            Err(Error::InvalidConfig(_))
        ));
        // Recovering from a directory that is not a durability dir.
        let empty = wal_dir("misuse_empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(matches!(
            ShardedIndex::recover_from_dir(
                MiniIndex::new(vec![vec![0.0, 0.0]]),
                &empty,
                DurabilityConfig::default(),
            ),
            Err(Error::Io(_))
        ));
        // restore_from_bytes detaches the WAL (the log no longer describes
        // the fleet's history).
        let mut fleet = fleet;
        let bytes = fleet.to_snapshot_bytes().unwrap();
        fleet.restore_from_bytes(&bytes).unwrap();
        assert!(!fleet.wal_enabled(), "restore must detach the WAL");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&empty);
    }

    #[test]
    fn server_passthroughs_log_durably_and_merge_wal_metrics() {
        let dir = wal_dir("server");
        let fleet = Arc::new(four_shard_fleet(30));
        fleet.enable_wal(&dir, DurabilityConfig::default()).unwrap();
        let server = Server::spawn(fleet.clone(), ServerConfig::default()).unwrap();
        let id = server.insert(&[7.5, 7.5]).unwrap();
        assert!(server.remove(id).unwrap());
        server.query(&[1.0, 1.0], 3).unwrap();
        let report = server.checkpoint().unwrap();
        // Baseline Checkpoint record + insert + remove.
        assert_eq!(report.covered_lsn, 3, "insert + remove were logged");
        let snap = server.metrics_snapshot();
        assert_eq!(snap.counter("wal.records"), 4, "2 ckpts + 2 mutations");
        assert!(snap.histograms.contains_key("wal.append_ns"));
        assert!(snap.histograms.contains_key("serve.latency_ns"));
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
