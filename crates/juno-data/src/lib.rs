//! Dataset substrate for the JUNO reproduction.
//!
//! The paper evaluates on SIFT1M/100M, DEEP1M/100M and TTI1M. Those datasets
//! are not redistributable inside this repository, so this crate provides:
//!
//! * [`synthetic`] — deterministic clustered Gaussian-mixture generators that
//!   reproduce the structural properties JUNO exploits (clusterability →
//!   codebook sparsity and spatial locality);
//! * [`profiles`] — named dataset profiles matching the dimensionality and
//!   metric of the paper's datasets (SIFT-like 128-d L2, DEEP-like 96-d L2,
//!   TTI-like 200-d inner product), at configurable scale;
//! * [`io`] — readers/writers for the standard `fvecs` / `ivecs` formats, so
//!   the real datasets can be dropped in when available;
//! * [`snapshot`] — the versioned, checksummed little-endian container format
//!   engines persist their state in (save/load instead of rebuild);
//! * [`attention`] — a synthetic multi-head-attention workload standing in
//!   for the Llama-7B experiment of Fig. 15.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attention;
pub mod io;
pub mod profiles;
pub mod snapshot;
pub mod synthetic;

pub use profiles::{Dataset, DatasetProfile};
pub use synthetic::{generate_clustered, ClusteredSpec};
