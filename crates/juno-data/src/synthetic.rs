//! Clustered Gaussian-mixture generators.
//!
//! Real embedding datasets (SIFT, DEEP, TTI) are strongly clustered, which is
//! precisely the structure IVFPQ exploits and the source of the sparsity and
//! spatial locality JUNO identifies. The generator here draws cluster centres
//! uniformly in a hypercube and points from isotropic Gaussians around them,
//! with per-cluster populations following a mild power law so that cluster
//! sizes are imbalanced like real data.

use juno_common::error::{Error, Result};
use juno_common::rng::Rng;
use juno_common::rng::{normal, seeded};
use juno_common::vector::VectorSet;

/// Specification of a clustered synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteredSpec {
    /// Number of search points to generate.
    pub num_points: usize,
    /// Number of queries to generate (drawn from the same mixture).
    pub num_queries: usize,
    /// Vector dimension.
    pub dim: usize,
    /// Number of mixture components.
    pub num_clusters: usize,
    /// Half-width of the hypercube cluster centres are drawn from.
    pub center_range: f32,
    /// Standard deviation of points around their cluster centre.
    pub cluster_std: f32,
    /// Power-law exponent for cluster populations (0 = uniform sizes).
    pub imbalance: f32,
    /// Seed for reproducibility.
    pub seed: u64,
}

impl Default for ClusteredSpec {
    fn default() -> Self {
        Self {
            num_points: 10_000,
            num_queries: 100,
            dim: 32,
            num_clusters: 64,
            center_range: 10.0,
            cluster_std: 1.0,
            imbalance: 1.0,
            seed: 0xDA7A,
        }
    }
}

/// A generated dataset: search points plus queries drawn from the same
/// distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedData {
    /// The search points.
    pub points: VectorSet,
    /// The query points.
    pub queries: VectorSet,
    /// The ground-truth mixture component of every search point (useful for
    /// diagnostics; indexes do not see it).
    pub point_clusters: Vec<usize>,
}

/// Generates a clustered dataset according to `spec`.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] for zero dimensions, clusters or points.
pub fn generate_clustered(spec: &ClusteredSpec) -> Result<GeneratedData> {
    if spec.dim == 0 {
        return Err(Error::invalid_config("dim must be positive"));
    }
    if spec.num_clusters == 0 {
        return Err(Error::invalid_config("num_clusters must be positive"));
    }
    if spec.num_points == 0 {
        return Err(Error::invalid_config("num_points must be positive"));
    }
    let mut rng = seeded(spec.seed);

    // Cluster centres.
    let mut centers = Vec::with_capacity(spec.num_clusters * spec.dim);
    for _ in 0..spec.num_clusters * spec.dim {
        centers.push(rng.gen_range(-spec.center_range..=spec.center_range));
    }

    // Power-law population weights.
    let weights: Vec<f64> = (0..spec.num_clusters)
        .map(|i| 1.0 / ((i + 1) as f64).powf(spec.imbalance as f64))
        .collect();
    let total_w: f64 = weights.iter().sum();

    let mut point_clusters = Vec::with_capacity(spec.num_points);
    let mut points = Vec::with_capacity(spec.num_points * spec.dim);
    for _ in 0..spec.num_points {
        let c = sample_weighted(&mut rng, &weights, total_w);
        point_clusters.push(c);
        let center = &centers[c * spec.dim..(c + 1) * spec.dim];
        for &m in center {
            points.push(normal(&mut rng, m, spec.cluster_std));
        }
    }

    let mut queries = Vec::with_capacity(spec.num_queries * spec.dim);
    for _ in 0..spec.num_queries {
        let c = sample_weighted(&mut rng, &weights, total_w);
        let center = &centers[c * spec.dim..(c + 1) * spec.dim];
        for &m in center {
            queries.push(normal(&mut rng, m, spec.cluster_std));
        }
    }

    Ok(GeneratedData {
        points: VectorSet::from_flat(points, spec.dim)?,
        queries: VectorSet::from_flat(queries, spec.dim.max(1))?,
        point_clusters,
    })
}

fn sample_weighted<R: Rng>(rng: &mut R, weights: &[f64], total: f64) -> usize {
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use juno_common::metric::l2_squared;

    #[test]
    fn shapes_match_spec() {
        let spec = ClusteredSpec {
            num_points: 500,
            num_queries: 20,
            dim: 16,
            num_clusters: 8,
            ..ClusteredSpec::default()
        };
        let data = generate_clustered(&spec).unwrap();
        assert_eq!(data.points.len(), 500);
        assert_eq!(data.points.dim(), 16);
        assert_eq!(data.queries.len(), 20);
        assert_eq!(data.queries.dim(), 16);
        assert_eq!(data.point_clusters.len(), 500);
        assert!(data.point_clusters.iter().all(|&c| c < 8));
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = ClusteredSpec {
            num_points: 200,
            ..ClusteredSpec::default()
        };
        let a = generate_clustered(&spec).unwrap();
        let b = generate_clustered(&spec).unwrap();
        assert_eq!(a.points, b.points);
        assert_eq!(a.queries, b.queries);
        let other = generate_clustered(&ClusteredSpec {
            seed: 999,
            num_points: 200,
            ..ClusteredSpec::default()
        })
        .unwrap();
        assert_ne!(a.points, other.points);
    }

    #[test]
    fn points_are_clustered_not_uniform() {
        // Within-cluster distances should be far smaller than the typical
        // between-cluster distance.
        let spec = ClusteredSpec {
            num_points: 1_000,
            num_queries: 1,
            dim: 8,
            num_clusters: 10,
            center_range: 20.0,
            cluster_std: 0.5,
            ..ClusteredSpec::default()
        };
        let data = generate_clustered(&spec).unwrap();
        let mut within = Vec::new();
        let mut across = Vec::new();
        for i in 0..200 {
            for j in (i + 1)..200 {
                let d = l2_squared(data.points.row(i), data.points.row(j));
                if data.point_clusters[i] == data.point_clusters[j] {
                    within.push(d);
                } else {
                    across.push(d);
                }
            }
        }
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
        assert!(
            mean(&within) * 5.0 < mean(&across),
            "within {} across {}",
            mean(&within),
            mean(&across)
        );
    }

    #[test]
    fn imbalance_skews_cluster_sizes() {
        let balanced = generate_clustered(&ClusteredSpec {
            num_points: 2_000,
            imbalance: 0.0,
            ..ClusteredSpec::default()
        })
        .unwrap();
        let skewed = generate_clustered(&ClusteredSpec {
            num_points: 2_000,
            imbalance: 1.5,
            ..ClusteredSpec::default()
        })
        .unwrap();
        let count_max = |clusters: &[usize], k: usize| {
            let mut counts = vec![0usize; k];
            for &c in clusters {
                counts[c] += 1;
            }
            *counts.iter().max().unwrap()
        };
        assert!(count_max(&skewed.point_clusters, 64) > count_max(&balanced.point_clusters, 64));
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(generate_clustered(&ClusteredSpec {
            dim: 0,
            ..ClusteredSpec::default()
        })
        .is_err());
        assert!(generate_clustered(&ClusteredSpec {
            num_clusters: 0,
            ..ClusteredSpec::default()
        })
        .is_err());
        assert!(generate_clustered(&ClusteredSpec {
            num_points: 0,
            ..ClusteredSpec::default()
        })
        .is_err());
    }
}
