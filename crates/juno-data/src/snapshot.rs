//! The versioned JUNO snapshot container format.
//!
//! Engines persist their full state (coarse quantiser, codebooks, code
//! layout, calibration models, ...) so that a process restart loads an index
//! instead of rebuilding it. This module owns the *container*: a small,
//! strictly little-endian, checksummed section format. What goes inside each
//! section is decided by the engine crates (`juno-core::persist`,
//! `juno-baseline`), which keeps the dependency direction data → engines.
//!
//! # Layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"JUNOSNAP"
//! 8       4     container format version (u32, currently 1)
//! 12      4     engine kind (u32, e.g. b"JUNO" as a little-endian word)
//! 16      4     section count (u32)
//! then, per section:
//!         4     tag (four ASCII bytes, e.g. b"CONF")
//!         8     payload length in bytes (u64)
//!         4     FNV-1a checksum of the payload (u32)
//!         n     payload
//! ```
//!
//! All integers and floats are little-endian. Floats are stored via their
//! IEEE-754 bit patterns, so values (including NaN payloads) round-trip
//! bit-exactly — the basis of the "search results are bit-identical after
//! reload" guarantee.
//!
//! # Versioning / compatibility policy
//!
//! * The container version is bumped only when this framing changes; readers
//!   reject any version they do not know (no silent best-effort parsing).
//! * Sections are looked up by tag, so engines may *add* sections without a
//!   container bump; an engine bumps its own kind-specific layout by writing
//!   a version field inside its `CONF` section.
//! * Every read is bounds- and checksum-checked and returns
//!   [`Error::Corrupted`] on any mismatch — malformed snapshots must never
//!   panic, however they were truncated or bit-flipped.

use juno_common::error::{Error, Result};
use std::path::Path;

/// The 8-byte magic prefix of every snapshot.
pub const MAGIC: [u8; 8] = *b"JUNOSNAP";

/// The container format version this module writes and accepts.
pub const FORMAT_VERSION: u32 = 1;

/// Byte length of the container header (magic + version + kind + count).
pub const CONTAINER_HEADER_LEN: usize = 20;

/// Byte length of the per-section prefix (tag + payload length + checksum).
pub const SECTION_PREFIX_LEN: usize = 16;

/// Builds the `u32` engine-kind word from four ASCII bytes.
pub const fn kind(tag: [u8; 4]) -> u32 {
    u32::from_le_bytes(tag)
}

/// FNV-1a 32-bit checksum (in-tree; snapshots need tamper *detection*, not
/// cryptographic integrity).
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash = 0x811C_9DC5u32;
    for &b in bytes {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Word-wise FNV-1a: 64-bit state fed 8 input bytes per multiply, folded to
/// 32 bits. About an order of magnitude faster than the byte-serial
/// [`fnv1a`], at the same tamper-detection (not cryptographic) strength.
/// **Not interchangeable** with `fnv1a` — it exists for payloads whose
/// verification sits on the mapped-restore fast path, where the byte-serial
/// dependency chain would dominate an otherwise O(1) restore.
pub fn fnv1a_w64(bytes: &[u8]) -> u32 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        hash ^= u64::from_le_bytes(w.try_into().expect("chunks_exact(8) yields 8 bytes"));
        hash = hash.wrapping_mul(PRIME);
    }
    for &b in words.remainder() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    (hash ^ (hash >> 32)) as u32
}

fn corrupted(msg: impl std::fmt::Display) -> Error {
    Error::corrupted(format!("snapshot: {msg}"))
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Accumulates one section's payload with typed little-endian appends.
#[derive(Debug, Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    /// Creates an empty section payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its IEEE-754 bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_string(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `bool` slice (one byte per flag).
    pub fn put_bools(&mut self, vs: &[bool]) {
        self.put_u64(vs.len() as u64);
        self.buf.extend(vs.iter().map(|&b| b as u8));
    }

    /// Appends a length-prefixed `u8` slice.
    pub fn put_u8s(&mut self, vs: &[u8]) {
        self.put_u64(vs.len() as u64);
        self.buf.extend_from_slice(vs);
    }

    /// Appends raw bytes verbatim (no length prefix) — container surgery
    /// such as re-encoding one section of an existing snapshot.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Current payload length in bytes — what writers computing absolute
    /// file offsets (e.g. for alignment-sensitive mapped sections) add up.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` when nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a length-prefixed `u16` slice.
    pub fn put_u16s(&mut self, vs: &[u16]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_u32s(&mut self, vs: &[u32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64s(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Appends a length-prefixed `f32` slice (bit patterns).
    pub fn put_f32s(&mut self, vs: &[f32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f32(v);
        }
    }

    /// Appends a length-prefixed `f64` slice (bit patterns).
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Appends a [`VectorSet`](juno_common::vector::VectorSet) as dimension +
    /// flat data.
    pub fn put_vector_set(&mut self, vs: &juno_common::vector::VectorSet) {
        self.put_u64(vs.dim() as u64);
        self.put_f32s(vs.as_flat());
    }

    /// Consumes the writer, yielding the payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Assembles a full snapshot from tagged sections.
#[derive(Debug)]
pub struct SnapshotWriter {
    kind: u32,
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl SnapshotWriter {
    /// Starts a snapshot for the given engine kind (see [`kind`]).
    pub fn new(kind: u32) -> Self {
        Self {
            kind,
            sections: Vec::new(),
        }
    }

    /// Adds one tagged section. Tags must be unique within a snapshot.
    pub fn add_section(&mut self, tag: [u8; 4], payload: SectionWriter) -> &mut Self {
        debug_assert!(
            self.sections.iter().all(|(t, _)| *t != tag),
            "duplicate snapshot section tag"
        );
        self.sections.push((tag, payload.finish()));
        self
    }

    /// Serialises header + sections into the final byte buffer.
    pub fn finish(self) -> Vec<u8> {
        let body: usize = self.sections.iter().map(|(_, p)| 16 + p.len()).sum();
        let mut out = Vec::with_capacity(20 + body);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (tag, payload) in &self.sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }
}

/// Writes snapshot bytes to a file through the crash-safe
/// [`atomic_file::write_atomic`](juno_common::atomic_file::write_atomic)
/// protocol (temp + fsync + rename, previous generation rotated to
/// `<path>.prev`).
///
/// Deprecated: call `write_atomic` directly — this wrapper survives only so
/// old call sites keep compiling, and no longer offers anything over it.
/// Before it delegated, a crash mid-write corrupted the only copy on disk,
/// which is why every save helper now routes through the atomic protocol.
///
/// # Errors
///
/// Returns [`Error::Io`] when the file cannot be written.
#[deprecated(note = "use juno_common::atomic_file::write_atomic directly")]
pub fn write_snapshot_file(path: impl AsRef<Path>, bytes: &[u8]) -> Result<()> {
    juno_common::atomic_file::write_atomic(path.as_ref(), bytes)
}

/// Reads snapshot bytes from a file.
///
/// Reads only the live generation at `path`; restore paths that want
/// torn-write recovery iterate
/// [`atomic_file::read_candidates`](juno_common::atomic_file::read_candidates)
/// instead, falling back to `<path>.prev` when the live file is missing or
/// fails validation.
///
/// # Errors
///
/// Returns [`Error::Io`] when the file cannot be read.
pub fn read_snapshot_file(path: impl AsRef<Path>) -> Result<Vec<u8>> {
    Ok(std::fs::read(path.as_ref())?)
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// A parsed snapshot: validated header plus checksummed sections, borrowed
/// from the input bytes.
#[derive(Debug)]
pub struct Snapshot<'a> {
    kind: u32,
    sections: Vec<([u8; 4], &'a [u8])>,
}

impl<'a> Snapshot<'a> {
    /// Parses and fully validates a snapshot: magic, version, section
    /// framing, checksums and tag uniqueness.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] for any malformed input; never panics.
    pub fn parse(bytes: &'a [u8]) -> Result<Self> {
        let mut cur = SectionReader { bytes };
        let magic = cur.take(8)?;
        if magic != MAGIC {
            return Err(corrupted("bad magic"));
        }
        let version = cur.get_u32()?;
        if version != FORMAT_VERSION {
            return Err(corrupted(format!(
                "unknown container version {version} (reader supports {FORMAT_VERSION})"
            )));
        }
        let kind = cur.get_u32()?;
        let count = cur.get_u32()? as usize;
        let mut sections: Vec<([u8; 4], &[u8])> = Vec::new();
        for _ in 0..count {
            let tag: [u8; 4] = cur.take(4)?.try_into().expect("take(4) yields 4 bytes");
            let len = usize::try_from(cur.get_u64()?)
                .map_err(|_| corrupted("section length exceeds address space"))?;
            let checksum = cur.get_u32()?;
            let payload = cur.take(len)?;
            if fnv1a(payload) != checksum {
                return Err(corrupted(format!(
                    "checksum mismatch in section {:?}",
                    String::from_utf8_lossy(&tag)
                )));
            }
            sections.push((tag, payload));
        }
        if !cur.bytes.is_empty() {
            return Err(corrupted("trailing bytes after final section"));
        }
        // Sort the table once so lookups are O(log n) and duplicates become
        // adjacent — with per-cluster section tables (out-of-core layout) a
        // linear `any()` per insert is O(n²) in the section count.
        sections.sort_unstable_by_key(|&(tag, _)| tag);
        if sections.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(corrupted("duplicate section tag"));
        }
        Ok(Self { kind, sections })
    }

    /// The engine kind stored in the header.
    pub fn kind(&self) -> u32 {
        self.kind
    }

    /// Number of sections.
    pub fn num_sections(&self) -> usize {
        self.sections.len()
    }

    /// Opens the section with the given tag for reading (binary search over
    /// the tag-sorted table built by [`Snapshot::parse`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] when the section is absent.
    pub fn section(&self, tag: [u8; 4]) -> Result<SectionReader<'a>> {
        self.sections
            .binary_search_by_key(&tag, |&(t, _)| t)
            .map(|i| SectionReader {
                bytes: self.sections[i].1,
            })
            .map_err(|_| {
                corrupted(format!(
                    "missing section {:?}",
                    String::from_utf8_lossy(&tag)
                ))
            })
    }

    /// Whether a section with the given tag is present — lets decoders
    /// branch on optional sections without treating absence as corruption.
    pub fn has_section(&self, tag: [u8; 4]) -> bool {
        self.sections
            .binary_search_by_key(&tag, |&(t, _)| t)
            .is_ok()
    }
}

/// A snapshot parsed *in place* over a shared [`Mmap`] region — the
/// zero-copy twin of [`Snapshot::parse`].
///
/// [`Snapshot::parse`] checksums every payload, which touches every byte
/// and would fault the whole file into memory — the opposite of what an
/// out-of-core restore wants. `MappedSnapshot` walks the same framing and
/// validates the header, section table, bounds and tag uniqueness, but
/// checksums only the sections its `is_lazy` predicate rejects. Lazy
/// sections (the big CODE/LAYT payloads, fleet shard sections) record their
/// absolute payload range and expected checksum instead; their consumers
/// either carry finer-grained per-cluster checksums verified on first touch
/// or call [`MappedSnapshot::verify_section`] before copying.
#[derive(Debug)]
pub struct MappedSnapshot {
    map: std::sync::Arc<juno_common::mmap::Mmap>,
    kind: u32,
    /// `(tag, absolute payload offset, payload length, stored checksum)`,
    /// sorted by tag.
    sections: Vec<([u8; 4], usize, usize, u32)>,
}

impl MappedSnapshot {
    /// Parses the snapshot container at `map[off..off + len]`, checksumming
    /// every section except those `is_lazy` claims.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] for any malformed framing, out-of-range
    /// section, duplicate tag or eager-section checksum mismatch.
    pub fn parse(
        map: std::sync::Arc<juno_common::mmap::Mmap>,
        off: usize,
        len: usize,
        is_lazy: impl Fn(&[u8; 4]) -> bool,
    ) -> Result<Self> {
        let end = off
            .checked_add(len)
            .filter(|&e| e <= map.len())
            .ok_or_else(|| corrupted("snapshot range exceeds the mapped file"))?;
        let bytes = &map.as_slice()[off..end];
        let mut cur = SectionReader { bytes };
        if cur.take(8)? != MAGIC {
            return Err(corrupted("bad magic"));
        }
        let version = cur.get_u32()?;
        if version != FORMAT_VERSION {
            return Err(corrupted(format!(
                "unknown container version {version} (reader supports {FORMAT_VERSION})"
            )));
        }
        let kind = cur.get_u32()?;
        let count = cur.get_u32()? as usize;
        let mut sections: Vec<([u8; 4], usize, usize, u32)> = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let tag: [u8; 4] = cur.take(4)?.try_into().expect("take(4) yields 4 bytes");
            let sec_len = usize::try_from(cur.get_u64()?)
                .map_err(|_| corrupted("section length exceeds address space"))?;
            let checksum = cur.get_u32()?;
            // The payload's absolute offset is recoverable from how much of
            // `bytes` the cursor has consumed so far.
            let consumed = bytes.len() - cur.bytes.len();
            let payload = cur.take(sec_len)?;
            if !is_lazy(&tag) && fnv1a(payload) != checksum {
                return Err(corrupted(format!(
                    "checksum mismatch in section {:?}",
                    String::from_utf8_lossy(&tag)
                )));
            }
            sections.push((tag, off + consumed, sec_len, checksum));
        }
        if !cur.bytes.is_empty() {
            return Err(corrupted("trailing bytes after final section"));
        }
        sections.sort_unstable_by_key(|&(tag, ..)| tag);
        if sections.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(corrupted("duplicate section tag"));
        }
        Ok(Self {
            map,
            kind,
            sections,
        })
    }

    /// The engine kind stored in the header.
    pub fn kind(&self) -> u32 {
        self.kind
    }

    /// Number of sections.
    pub fn num_sections(&self) -> usize {
        self.sections.len()
    }

    /// The shared mapping this snapshot was parsed from.
    pub fn map(&self) -> &std::sync::Arc<juno_common::mmap::Mmap> {
        &self.map
    }

    /// Tags of all sections, sorted.
    pub fn tags(&self) -> impl Iterator<Item = [u8; 4]> + '_ {
        self.sections.iter().map(|&(tag, ..)| tag)
    }

    fn entry(&self, tag: [u8; 4]) -> Result<&([u8; 4], usize, usize, u32)> {
        self.sections
            .binary_search_by_key(&tag, |&(t, ..)| t)
            .map(|i| &self.sections[i])
            .map_err(|_| {
                corrupted(format!(
                    "missing section {:?}",
                    String::from_utf8_lossy(&tag)
                ))
            })
    }

    /// The absolute `(offset, length)` of a section's payload within the
    /// mapping — what the zero-copy decoders slice their views from.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] when the section is absent.
    pub fn section_range(&self, tag: [u8; 4]) -> Result<(usize, usize)> {
        self.entry(tag).map(|&(_, off, len, _)| (off, len))
    }

    /// Whether a section with the given tag is present — the mapped twin of
    /// [`Snapshot::has_section`].
    pub fn has_section(&self, tag: [u8; 4]) -> bool {
        self.entry(tag).is_ok()
    }

    /// Opens a section for cursor-based reading, borrowing from the mapping
    /// (no copy; reading faults pages in as it goes).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] when the section is absent.
    pub fn section_reader(&self, tag: [u8; 4]) -> Result<SectionReader<'_>> {
        let &(_, off, len, _) = self.entry(tag)?;
        Ok(SectionReader {
            bytes: &self.map.as_slice()[off..off + len],
        })
    }

    /// Checksums a (lazy) section in full — the copy-path fallback uses
    /// this before deserializing a section it will not verify lazily.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] when the section is absent or its
    /// checksum does not match.
    pub fn verify_section(&self, tag: [u8; 4]) -> Result<()> {
        let &(_, off, len, checksum) = self.entry(tag)?;
        if fnv1a(&self.map.as_slice()[off..off + len]) != checksum {
            return Err(corrupted(format!(
                "checksum mismatch in section {:?}",
                String::from_utf8_lossy(&tag)
            )));
        }
        Ok(())
    }
}

/// A bounds-checked little-endian cursor over one section's payload. Every
/// accessor returns [`Error::Corrupted`] instead of panicking when the
/// payload is too short.
#[derive(Debug, Clone)]
pub struct SectionReader<'a> {
    bytes: &'a [u8],
}

impl<'a> SectionReader<'a> {
    /// Opens a cursor over raw payload bytes the caller already framed and
    /// verified — e.g. the body of a sentinel-versioned section after its
    /// own header and checksum have been peeled off.
    pub fn over(bytes: &'a [u8]) -> Self {
        Self { bytes }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() < n {
            return Err(corrupted(format!(
                "truncated: wanted {n} bytes, {} remain",
                self.bytes.len()
            )));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len()
    }

    /// Fails unless the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] when bytes remain.
    pub fn expect_end(&self) -> Result<()> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(corrupted(format!(
                "{} unread trailing bytes in section",
                self.bytes.len()
            )))
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupted`] on truncation (same for all getters).
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// See [`SectionReader::get_u8`].
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("take(4) yields 4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`SectionReader::get_u8`].
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("take(8) yields 8 bytes"),
        ))
    }

    /// Reads a `u64` and converts it to `usize`.
    ///
    /// # Errors
    ///
    /// See [`SectionReader::get_u8`]; also fails when the value exceeds the
    /// address space.
    pub fn get_usize(&mut self) -> Result<usize> {
        usize::try_from(self.get_u64()?).map_err(|_| corrupted("count exceeds address space"))
    }

    /// Reads an `f32` bit pattern.
    ///
    /// # Errors
    ///
    /// See [`SectionReader::get_u8`].
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// See [`SectionReader::get_u8`].
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// The length prefix of a slice, validated against the element size and
    /// the remaining payload so huge corrupt counts cannot trigger massive
    /// allocations.
    fn slice_len(&mut self, elem_size: usize) -> Result<usize> {
        let n = self.get_usize()?;
        let total = n
            .checked_mul(elem_size)
            .ok_or_else(|| corrupted("slice length overflows"))?;
        if total > self.bytes.len() {
            return Err(corrupted(format!(
                "truncated slice: {total} bytes declared, {} remain",
                self.bytes.len()
            )));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Fails on truncation or invalid UTF-8.
    pub fn get_string(&mut self) -> Result<String> {
        let n = self.slice_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupted("invalid UTF-8 string"))
    }

    /// Reads a length-prefixed `bool` slice.
    ///
    /// # Errors
    ///
    /// Fails on truncation or a flag byte other than 0/1.
    pub fn get_bools(&mut self) -> Result<Vec<bool>> {
        let n = self.slice_len(1)?;
        let bytes = self.take(n)?;
        bytes
            .iter()
            .map(|&b| match b {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(corrupted("invalid boolean byte")),
            })
            .collect()
    }

    /// Reads a length-prefixed `u8` slice.
    ///
    /// # Errors
    ///
    /// See [`SectionReader::get_u8`].
    pub fn get_u8s(&mut self) -> Result<Vec<u8>> {
        let n = self.slice_len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Takes every byte not yet consumed (container surgery — copying a
    /// section payload verbatim).
    pub fn take_rest(&mut self) -> &'a [u8] {
        self.take(self.bytes.len()).expect("length is exact")
    }

    /// Reads a length-prefixed `u16` slice.
    ///
    /// # Errors
    ///
    /// See [`SectionReader::get_u8`].
    pub fn get_u16s(&mut self) -> Result<Vec<u16>> {
        let n = self.slice_len(2)?;
        let bytes = self.take(n * 2)?;
        Ok(bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes(c.try_into().expect("chunks_exact(2)")))
            .collect())
    }

    /// Reads a length-prefixed `u32` slice.
    ///
    /// # Errors
    ///
    /// See [`SectionReader::get_u8`].
    pub fn get_u32s(&mut self) -> Result<Vec<u32>> {
        let n = self.slice_len(4)?;
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact(4)")))
            .collect())
    }

    /// Reads a length-prefixed `u64` slice.
    ///
    /// # Errors
    ///
    /// See [`SectionReader::get_u8`].
    pub fn get_u64s(&mut self) -> Result<Vec<u64>> {
        let n = self.slice_len(8)?;
        let bytes = self.take(n * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect())
    }

    /// Reads a length-prefixed `f32` slice (bit patterns).
    ///
    /// # Errors
    ///
    /// See [`SectionReader::get_u8`].
    pub fn get_f32s(&mut self) -> Result<Vec<f32>> {
        Ok(self.get_u32s()?.into_iter().map(f32::from_bits).collect())
    }

    /// Reads a length-prefixed `f64` slice (bit patterns).
    ///
    /// # Errors
    ///
    /// See [`SectionReader::get_u8`].
    pub fn get_f64s(&mut self) -> Result<Vec<f64>> {
        Ok(self.get_u64s()?.into_iter().map(f64::from_bits).collect())
    }

    /// Reads a [`VectorSet`](juno_common::vector::VectorSet) written by
    /// [`SectionWriter::put_vector_set`].
    ///
    /// # Errors
    ///
    /// Fails on truncation or an invalid dimension / buffer shape.
    pub fn get_vector_set(&mut self) -> Result<juno_common::vector::VectorSet> {
        let dim = self.get_usize()?;
        let data = self.get_f32s()?;
        juno_common::vector::VectorSet::from_flat(data, dim)
            .map_err(|e| corrupted(format!("invalid vector set: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use juno_common::rng::{seeded, Rng};
    use juno_common::vector::VectorSet;

    const K: u32 = kind(*b"TEST");

    fn sample_snapshot() -> Vec<u8> {
        let mut a = SectionWriter::new();
        a.put_u8(7);
        a.put_u32(0xDEAD_BEEF);
        a.put_u64(1 << 40);
        a.put_f32(-1.5);
        a.put_f64(std::f64::consts::PI);
        a.put_string("hello snapshot");
        let mut b = SectionWriter::new();
        b.put_bools(&[true, false, true]);
        b.put_u8s(&[9, 0, 255]);
        b.put_u16s(&[1, 2, 65535]);
        b.put_u32s(&[10, 20]);
        b.put_u64s(&[u64::MAX]);
        b.put_f32s(&[0.25, f32::NAN]);
        b.put_f64s(&[-0.125]);
        b.put_vector_set(&VectorSet::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap());
        let mut w = SnapshotWriter::new(K);
        w.add_section(*b"AAAA", a);
        w.add_section(*b"BBBB", b);
        w.finish()
    }

    #[test]
    fn mapped_parse_matches_copy_parse() {
        let bytes = sample_snapshot();
        let map = juno_common::mmap::Mmap::from_bytes(bytes.clone());
        let snap = MappedSnapshot::parse(map, 0, bytes.len(), |_| false).unwrap();
        assert_eq!(snap.kind(), K);
        assert_eq!(snap.num_sections(), 2);
        let mut a = snap.section_reader(*b"AAAA").unwrap();
        assert_eq!(a.get_u8().unwrap(), 7);
        assert_eq!(a.get_u32().unwrap(), 0xDEAD_BEEF);
        let (off, len) = snap.section_range(*b"BBBB").unwrap();
        assert!(off > 0 && off + len <= bytes.len());
        assert!(snap.section_range(*b"ZZZZ").is_err());
    }

    #[test]
    fn mapped_parse_at_nonzero_offset() {
        // An engine snapshot embedded inside a larger file (a fleet
        // S-section) parses from its sub-range.
        let inner = sample_snapshot();
        let mut file = vec![0xABu8; 100];
        file.extend_from_slice(&inner);
        file.extend_from_slice(&[0xCD; 7]);
        let map = juno_common::mmap::Mmap::from_bytes(file);
        let snap = MappedSnapshot::parse(map, 100, inner.len(), |_| false).unwrap();
        assert_eq!(snap.kind(), K);
        let (off, _) = snap.section_range(*b"AAAA").unwrap();
        assert!(off >= 100 + 20, "absolute offset includes the base");
        // Ranges that spill outside the file are corruption, not a panic.
        let map2 = snap.map().clone();
        assert!(MappedSnapshot::parse(map2.clone(), 100, inner.len() + 8, |_| false).is_err());
        assert!(MappedSnapshot::parse(map2, usize::MAX, 8, |_| false).is_err());
    }

    #[test]
    fn lazy_sections_skip_checksum_until_verified() {
        let mut bytes = sample_snapshot();
        let cheap = Snapshot::parse(&bytes).unwrap();
        drop(cheap);
        // Flip one byte inside BBBB's payload (last byte of the file is
        // payload data of the final section).
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        // Eager parse rejects it…
        assert!(Snapshot::parse(&bytes).is_err());
        let map = juno_common::mmap::Mmap::from_bytes(bytes);
        // …mapped parse with BBBB lazy defers the check…
        let snap = MappedSnapshot::parse(map.clone(), 0, n, |tag| tag == b"BBBB").unwrap();
        // …and verify_section catches it on demand.
        assert!(snap.verify_section(*b"BBBB").is_err());
        assert!(snap.verify_section(*b"AAAA").is_ok());
        // With nothing lazy the parse itself rejects the flip.
        assert!(MappedSnapshot::parse(map, 0, n, |_| false).is_err());
    }

    #[test]
    fn mapped_parse_never_panics_on_truncation_or_garbage() {
        let bytes = sample_snapshot();
        for len in 0..bytes.len() {
            let map = juno_common::mmap::Mmap::from_bytes(bytes[..len].to_vec());
            assert!(
                MappedSnapshot::parse(map, 0, len, |_| true).is_err(),
                "truncation to {len} bytes must be rejected"
            );
        }
        let mut rng = 0x1234_5678_u64;
        for _ in 0..200 {
            let len = (rng % 256) as usize;
            let garbage: Vec<u8> = (0..len)
                .map(|_| {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (rng >> 33) as u8
                })
                .collect();
            let map = juno_common::mmap::Mmap::from_bytes(garbage);
            let _ = MappedSnapshot::parse(map, 0, len, |_| true);
        }
    }

    #[test]
    fn round_trip_preserves_every_type() {
        let bytes = sample_snapshot();
        let snap = Snapshot::parse(&bytes).unwrap();
        assert_eq!(snap.kind(), K);
        assert_eq!(snap.num_sections(), 2);

        let mut a = snap.section(*b"AAAA").unwrap();
        assert_eq!(a.get_u8().unwrap(), 7);
        assert_eq!(a.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(a.get_u64().unwrap(), 1 << 40);
        assert_eq!(a.get_f32().unwrap().to_bits(), (-1.5f32).to_bits());
        assert_eq!(
            a.get_f64().unwrap().to_bits(),
            std::f64::consts::PI.to_bits()
        );
        assert_eq!(a.get_string().unwrap(), "hello snapshot");
        a.expect_end().unwrap();

        let mut b = snap.section(*b"BBBB").unwrap();
        assert_eq!(b.get_bools().unwrap(), vec![true, false, true]);
        assert_eq!(b.get_u8s().unwrap(), vec![9, 0, 255]);
        assert_eq!(b.get_u16s().unwrap(), vec![1, 2, 65535]);
        assert_eq!(b.get_u32s().unwrap(), vec![10, 20]);
        assert_eq!(b.get_u64s().unwrap(), vec![u64::MAX]);
        let f32s = b.get_f32s().unwrap();
        assert_eq!(f32s[0], 0.25);
        assert!(f32s[1].is_nan(), "NaN bit patterns round-trip");
        assert_eq!(b.get_f64s().unwrap(), vec![-0.125]);
        let vs = b.get_vector_set().unwrap();
        assert_eq!(vs.row(1), &[3.0, 4.0]);
        b.expect_end().unwrap();

        assert!(snap.section(*b"ZZZZ").is_err());
    }

    #[test]
    fn raw_bytes_and_take_rest_support_container_surgery() {
        // Copy one section of an existing snapshot verbatim into a new
        // container (the tool the back-compat tests use to synthesise
        // legacy-format snapshots).
        let bytes = sample_snapshot();
        let snap = Snapshot::parse(&bytes).unwrap();
        let payload = snap.section(*b"AAAA").unwrap().take_rest().to_vec();
        let mut copied = SectionWriter::new();
        copied.put_raw(&payload);
        let mut w = SnapshotWriter::new(K);
        w.add_section(*b"AAAA", copied);
        let rebuilt = w.finish();
        let snap2 = Snapshot::parse(&rebuilt).unwrap();
        let mut a = snap2.section(*b"AAAA").unwrap();
        assert_eq!(a.get_u8().unwrap(), 7);
        assert_eq!(a.get_u32().unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    #[allow(deprecated)] // the wrapper must keep working until it is removed
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("juno_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("container.snap");
        let bytes = sample_snapshot();
        write_snapshot_file(&path, &bytes).unwrap();
        assert_eq!(read_snapshot_file(&path).unwrap(), bytes);
        std::fs::remove_file(&path).ok();
        assert!(read_snapshot_file("/nonexistent/juno.snap").is_err());
    }

    #[test]
    fn every_truncation_errors_not_panics() {
        let bytes = sample_snapshot();
        for len in 0..bytes.len() {
            let r = Snapshot::parse(&bytes[..len]);
            assert!(r.is_err(), "truncation to {len} bytes must be rejected");
        }
    }

    #[test]
    fn every_single_byte_flip_errors_or_fails_section_reads() {
        let bytes = sample_snapshot();
        // Flipping any byte must surface as Err somewhere on the read path —
        // never as a panic. (Header/framing flips fail parse(); payload flips
        // fail the checksum.)
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            let Ok(snap) = Snapshot::parse(&corrupt) else {
                continue;
            };
            // Parsing may survive flips only in uninterpreted identity bytes
            // (the engine kind word, a section tag); payloads are checksummed.
            // Any surviving flip must still be *detectable* by the caller.
            let detectable = snap.kind() != K
                || snap.section(*b"AAAA").is_err()
                || snap.section(*b"BBBB").is_err();
            assert!(detectable, "flip at {i} was undetectable");
        }
    }

    #[test]
    fn random_garbage_never_panics() {
        let mut rng = seeded(99);
        for _ in 0..200 {
            let len = rng.gen_range(0..300usize);
            let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256usize) as u8).collect();
            let _ = Snapshot::parse(&garbage); // must not panic
        }
        // Garbage with a valid prefix but absurd section lengths.
        let mut w = Vec::new();
        w.extend_from_slice(&MAGIC);
        w.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        w.extend_from_slice(&K.to_le_bytes());
        w.extend_from_slice(&1u32.to_le_bytes());
        w.extend_from_slice(b"HUGE");
        w.extend_from_slice(&u64::MAX.to_le_bytes());
        w.extend_from_slice(&0u32.to_le_bytes());
        assert!(Snapshot::parse(&w).is_err());
    }

    #[test]
    fn corrupt_counts_inside_sections_are_bounded() {
        // A section claiming a huge slice count must fail cleanly instead of
        // attempting a massive allocation.
        let mut w = SnapshotWriter::new(K);
        let mut s = SectionWriter::new();
        s.put_u64(u64::MAX); // an absurd element count
        w.add_section(*b"EVIL", s);
        let bytes = w.finish();
        let snap = Snapshot::parse(&bytes).unwrap();
        let mut r = snap.section(*b"EVIL").unwrap();
        assert!(r.get_u32s().is_err());
        let mut r2 = snap.section(*b"EVIL").unwrap();
        assert!(r2.get_string().is_err());
        let mut r3 = snap.section(*b"EVIL").unwrap();
        assert!(r3.get_vector_set().is_err());
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let bytes = sample_snapshot();
        let mut wrong_version = bytes.clone();
        wrong_version[8] = 99;
        assert!(matches!(
            Snapshot::parse(&wrong_version),
            Err(juno_common::error::Error::Corrupted(_))
        ));
        let mut wrong_magic = bytes;
        wrong_magic[0] = b'X';
        assert!(Snapshot::parse(&wrong_magic).is_err());
        assert_eq!(fnv1a(b""), 0x811C_9DC5);
    }
}
