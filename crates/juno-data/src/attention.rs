//! Synthetic LLM-attention workload (the Fig. 15 substitution).
//!
//! The paper verifies on Llama-7B that keeping only the top-k attended tokens
//! (found with MIPS between query and key vectors) barely hurts perplexity
//! until the retained fraction becomes very small. Running Llama-7B is out of
//! scope for this reproduction, so this module builds a synthetic multi-head
//! attention workload with the property that makes the experiment meaningful:
//! attention weights are *concentrated* — most of the softmax mass of a query
//! lives on a handful of keys — which is exactly the sparsity that lets an
//! ANN engine stand in for dense attention.
//!
//! Two quality measures are exposed:
//!
//! * [`AttentionWorkload::retained_mass`] — the softmax probability mass kept
//!   when only the top-`k` keys per query are attended;
//! * [`AttentionWorkload::pseudo_perplexity`] — `exp(average extra
//!   cross-entropy)` of the truncated attention distribution versus the full
//!   one, a perplexity-style proxy that is 1.0 for lossless truncation and
//!   grows as mass is dropped (the shape reported by Fig. 15).

use juno_common::error::{Error, Result};
use juno_common::metric::inner_product;
use juno_common::rng::Rng;
use juno_common::rng::{normal, seeded};
use juno_common::topk::largest_k_indices;
use juno_common::vector::VectorSet;

/// Configuration of the synthetic attention workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionSpec {
    /// Sequence length (number of key/value tokens).
    pub seq_len: usize,
    /// Number of query tokens to evaluate.
    pub num_queries: usize,
    /// Head dimension.
    pub head_dim: usize,
    /// Softmax temperature scale (larger → more concentrated attention).
    pub concentration: f32,
    /// Seed for reproducibility.
    pub seed: u64,
}

impl Default for AttentionSpec {
    fn default() -> Self {
        Self {
            seq_len: 2_048,
            num_queries: 64,
            head_dim: 64,
            concentration: 4.0,
            seed: 0xA77E,
        }
    }
}

/// A generated attention workload: query and key vectors of one head.
#[derive(Debug, Clone, PartialEq)]
pub struct AttentionWorkload {
    queries: VectorSet,
    keys: VectorSet,
    concentration: f32,
}

impl AttentionWorkload {
    /// Generates a workload according to `spec`.
    ///
    /// Queries are built by perturbing a small number of "anchor" keys so
    /// that each query genuinely attends strongly to a few tokens, as real
    /// transformer heads do.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for degenerate shapes.
    pub fn generate(spec: &AttentionSpec) -> Result<Self> {
        if spec.seq_len == 0 || spec.num_queries == 0 || spec.head_dim == 0 {
            return Err(Error::invalid_config(
                "attention workload requires positive seq_len, num_queries and head_dim",
            ));
        }
        let mut rng = seeded(spec.seed);
        let scale = 1.0 / (spec.head_dim as f32).sqrt();

        let mut keys = Vec::with_capacity(spec.seq_len * spec.head_dim);
        for _ in 0..spec.seq_len * spec.head_dim {
            keys.push(normal(&mut rng, 0.0, 1.0) * scale);
        }
        let keys = VectorSet::from_flat(keys, spec.head_dim)?;

        let mut queries = Vec::with_capacity(spec.num_queries * spec.head_dim);
        for _ in 0..spec.num_queries {
            // Anchor the query near 1–3 keys to concentrate its attention.
            let anchors = 1 + (rng.gen::<u32>() % 3) as usize;
            let mut q = vec![0.0f32; spec.head_dim];
            for _ in 0..anchors {
                let key = keys.row(rng.gen_range(0..spec.seq_len));
                for (qi, &ki) in q.iter_mut().zip(key.iter()) {
                    *qi += ki * spec.concentration;
                }
            }
            for qi in q.iter_mut() {
                *qi += normal(&mut rng, 0.0, 0.2) * scale;
            }
            queries.extend_from_slice(&q);
        }
        let queries = VectorSet::from_flat(queries, spec.head_dim)?;

        Ok(Self {
            queries,
            keys,
            concentration: spec.concentration,
        })
    }

    /// The query vectors (used as ANN queries under the inner-product metric).
    pub fn queries(&self) -> &VectorSet {
        &self.queries
    }

    /// The key vectors (used as ANN search points).
    pub fn keys(&self) -> &VectorSet {
        &self.keys
    }

    /// Sequence length.
    pub fn seq_len(&self) -> usize {
        self.keys.len()
    }

    /// Softmax attention distribution of one query over all keys.
    fn attention_row(&self, q: usize) -> Vec<f64> {
        let query = self.queries.row(q);
        let logits: Vec<f64> = self
            .keys
            .iter()
            .map(|k| inner_product(query, k) as f64)
            .collect();
        softmax(&logits)
    }

    /// Average softmax mass retained per query when only each query's top-`k`
    /// keys (by inner product — what a MIPS ANN search returns) are attended.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `k == 0`.
    pub fn retained_mass(&self, k: usize) -> Result<f64> {
        if k == 0 {
            return Err(Error::invalid_config("top-k must be positive"));
        }
        let k = k.min(self.seq_len());
        let mut total = 0.0;
        for q in 0..self.queries.len() {
            let probs = self.attention_row(q);
            let query = self.queries.row(q);
            let scores: Vec<f32> = self
                .keys
                .iter()
                .map(|key| inner_product(query, key))
                .collect();
            let kept = largest_k_indices(&scores, k);
            total += kept.iter().map(|&i| probs[i]).sum::<f64>();
        }
        Ok(total / self.queries.len() as f64)
    }

    /// A perplexity-style proxy: `exp` of the average extra cross-entropy the
    /// truncated attention pays versus full attention. Equals 1.0 when every
    /// query keeps all its mass and grows as mass is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when `k == 0`.
    pub fn pseudo_perplexity(&self, k: usize) -> Result<f64> {
        let mass = self.retained_mass(k)?.clamp(1e-9, 1.0);
        Ok((-mass.ln() + 1.0).exp() / std::f64::consts::E)
    }

    /// Sweeps a set of retained fractions and returns `(fraction, retained
    /// mass, pseudo-perplexity)` rows — the series plotted by Fig. 15.
    ///
    /// # Errors
    ///
    /// Propagates errors from the per-fraction evaluations.
    pub fn sweep(&self, fractions: &[f64]) -> Result<Vec<(f64, f64, f64)>> {
        let mut rows = Vec::with_capacity(fractions.len());
        for &f in fractions {
            let k = ((self.seq_len() as f64 * f).round() as usize).max(1);
            rows.push((f, self.retained_mass(k)?, self.pseudo_perplexity(k)?));
        }
        Ok(rows)
    }
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_workload() -> AttentionWorkload {
        AttentionWorkload::generate(&AttentionSpec {
            seq_len: 256,
            num_queries: 16,
            head_dim: 32,
            concentration: 6.0,
            seed: 3,
        })
        .unwrap()
    }

    #[test]
    fn shapes_follow_spec() {
        let w = small_workload();
        assert_eq!(w.seq_len(), 256);
        assert_eq!(w.queries().len(), 16);
        assert_eq!(w.keys().dim(), 32);
    }

    #[test]
    fn full_attention_retains_all_mass() {
        let w = small_workload();
        let mass = w.retained_mass(256).unwrap();
        assert!((mass - 1.0).abs() < 1e-9);
        assert!((w.pseudo_perplexity(256).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn attention_is_concentrated() {
        // Keeping 10 % of keys should retain the large majority of the mass —
        // the property Fig. 15 relies on.
        let w = small_workload();
        let mass = w.retained_mass(26).unwrap();
        assert!(mass > 0.7, "retained mass {mass} too small for top-10%");
    }

    #[test]
    fn retained_mass_is_monotone_in_k() {
        let w = small_workload();
        let mut last = 0.0;
        for k in [1, 4, 16, 64, 256] {
            let m = w.retained_mass(k).unwrap();
            assert!(m >= last - 1e-12, "mass decreased at k={k}");
            last = m;
        }
    }

    #[test]
    fn perplexity_rises_as_fraction_shrinks() {
        let w = small_workload();
        let rows = w.sweep(&[1.0, 0.5, 0.1, 0.02, 0.004]).unwrap();
        for pair in rows.windows(2) {
            assert!(
                pair[1].2 >= pair[0].2 - 1e-9,
                "perplexity must not drop as fraction shrinks"
            );
        }
        // Severe truncation must hurt noticeably more than mild truncation.
        assert!(rows.last().unwrap().2 > rows[0].2);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let w = small_workload();
        assert!(w.retained_mass(0).is_err());
        assert!(AttentionWorkload::generate(&AttentionSpec {
            seq_len: 0,
            ..AttentionSpec::default()
        })
        .is_err());
    }
}
