//! Readers and writers for the `fvecs` / `ivecs` formats.
//!
//! The TEXMEX / BIGANN datasets the paper uses (SIFT1M, DEEP1M, ...) are
//! distributed in these simple binary formats: every vector is stored as a
//! little-endian `u32` dimension followed by `dim` components (`f32` for
//! `fvecs`, `i32` for `ivecs`). Implementing them lets the benchmark harness
//! accept the real datasets when the user provides them, while falling back
//! to the synthetic profiles otherwise.

use juno_common::error::{Error, Result};
use juno_common::vector::VectorSet;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads an `fvecs` file into a [`VectorSet`].
///
/// # Errors
///
/// Returns an I/O error for unreadable files and
/// [`Error::InvalidConfig`] for malformed contents (inconsistent dimensions,
/// truncated records).
pub fn read_fvecs(path: impl AsRef<Path>) -> Result<VectorSet> {
    let mut reader = BufReader::new(File::open(path.as_ref())?);
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_fvecs(&bytes)
}

/// Parses `fvecs` content from a byte buffer.
///
/// # Errors
///
/// Same as [`read_fvecs`].
pub fn parse_fvecs(bytes: &[u8]) -> Result<VectorSet> {
    let mut cursor = LeCursor::new(bytes);
    let mut data = Vec::new();
    let mut dim: Option<usize> = None;
    while cursor.remaining() >= 4 {
        let d = cursor.get_u32_le() as usize;
        if d == 0 {
            return Err(Error::invalid_config("fvecs record with zero dimension"));
        }
        match dim {
            None => dim = Some(d),
            Some(expected) if expected != d => {
                return Err(Error::DimensionMismatch {
                    expected,
                    actual: d,
                })
            }
            _ => {}
        }
        if cursor.remaining() < d * 4 {
            return Err(Error::invalid_config("truncated fvecs record"));
        }
        for _ in 0..d {
            data.push(cursor.get_f32_le());
        }
    }
    if cursor.remaining() > 0 {
        return Err(Error::invalid_config("trailing bytes in fvecs content"));
    }
    let dim = dim.ok_or_else(|| Error::empty_input("fvecs content holds no vectors"))?;
    VectorSet::from_flat(data, dim)
}

/// A little-endian read cursor over a byte slice (in-tree replacement for the
/// `bytes::Buf` subset this module needs).
struct LeCursor<'a> {
    bytes: &'a [u8],
}

impl<'a> LeCursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes }
    }

    fn remaining(&self) -> usize {
        self.bytes.len()
    }

    /// Reads the next little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than four bytes remain (callers check `remaining`).
    fn get_u32_le(&mut self) -> u32 {
        let (head, tail) = self.bytes.split_at(4);
        self.bytes = tail;
        u32::from_le_bytes(head.try_into().expect("split_at(4) yields 4 bytes"))
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Appends a little-endian `u32` (in-tree replacement for `bytes::BufMut`).
fn put_u32_le(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `f32`.
fn put_f32_le(out: &mut Vec<u8>, v: f32) {
    put_u32_le(out, v.to_bits());
}

/// Writes a [`VectorSet`] as an `fvecs` file.
///
/// # Errors
///
/// Returns an I/O error if the file cannot be written.
pub fn write_fvecs(path: impl AsRef<Path>, vectors: &VectorSet) -> Result<()> {
    let mut writer = BufWriter::new(File::create(path.as_ref())?);
    let bytes = encode_fvecs(vectors);
    writer.write_all(&bytes)?;
    writer.flush()?;
    Ok(())
}

/// Encodes a [`VectorSet`] into `fvecs` bytes.
pub fn encode_fvecs(vectors: &VectorSet) -> Vec<u8> {
    let mut out = Vec::with_capacity(vectors.len() * (4 + vectors.dim() * 4));
    for row in vectors.iter() {
        put_u32_le(&mut out, vectors.dim() as u32);
        for &v in row {
            put_f32_le(&mut out, v);
        }
    }
    out
}

/// Reads an `ivecs` file (typically ground-truth neighbour ids).
///
/// # Errors
///
/// Same failure modes as [`read_fvecs`].
pub fn read_ivecs(path: impl AsRef<Path>) -> Result<Vec<Vec<u32>>> {
    let mut reader = BufReader::new(File::open(path.as_ref())?);
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    parse_ivecs(&bytes)
}

/// Parses `ivecs` content from a byte buffer.
///
/// # Errors
///
/// Same failure modes as [`parse_fvecs`].
pub fn parse_ivecs(bytes: &[u8]) -> Result<Vec<Vec<u32>>> {
    let mut cursor = LeCursor::new(bytes);
    let mut rows = Vec::new();
    while cursor.remaining() >= 4 {
        let d = cursor.get_u32_le() as usize;
        if cursor.remaining() < d * 4 {
            return Err(Error::invalid_config("truncated ivecs record"));
        }
        let mut row = Vec::with_capacity(d);
        for _ in 0..d {
            row.push(cursor.get_u32_le());
        }
        rows.push(row);
    }
    if cursor.remaining() > 0 {
        return Err(Error::invalid_config("trailing bytes in ivecs content"));
    }
    Ok(rows)
}

/// Encodes ground-truth rows into `ivecs` bytes.
pub fn encode_ivecs(rows: &[Vec<u32>]) -> Vec<u8> {
    let mut out = Vec::new();
    for row in rows {
        put_u32_le(&mut out, row.len() as u32);
        for &v in row {
            put_u32_le(&mut out, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fvecs_roundtrip_in_memory() {
        let vs = VectorSet::from_rows(vec![vec![1.0, -2.5, 3.25], vec![0.0, 0.5, 9.0]]).unwrap();
        let bytes = encode_fvecs(&vs);
        let parsed = parse_fvecs(&bytes).unwrap();
        assert_eq!(parsed, vs);
    }

    #[test]
    fn fvecs_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join("juno_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.fvecs");
        let vs =
            VectorSet::from_rows(vec![vec![4.0, 5.0], vec![6.0, 7.0], vec![8.0, 9.0]]).unwrap();
        write_fvecs(&path, &vs).unwrap();
        let back = read_fvecs(&path).unwrap();
        assert_eq!(back, vs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ivecs_roundtrip() {
        let rows = vec![vec![1u32, 5, 9], vec![2, 4], vec![]];
        let bytes = encode_ivecs(&rows);
        let parsed = parse_ivecs(&bytes).unwrap();
        assert_eq!(parsed, rows);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        // Truncated record.
        let mut bytes = Vec::new();
        put_u32_le(&mut bytes, 3);
        put_f32_le(&mut bytes, 1.0);
        assert!(parse_fvecs(&bytes).is_err());
        // Inconsistent dimension.
        let a = encode_fvecs(&VectorSet::from_rows(vec![vec![1.0, 2.0]]).unwrap());
        let b = encode_fvecs(&VectorSet::from_rows(vec![vec![1.0, 2.0, 3.0]]).unwrap());
        let mut cat = a.clone();
        cat.extend_from_slice(&b);
        assert!(parse_fvecs(&cat).is_err());
        // Zero dimension.
        let mut zero = Vec::new();
        put_u32_le(&mut zero, 0);
        assert!(parse_fvecs(&zero).is_err());
        // Empty content.
        assert!(parse_fvecs(&[]).is_err());
        // Missing file.
        assert!(read_fvecs("/nonexistent/juno.fvecs").is_err());
        // Truncated ivecs.
        let mut iv = Vec::new();
        put_u32_le(&mut iv, 2);
        put_u32_le(&mut iv, 7);
        assert!(parse_ivecs(&iv).is_err());
    }

    #[test]
    fn every_truncation_of_fvecs_errs_or_yields_a_prefix() {
        let vs = VectorSet::from_rows(vec![vec![1.0, 2.0, 3.0]; 4]).unwrap();
        let bytes = encode_fvecs(&vs);
        for len in 0..bytes.len() {
            // Must never panic: either a clean error, or (when the cut lands
            // exactly on a record boundary) a valid prefix of the records.
            if let Ok(prefix) = parse_fvecs(&bytes[..len]) {
                assert_eq!(len % 16, 0, "cut at {len} is not a record boundary");
                assert_eq!(prefix.len(), len / 16);
                assert_eq!(prefix.dim(), 3);
            }
        }
    }

    #[test]
    fn every_truncation_of_ivecs_errs_or_yields_a_prefix() {
        let rows = vec![vec![1u32, 2, 3], vec![4, 5, 6]];
        let bytes = encode_ivecs(&rows);
        for len in 0..bytes.len() {
            if let Ok(prefix) = parse_ivecs(&bytes[..len]) {
                assert!(prefix.len() <= rows.len());
            }
        }
    }

    #[test]
    fn random_corruption_never_panics() {
        use juno_common::rng::{seeded, Rng};
        let vs = VectorSet::from_rows(vec![vec![0.5, -0.5], vec![1.5, 2.5]]).unwrap();
        let clean = encode_fvecs(&vs);
        let mut rng = seeded(2026);
        for _ in 0..300 {
            let mut bytes = clean.clone();
            let flips = rng.gen_range(1..4usize);
            for _ in 0..flips {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] ^= 1 << rng.gen_range(0..8usize);
            }
            let _ = parse_fvecs(&bytes); // Err or Ok, never a panic
            let _ = parse_ivecs(&bytes);
        }
        // Pure garbage of every small length.
        for len in 0..64usize {
            let garbage: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(37)).collect();
            let _ = parse_fvecs(&garbage);
            let _ = parse_ivecs(&garbage);
        }
    }

    #[test]
    fn huge_declared_dimensions_fail_cleanly() {
        // A record header claiming u32::MAX elements must be rejected without
        // attempting to allocate or read terabytes.
        let mut bytes = Vec::new();
        put_u32_le(&mut bytes, u32::MAX);
        put_u32_le(&mut bytes, 1);
        assert!(parse_fvecs(&bytes).is_err());
        assert!(parse_ivecs(&bytes).is_err());
    }
}
