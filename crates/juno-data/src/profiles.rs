//! Named dataset profiles mirroring the paper's evaluation datasets.
//!
//! Each profile fixes the dimension, metric and clustering structure of one
//! of the paper's datasets and exposes a scale knob (number of points) so
//! tests and benches can run at laptop scale while keeping the structure. The
//! profile also records the paper's PQ configuration for that dataset (e.g.
//! DEEP1M → PQ48), which the benchmark harness uses as its default sweep.

use crate::synthetic::{generate_clustered, ClusteredSpec, GeneratedData};
use juno_common::error::Result;
use juno_common::metric::Metric;
use juno_common::recall::GroundTruth;

/// A named dataset profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// SIFT-like: 128-dimensional local image descriptors, L2 metric
    /// (paper configuration `PQ64`, `E = 256`).
    SiftLike,
    /// DEEP-like: 96-dimensional CNN descriptors, L2 metric (`PQ48`).
    DeepLike,
    /// TTI-like: 200-dimensional text-to-image embeddings, inner product
    /// metric (`PQ40`).
    TtiLike,
    /// GIST-like: 960-dimensional global image descriptors, L2 metric. Not in
    /// the paper's main evaluation but a common stress test for the pipeline.
    GistLike,
}

impl DatasetProfile {
    /// All profiles used by the paper's main evaluation (Fig. 12).
    pub fn paper_profiles() -> [DatasetProfile; 3] {
        [
            DatasetProfile::SiftLike,
            DatasetProfile::DeepLike,
            DatasetProfile::TtiLike,
        ]
    }

    /// Vector dimension of this profile.
    pub fn dim(self) -> usize {
        match self {
            DatasetProfile::SiftLike => 128,
            DatasetProfile::DeepLike => 96,
            DatasetProfile::TtiLike => 200,
            DatasetProfile::GistLike => 960,
        }
    }

    /// Metric of this profile.
    pub fn metric(self) -> Metric {
        match self {
            DatasetProfile::TtiLike => Metric::InnerProduct,
            _ => Metric::L2,
        }
    }

    /// The paper's PQ subspace count for this dataset (`PQx`).
    pub fn paper_pq_subspaces(self) -> usize {
        match self {
            DatasetProfile::SiftLike => 64,
            DatasetProfile::DeepLike => 48,
            DatasetProfile::TtiLike => 40,
            DatasetProfile::GistLike => 96,
        }
    }

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DatasetProfile::SiftLike => "SIFT-like",
            DatasetProfile::DeepLike => "DEEP-like",
            DatasetProfile::TtiLike => "TTI-like",
            DatasetProfile::GistLike => "GIST-like",
        }
    }

    /// Generates a dataset of this profile with `num_points` search points and
    /// `num_queries` queries.
    ///
    /// # Errors
    ///
    /// Propagates generator configuration errors.
    pub fn generate(self, num_points: usize, num_queries: usize, seed: u64) -> Result<Dataset> {
        // The number of natural clusters scales sub-linearly with dataset
        // size, mirroring how IVF cluster counts are chosen (~sqrt(N)).
        let natural_clusters = ((num_points as f64).sqrt() as usize).clamp(8, 4096);
        let spec = ClusteredSpec {
            num_points,
            num_queries,
            dim: self.dim(),
            num_clusters: natural_clusters,
            center_range: 10.0,
            cluster_std: match self {
                // TTI-like embeddings are less tightly clustered; a larger
                // within-cluster spread reduces entry sparsity slightly, as
                // the paper observes for TTI1M.
                DatasetProfile::TtiLike => 2.0,
                _ => 1.0,
            },
            imbalance: 0.8,
            seed,
        };
        let GeneratedData {
            points, queries, ..
        } = generate_clustered(&spec)?;
        Ok(Dataset {
            profile: self,
            points,
            queries,
        })
    }
}

impl std::fmt::Display for DatasetProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A generated (or loaded) dataset plus its profile metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// The profile this dataset was generated from.
    pub profile: DatasetProfile,
    /// Search points.
    pub points: juno_common::vector::VectorSet,
    /// Query points.
    pub queries: juno_common::vector::VectorSet,
}

impl Dataset {
    /// The metric of this dataset.
    pub fn metric(&self) -> Metric {
        self.profile.metric()
    }

    /// The dimensionality of this dataset.
    pub fn dim(&self) -> usize {
        self.points.dim()
    }

    /// Computes exact ground truth for the dataset's queries.
    ///
    /// # Errors
    ///
    /// Propagates brute-force errors (dimension mismatches).
    pub fn ground_truth(&self, k: usize) -> Result<GroundTruth> {
        GroundTruth::brute_force(&self.points, &self.queries, self.metric(), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_dimensions_and_metrics() {
        assert_eq!(DatasetProfile::SiftLike.dim(), 128);
        assert_eq!(DatasetProfile::DeepLike.dim(), 96);
        assert_eq!(DatasetProfile::TtiLike.dim(), 200);
        assert_eq!(DatasetProfile::SiftLike.metric(), Metric::L2);
        assert_eq!(DatasetProfile::TtiLike.metric(), Metric::InnerProduct);
        assert_eq!(DatasetProfile::DeepLike.paper_pq_subspaces(), 48);
        assert_eq!(DatasetProfile::SiftLike.paper_pq_subspaces(), 64);
        assert_eq!(DatasetProfile::TtiLike.paper_pq_subspaces(), 40);
        assert_eq!(DatasetProfile::paper_profiles().len(), 3);
    }

    #[test]
    fn generation_produces_requested_shape() {
        let ds = DatasetProfile::DeepLike.generate(2_000, 10, 42).unwrap();
        assert_eq!(ds.points.len(), 2_000);
        assert_eq!(ds.points.dim(), 96);
        assert_eq!(ds.queries.len(), 10);
        assert_eq!(ds.metric(), Metric::L2);
        assert_eq!(ds.dim(), 96);
        assert_eq!(ds.profile.name(), "DEEP-like");
        assert_eq!(format!("{}", ds.profile), "DEEP-like");
    }

    #[test]
    fn ground_truth_has_one_entry_per_query() {
        let ds = DatasetProfile::SiftLike.generate(500, 5, 7).unwrap();
        let gt = ds.ground_truth(10).unwrap();
        assert_eq!(gt.len(), 5);
        assert!(gt.truth.iter().all(|t| t.len() == 10));
    }

    #[test]
    fn dimension_divisible_by_paper_pq() {
        for p in DatasetProfile::paper_profiles() {
            assert_eq!(
                p.dim() % p.paper_pq_subspaces(),
                0,
                "{p}: dim {} not divisible by PQ{}",
                p.dim(),
                p.paper_pq_subspaces()
            );
        }
    }
}
