//! Image-retrieval scenario: SIFT-like 128-d descriptors under the L2 metric.
//!
//! Demonstrates the quality/throughput trade-off surface the paper's Fig. 12
//! exposes to users: sweeping the JUNO quality mode (L/M/H) and threshold
//! scaling factor, and printing the resulting recall / simulated-QPS pairs so
//! an application can pick its operating point.
//!
//! Run with: `cargo run --release --example image_retrieval`

use juno::prelude::*;

fn sweep(
    index: &JunoIndex,
    queries: &VectorSet,
    gt: &GroundTruth,
) -> Result<(f64, f64), juno::common::Error> {
    let mut retrieved = Vec::new();
    let mut total_us = 0.0;
    for q in queries.iter() {
        let r = index.search(q, 100)?;
        total_us += r.simulated_us;
        retrieved.push(r.ids());
    }
    let recall = r1_at_100(&retrieved, gt)?;
    let qps = 1e6 / (total_us / queries.len() as f64);
    Ok((recall, qps))
}

fn main() -> Result<(), juno::common::Error> {
    let dataset = DatasetProfile::SiftLike.generate(15_000, 20, 3)?;
    let ground_truth = dataset.ground_truth(100)?;
    let config = JunoConfig {
        n_clusters: 128,
        nprobs: 8,
        pq_entries: 64,
        ..JunoConfig::small_test(dataset.dim(), dataset.metric())
    };
    let mut index = JunoIndex::build(&dataset.points, &config)?;

    println!("operating point                         R1@100   simulated QPS");
    for (mode, scales) in [
        (QualityMode::Low, vec![0.4f32, 0.7, 1.0]),
        (QualityMode::Medium, vec![0.7, 1.0]),
        (QualityMode::High, vec![0.5, 0.75, 1.0]),
    ] {
        index.set_quality(mode);
        for scale in scales {
            index.set_threshold_scale(scale)?;
            let (recall, qps) = sweep(&index, &dataset.queries, &ground_truth)?;
            println!(
                "{:<8} threshold scale {:<4}            {:>7.3}  {:>12.0}",
                mode, scale, recall, qps
            );
        }
    }

    println!("\nPick JUNO-L for recommendation-style workloads (recall ≤ 0.95 is fine),");
    println!("JUNO-H with scale 1.0 when missing the true neighbour is costly.");
    Ok(())
}
