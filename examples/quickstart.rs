//! Quick start: build a JUNO index over a synthetic DEEP-like dataset, search
//! a few queries, and compare quality and simulated throughput against the
//! FAISS-style IVFPQ baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use juno::prelude::*;

fn main() -> Result<(), juno::common::Error> {
    // 1. A reduced-scale DEEP-like dataset (96-d, L2) with exact ground truth.
    let dataset = DatasetProfile::DeepLike.generate(20_000, 20, 42)?;
    println!(
        "dataset: {} points, {} queries, dim {}, metric {}",
        dataset.points.len(),
        dataset.queries.len(),
        dataset.dim(),
        dataset.metric()
    );
    let ground_truth = dataset.ground_truth(100)?;

    // 2. Build the JUNO index (IVF + PQ + RT scene + threshold model).
    let config = JunoConfig {
        n_clusters: 128,
        nprobs: 8,
        pq_entries: 64,
        ..JunoConfig::small_test(dataset.dim(), dataset.metric())
    };
    let juno = JunoIndex::build(&dataset.points, &config)?;

    // 3. Build the FAISS-style baseline with the same IVF/PQ shape.
    let baseline = IvfPqIndex::build(
        &dataset.points,
        &IvfPqConfig {
            n_clusters: 128,
            nprobs: 8,
            pq_subspaces: config.pq_subspaces,
            pq_entries: 64,
            metric: dataset.metric(),
            seed: 7,
        },
    )?;

    // 4. Search every query with both engines and compare.
    let mut juno_hits = Vec::new();
    let mut base_hits = Vec::new();
    let mut juno_us = 0.0;
    let mut base_us = 0.0;
    for query in dataset.queries.iter() {
        let r = juno.search(query, 100)?;
        juno_us += r.simulated_us;
        juno_hits.push(r.ids());
        let r = baseline.search(query, 100)?;
        base_us += r.simulated_us;
        base_hits.push(r.ids());
    }
    let n = dataset.queries.len() as f64;
    println!("\n                R1@100   simulated QPS");
    println!(
        "{:<14} {:>7.3}   {:>10.0}",
        juno.name(),
        r1_at_100(&juno_hits, &ground_truth)?,
        1e6 / (juno_us / n)
    );
    println!(
        "{:<14} {:>7.3}   {:>10.0}",
        baseline.name(),
        r1_at_100(&base_hits, &ground_truth)?,
        1e6 / (base_us / n)
    );

    // 5. Inspect one result in detail.
    let result = juno.search(dataset.queries.row(0), 5)?;
    println!("\ntop-5 neighbours of query 0:");
    for n in &result.neighbors {
        println!("  point {:>6}  distance {:.3}", n.id, n.distance);
    }
    println!(
        "RT work for that query: {} AABB tests, {} sphere tests, {} hits",
        result.stats.rt_aabb_tests, result.stats.rt_primitive_tests, result.stats.rt_hits
    );
    Ok(())
}
