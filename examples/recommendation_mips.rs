//! Recommendation scenario: maximum inner-product search (MIPS) over
//! TTI-like 200-d embeddings — the paper's TTI1M configuration.
//!
//! Shows JUNO's extra-dimension-free inner-product support (Section 4.2): the
//! same engine, built with `Metric::InnerProduct`, retrieves the items whose
//! embedding has the largest dot product with the user embedding.
//!
//! Run with: `cargo run --release --example recommendation_mips`

use juno::prelude::*;

fn main() -> Result<(), juno::common::Error> {
    // "Items" are TTI-like embeddings; "users" are queries from the same
    // distribution.
    let dataset = DatasetProfile::TtiLike.generate(10_000, 15, 11)?;
    let ground_truth = dataset.ground_truth(10)?;

    let config = JunoConfig {
        n_clusters: 64,
        nprobs: 8,
        pq_entries: 64,
        ..JunoConfig::small_test(dataset.dim(), dataset.metric())
    };
    let juno = JunoIndex::build(&dataset.points, &config)?;

    // Exact MIPS reference for comparison.
    let exact = FlatIndex::new(dataset.points.clone(), Metric::InnerProduct)?;

    let mut found = 0usize;
    let mut total = 0usize;
    for (u, user) in dataset.queries.iter().enumerate() {
        let recommended = juno.search(user, 10)?;
        let best_exact = exact.search(user, 1)?.neighbors[0];
        let hit = recommended.ids().contains(&best_exact.id);
        if u < 5 {
            println!(
                "user {:>2}: top item {:>5} (inner product {:.2}) — best exact item {} {}",
                u,
                recommended.neighbors[0].id,
                recommended.neighbors[0].distance,
                best_exact.id,
                if hit { "[found]" } else { "[missed]" }
            );
        }
        found += usize::from(hit);
        total += 1;
        // The ground truth gives the full top-10 for offline evaluation.
        debug_assert_eq!(ground_truth.truth[u].len(), 10);
    }
    println!(
        "\nbest-item hit rate across {total} users: {:.1}%",
        100.0 * found as f64 / total as f64
    );
    println!("(inner products are reported directly — no extra-dimension L2 transformation)");
    Ok(())
}
