//! LLM attention scenario (paper Fig. 15): use JUNO as a MIPS engine to pick
//! the keys each attention query should attend to, and measure how much of
//! the softmax attention mass survives the truncation.
//!
//! Run with: `cargo run --release --example llm_attention`

use juno::common::metric::inner_product;
use juno::data::attention::{AttentionSpec, AttentionWorkload};
use juno::prelude::*;

fn main() -> Result<(), juno::common::Error> {
    let workload = AttentionWorkload::generate(&AttentionSpec {
        seq_len: 1_024,
        num_queries: 32,
        head_dim: 64,
        concentration: 5.0,
        seed: 2,
    })?;
    println!(
        "attention workload: {} keys, {} queries, head dim {}",
        workload.seq_len(),
        workload.queries().len(),
        workload.keys().dim()
    );

    // Exact truncation curve (what the paper plots for Llama-7B).
    println!("\nexact top-k truncation:");
    for (fraction, mass, ppl) in workload.sweep(&[1.0, 0.5, 0.2, 0.1, 0.05])? {
        println!(
            "  keep {:>5.1}% of keys -> {:>5.1}% of attention mass, pseudo-perplexity {:.3}",
            fraction * 100.0,
            mass * 100.0,
            ppl
        );
    }

    // JUNO as the key-retrieval engine.
    let config = JunoConfig {
        n_clusters: 16,
        nprobs: 8,
        pq_entries: 32,
        ..JunoConfig::small_test(workload.keys().dim(), Metric::InnerProduct)
    };
    let index = JunoIndex::build(workload.keys(), &config)?;
    println!("\nJUNO-retrieved top-k (MIPS) instead of exact top-k:");
    for fraction in [0.2f64, 0.1, 0.05] {
        let k = ((workload.seq_len() as f64 * fraction) as usize).max(1);
        let mut kept = 0.0;
        for qi in 0..workload.queries().len() {
            let q = workload.queries().row(qi);
            let result = index.search(q, k)?;
            // Softmax over all keys, then the mass carried by retrieved keys.
            let logits: Vec<f64> = workload
                .keys()
                .iter()
                .map(|key| inner_product(q, key) as f64)
                .collect();
            let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
            let total: f64 = exps.iter().sum();
            kept += result
                .neighbors
                .iter()
                .map(|n| exps[n.id as usize] / total)
                .sum::<f64>();
        }
        println!(
            "  keep {:>5.1}% via JUNO -> {:>5.1}% of attention mass",
            fraction * 100.0,
            100.0 * kept / workload.queries().len() as f64
        );
    }
    Ok(())
}
