//! RT-core playground: the 2-D nearest-neighbour mapping of Fig. 2 on its
//! own, without any quantisation — useful for understanding how JUNO uses
//! the ray-tracing pipeline before layering IVF/PQ on top.
//!
//! Run with: `cargo run --release --example rt_playground`

use juno::common::rng::seeded;
use juno::rt::hardware::RtCoreModel;
use juno::rt::ray::Ray;
use juno::rt::scene::SceneBuilder;
use juno::rt::sphere::Sphere;
use juno_common::rng::Rng;

fn main() {
    let mut rng = seeded(7);
    let n = 20_000usize;
    let radius = 0.01f32;

    // Scatter points in the unit square; each becomes a sphere at z = 1.
    let mut builder = SceneBuilder::new();
    let mut points = Vec::with_capacity(n);
    for i in 0..n {
        let p = [rng.gen_range(0.0..1.0f32), rng.gen_range(0.0..1.0f32)];
        points.push(p);
        builder.add_sphere(Sphere::new([p[0], p[1], 1.0], radius, i as u32));
    }
    let scene = builder.build();
    println!(
        "scene: {} spheres, BVH depth {}, {} nodes",
        scene.len(),
        scene.bvh().depth(),
        scene.bvh().node_count()
    );

    // A few queries: rays from z = 0 towards +z.
    let ampere = RtCoreModel::ampere(84);
    let ada = RtCoreModel::ada(128);
    for q in 0..5 {
        let origin = [rng.gen_range(0.0..1.0f32), rng.gen_range(0.0..1.0f32)];
        let ray = Ray::axis_aligned_z([origin[0], origin[1], 0.0], 2.0);
        let mut neighbours = Vec::new();
        let stats = scene.trace(&ray, &mut |hit| neighbours.push(hit.primitive_id));
        println!(
            "query {q}: {} neighbours within r = {radius}, {} box tests, {} sphere tests \
             (~{:.2} us on Ampere RT cores, ~{:.2} us on Ada)",
            neighbours.len(),
            stats.aabb_tests,
            stats.primitive_tests,
            ampere.estimate_us(&stats),
            ada.estimate_us(&stats),
        );
        // Spot-check one neighbour against the analytic distance.
        if let Some(&id) = neighbours.first() {
            let p = points[id as usize];
            let d = ((p[0] - origin[0]).powi(2) + (p[1] - origin[1]).powi(2)).sqrt();
            println!("         e.g. point {id} at planar distance {d:.4} (< {radius})");
        }
    }
}
